//! The open adversary API: party behaviour as a [`Strategy`] trait instead of
//! a closed enum.
//!
//! The paper deliberately makes no assumption about *how* parties deviate —
//! they are "compliant or deviating, whether rationally or not" (Section 3).
//! Early versions of this crate encoded deviation as a closed
//! [`crate::party::Deviation`] enum whose variants the protocol engines
//! pattern-matched on, so every new attack required editing the core crates.
//! This module turns behaviour into user code: a [`Strategy`] answers one
//! question per protocol decision point (escrow? transfer? accept
//! validation? vote? forward? claim?), and every answer is computed from an
//! [`ObservationCtx`] — the party's own view of the deal so far — so
//! strategies can be *adaptive and stateful*, not just static flags.
//!
//! Observation is first-class: each party owns a [`DealObserver`] holding one
//! [`LogCursor`] per chain, refreshed via [`Blockchain::log_from`] so
//! monitoring costs O(new entries) per decision, never a re-scan of the whole
//! log. What the observer distills (escrow lock-ins, tentative transfers,
//! commit votes, escrow resolutions) is exposed as a [`DealView`].
//!
//! Every legacy `Deviation` variant is available as a built-in strategy (see
//! [`strategies`]) with *bit-identical* deal outcomes, and three adversaries
//! that the old enum could not express at all ride along:
//!
//! * [`strategies::sore_loser`] — escrows, then abandons the deal exactly
//!   when it observes every counterparty's escrow lock in (the sore-loser
//!   attack family of Xue & Herlihy 2021);
//! * [`strategies::coalition`] — several parties sharing one strategy value
//!   (and its interior state): members pool what they observe and vote as a
//!   bloc, aborting everywhere if any single member is dissatisfied;
//! * [`strategies::rational_defector`] — commits iff the value it has
//!   observed locked in for it exceeds the value it gives up.
//!
//! [`Blockchain::log_from`]: xchain_sim::ledger::Blockchain::log_from
//! [`LogCursor`]: xchain_sim::ledger::LogCursor

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use xchain_sim::asset::Asset;
use xchain_sim::ids::{ChainId, Owner, PartyId};
use xchain_sim::ledger::{EventTag, LogCursor, LogEntry, LogFilter};
use xchain_sim::time::Time;
use xchain_sim::world::World;

use crate::phases::Phase;
use crate::plan::DealPlan;
use crate::spec::DealSpec;

/// A party's answer at a commit decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// Vote to commit the deal.
    Commit,
    /// Vote to abort the deal (meaningful on the CBC; under the timelock
    /// protocol there is no abort vote, so this behaves like withholding).
    Abort,
    /// Send no vote at all (walk away / free-ride on timeouts).
    Withhold,
}

/// What one party has observed of a deal so far, distilled from the chain
/// logs its [`DealObserver`] monitors. All collections are in observation
/// order and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DealView {
    /// Escrow lock-ins observed: `(chain, escrowing party)`. Includes HTLC
    /// fundings, which play the same role in the swap protocol.
    pub escrows: Vec<(ChainId, PartyId)>,
    /// Tentative transfers observed: `(chain, sending party)`.
    pub transfers: Vec<(ChainId, PartyId)>,
    /// Parties whose commit votes (or HTLC claims) have been observed on some
    /// chain. CBC votes live on the certified log, not on asset chains, so
    /// they do not appear here.
    pub commit_votes: Vec<PartyId>,
    /// Escrow resolutions observed: `(chain, committed)` — `true` for a
    /// commit/claim, `false` for an abort/refund.
    pub resolutions: Vec<(ChainId, bool)>,
}

impl DealView {
    /// True if `party`'s escrow on `chain` has been observed locking in.
    pub fn escrowed(&self, chain: ChainId, party: PartyId) -> bool {
        self.escrows.contains(&(chain, party))
    }

    /// True if a commit vote (or claim) by `party` has been observed.
    pub fn has_voted(&self, party: PartyId) -> bool {
        self.commit_votes.contains(&party)
    }

    /// True if every escrow obligation of every party *other than* `me` has
    /// been observed locking in — the trigger condition of the sore-loser
    /// attack ("everyone else is now exposed").
    pub fn counterparty_escrows_locked(&self, spec: &DealSpec, me: PartyId) -> bool {
        let mut any = false;
        for e in spec.escrows.iter().filter(|e| e.owner != me) {
            any = true;
            if !self.escrowed(e.chain, e.owner) {
                return false;
            }
        }
        any
    }
}

/// One party's monitoring state: a [`LogCursor`] per deal chain plus the
/// accumulated [`DealView`]. Refreshing reads only the log entries appended
/// since the last refresh (`Blockchain::log_from`), so the cost of a decision
/// is proportional to what actually happened since the previous one.
#[derive(Debug, Clone)]
pub struct DealObserver {
    chains: Vec<ChainId>,
    cursors: BTreeMap<ChainId, LogCursor>,
    view: DealView,
}

impl DealObserver {
    /// An observer for the chains of `spec`, positioned at the start of every
    /// log.
    pub fn new(spec: &DealSpec) -> Self {
        DealObserver {
            chains: spec.chains(),
            cursors: BTreeMap::new(),
            view: DealView::default(),
        }
    }

    /// Reads every monitored chain's new log entries and folds them into the
    /// view. O(new entries).
    pub fn observe(&mut self, world: &World) {
        for &chain in &self.chains {
            let Ok(c) = world.chain(chain) else { continue };
            let cursor = self.cursors.entry(chain).or_default();
            for entry in c.log_from(cursor) {
                ingest(&mut self.view, chain, entry);
            }
        }
    }

    /// The accumulated view.
    pub fn view(&self) -> &DealView {
        &self.view
    }

    /// The cursor position (entries seen so far) on one chain.
    pub fn cursor_position(&self, chain: ChainId) -> usize {
        self.cursors.get(&chain).map_or(0, |c| c.position())
    }

    /// Refreshes the view from the world and assembles the observation
    /// context a strategy hook receives. `validated` carries the party's
    /// mechanical validation verdict once the validation phase has run.
    pub fn ctx<'a>(
        &'a mut self,
        world: &World,
        spec: &'a DealSpec,
        party: PartyId,
        phase: Phase,
        validated: Option<bool>,
    ) -> ObservationCtx<'a> {
        self.observe(world);
        ObservationCtx {
            party,
            phase,
            now: world.now(),
            spec,
            view: &self.view,
            validated,
        }
    }
}

/// Folds one chain-log entry into a view. Label vocabulary is the one the
/// escrow/timelock/HTLC contracts emit.
fn ingest(view: &mut DealView, chain: ChainId, entry: &LogEntry) {
    let caller = match entry.caller {
        Owner::Party(p) => Some(p),
        _ => None,
    };
    match entry.label.as_str() {
        "escrow" | "htlc-funded" => {
            if let Some(p) = caller {
                if !view.escrows.contains(&(chain, p)) {
                    view.escrows.push((chain, p));
                }
            }
        }
        "tentative-transfer" => {
            if let Some(p) = caller {
                if !view.transfers.contains(&(chain, p)) {
                    view.transfers.push((chain, p));
                }
            }
        }
        "commit-vote" => {
            // data = [deal, voter, path length]
            if let Some(&voter) = entry.data.get(1) {
                let voter = PartyId(voter as u32);
                if !view.commit_votes.contains(&voter) {
                    view.commit_votes.push(voter);
                }
            }
        }
        "htlc-claimed" => {
            if let Some(p) = caller {
                if !view.commit_votes.contains(&p) {
                    view.commit_votes.push(p);
                }
            }
        }
        "escrow-committed" => view.resolutions.push((chain, true)),
        "escrow-aborted" | "htlc-refunded" => view.resolutions.push((chain, false)),
        _ => {}
    }
}

/// A deal-relevant event distilled from one log entry. The hub parses each
/// entry **once** (on the shared ingest pass) into this `Copy` form; the
/// per-party folds then work on parsed events instead of re-matching label
/// strings per party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedEvent {
    /// An escrow (or HTLC funding) by the party locked in.
    Escrowed(PartyId),
    /// A tentative transfer performed by the party.
    Transferred(PartyId),
    /// A commit vote by (or HTLC claim from) the party became visible.
    Voted(PartyId),
    /// The chain's escrow resolved: `true` for commit/claim, `false` for
    /// abort/refund.
    Resolved(bool),
}

impl ObservedEvent {
    /// Parses one log entry into the event it contributes to a [`DealView`],
    /// if any. Mirrors [`ingest`]'s label vocabulary, driven by the entry's
    /// pre-parsed [`EventTag`] instead of the label string.
    pub fn parse(entry: &LogEntry) -> Option<ObservedEvent> {
        let caller = match entry.caller {
            Owner::Party(p) => Some(p),
            _ => None,
        };
        match entry.tag {
            EventTag::Escrow | EventTag::HtlcFunded => caller.map(ObservedEvent::Escrowed),
            EventTag::TentativeTransfer => caller.map(ObservedEvent::Transferred),
            // data = [deal, voter, path length]
            EventTag::CommitVote => entry
                .data
                .get(1)
                .map(|&voter| ObservedEvent::Voted(PartyId(voter as u32))),
            EventTag::HtlcClaimed => caller.map(ObservedEvent::Voted),
            EventTag::EscrowCommitted => Some(ObservedEvent::Resolved(true)),
            EventTag::EscrowAborted | EventTag::HtlcRefunded => {
                Some(ObservedEvent::Resolved(false))
            }
            EventTag::Other => None,
        }
    }

    /// Folds the event into a view, deduplicating exactly like [`ingest`].
    fn fold_into(self, view: &mut DealView, chain: ChainId) {
        match self {
            ObservedEvent::Escrowed(p) => {
                if !view.escrows.contains(&(chain, p)) {
                    view.escrows.push((chain, p));
                }
            }
            ObservedEvent::Transferred(p) => {
                if !view.transfers.contains(&(chain, p)) {
                    view.transfers.push((chain, p));
                }
            }
            ObservedEvent::Voted(p) => {
                if !view.commit_votes.contains(&p) {
                    view.commit_votes.push(p);
                }
            }
            ObservedEvent::Resolved(committed) => view.resolutions.push((chain, committed)),
        }
    }
}

/// Shared, label-filtered deal monitoring: **one** log ingest pass per chain,
/// fanned out to every subscribed party's [`DealView`].
///
/// [`DealObserver`] gives each party its own cursors, so a deal with *n*
/// parties reads — and string-matches — every log entry *n* times. The hub
/// is the second half of batched log monitoring (ROADMAP): the engines keep
/// one hub per deal, each chain has a single shared [`LogCursor`], and a
/// refresh reads each new entry exactly once, through a [`LogFilter`]
/// subscription covering only the deal vocabulary (entries the views would
/// never ingest — token mints, CBC bookkeeping, foreign contracts — are
/// skipped without being parsed). Parsed [`ObservedEvent`]s are buffered per
/// chain; each party's view folds them in lazily at its next decision.
///
/// **Parity:** a party's [`DealView`] is *identical* to what its own
/// [`DealObserver`] would have accumulated — per-party folds happen at
/// decision time, walking the chains in the same order and the buffered
/// events in log order, so batching changes the cost, never the view (proven
/// by the hub/observer parity tests against adversarial traces).
///
/// The subscription (chains + parties) is derived from the [`DealPlan`], so
/// the hub is built once per deal execution alongside the plan.
#[derive(Debug, Clone)]
pub struct ObservationHub {
    chains: Vec<ChainId>,
    filter: LogFilter,
    cursors: Vec<LogCursor>,
    /// Parsed events per chain (indexed like `chains`), in log order.
    events: Vec<Vec<ObservedEvent>>,
    parties: Vec<PartyId>,
    views: Vec<DealView>,
    /// `positions[party][chain]`: how many of `events[chain]` the party's
    /// view has folded in.
    positions: Vec<Vec<usize>>,
}

/// The deal vocabulary: every tag the views ingest (everything but
/// [`EventTag::Other`]).
fn deal_filter() -> LogFilter {
    LogFilter::of([
        EventTag::Escrow,
        EventTag::TentativeTransfer,
        EventTag::CommitVote,
        EventTag::EscrowCommitted,
        EventTag::EscrowAborted,
        EventTag::HtlcFunded,
        EventTag::HtlcClaimed,
        EventTag::HtlcRefunded,
    ])
}

impl ObservationHub {
    /// A hub subscribed to the plan's chains on behalf of the plan's parties,
    /// filtering to the deal vocabulary.
    pub fn new(plan: &DealPlan) -> Self {
        Self::for_parties(plan.chains().to_vec(), plan.spec().parties.clone())
    }

    /// A hub for an explicit chain and party set (tests, custom monitors).
    pub fn for_parties(chains: Vec<ChainId>, parties: Vec<PartyId>) -> Self {
        let n_chains = chains.len();
        let n_parties = parties.len();
        ObservationHub {
            chains,
            filter: deal_filter(),
            cursors: vec![LogCursor::new(); n_chains],
            events: vec![Vec::new(); n_chains],
            parties,
            views: vec![DealView::default(); n_parties],
            positions: vec![vec![0; n_chains]; n_parties],
        }
    }

    /// The label-filter subscription in force.
    pub fn filter(&self) -> LogFilter {
        self.filter
    }

    /// Ingests one chain's new log entries into its event buffer — the single
    /// place the shared cursors advance and entries are parsed.
    fn ingest_chain(
        events: &mut Vec<ObservedEvent>,
        cursor: &mut LogCursor,
        filter: LogFilter,
        world: &World,
        chain: ChainId,
    ) {
        if let Ok(c) = world.chain(chain) {
            events.extend(
                c.log_from_filtered(cursor, filter)
                    .filter_map(ObservedEvent::parse),
            );
        }
    }

    /// Folds one chain's buffered events from `pos` onward into a view — the
    /// single place views advance, in log order per chain.
    fn fold_chain(view: &mut DealView, events: &[ObservedEvent], pos: &mut usize, chain: ChainId) {
        for ev in &events[*pos..] {
            ev.fold_into(view, chain);
        }
        *pos = events.len();
    }

    fn party_index(&self, party: PartyId) -> usize {
        self.parties
            .iter()
            .position(|&p| p == party)
            .expect("party subscribed to the hub")
    }

    /// Reads every subscribed chain's new log entries **once**, parses them,
    /// and buffers the resulting events. O(new entries), shared by all
    /// parties.
    pub fn refresh(&mut self, world: &World) {
        for (cix, &chain) in self.chains.iter().enumerate() {
            Self::ingest_chain(
                &mut self.events[cix],
                &mut self.cursors[cix],
                self.filter,
                world,
                chain,
            );
        }
    }

    /// Folds everything `party`'s view has not seen yet (chains in
    /// subscription order, events in log order — the [`DealObserver`]
    /// semantics) and returns the view. Assumes [`ObservationHub::refresh`]
    /// has run for the current world state.
    fn catch_up(&mut self, party: PartyId) -> &DealView {
        let pix = self.party_index(party);
        let view = &mut self.views[pix];
        for (cix, events) in self.events.iter().enumerate() {
            Self::fold_chain(
                view,
                events,
                &mut self.positions[pix][cix],
                self.chains[cix],
            );
        }
        &self.views[pix]
    }

    /// The party's current view without refreshing (tests, post-mortems).
    pub fn view_of(&mut self, party: PartyId) -> &DealView {
        self.catch_up(party)
    }

    /// Refreshes from the world and assembles the observation context for one
    /// party's decision — the hub counterpart of [`DealObserver::ctx`].
    /// Ingest and fold run in one fused pass over the subscribed chains
    /// (through the same [`ObservationHub::ingest_chain`] /
    /// [`ObservationHub::fold_chain`] steps `refresh` and `view_of` use), so
    /// a decision with nothing new costs one cursor check per chain.
    pub fn ctx<'a>(
        &'a mut self,
        world: &World,
        spec: &'a DealSpec,
        party: PartyId,
        phase: Phase,
        validated: Option<bool>,
    ) -> ObservationCtx<'a> {
        let pix = self.party_index(party);
        let view = &mut self.views[pix];
        for (cix, &chain) in self.chains.iter().enumerate() {
            Self::ingest_chain(
                &mut self.events[cix],
                &mut self.cursors[cix],
                self.filter,
                world,
                chain,
            );
            Self::fold_chain(
                view,
                &self.events[cix],
                &mut self.positions[pix][cix],
                chain,
            );
        }
        ObservationCtx {
            party,
            phase,
            now: world.now(),
            spec,
            view: &self.views[pix],
            validated,
        }
    }
}

/// Everything a strategy hook gets to see when making a decision: who it is,
/// where the protocol stands, what time it is, the deal being executed, and
/// the party's accumulated [`DealView`].
#[derive(Debug)]
pub struct ObservationCtx<'a> {
    /// The deciding party.
    pub party: PartyId,
    /// The protocol phase the decision belongs to.
    pub phase: Phase,
    /// The world clock at decision time.
    pub now: Time,
    /// The deal specification under execution.
    pub spec: &'a DealSpec,
    /// What this party has observed so far (cursor-fed, O(new entries)).
    pub view: &'a DealView,
    /// The party's own mechanical validation verdict, once validation has
    /// run (`None` in earlier phases and in protocols without a validation
    /// phase, like the HTLC swap).
    pub validated: Option<bool>,
}

/// A party behaviour: one decision hook per protocol decision point, each fed
/// the party's [`ObservationCtx`]. Implementations must be `Send + Sync`
/// (sweeps execute deals on worker threads) and are shared via
/// `Arc<dyn Strategy>`; stateful strategies keep interior state behind a lock
/// and override [`Strategy::fresh`] so every deal execution starts clean.
///
/// The defaults implement the compliant party, so a custom adversary only
/// overrides the hooks where it deviates.
pub trait Strategy: Send + Sync {
    /// A short, stable, human-readable name. Sweep adversary axes and the
    /// experiment tables are labelled with it.
    fn name(&self) -> String;

    /// True if this strategy follows the protocol exactly. The paper's
    /// safety/liveness properties protect *compliant* parties only, so a
    /// deviating strategy must return `false` (the default) or the property
    /// checks would hold it to guarantees it forfeited.
    fn is_compliant(&self) -> bool {
        false
    }

    /// True if the party is reachable and acting at `t`. Offline parties
    /// skip whatever actions fall inside their outage.
    fn is_online(&self, _t: Time) -> bool {
        true
    }

    /// The `[from, until)` outage to register with the world's offline
    /// schedule, if this strategy models one (denial of service, crash).
    fn offline_window(&self) -> Option<(Time, Time)> {
        None
    }

    /// Escrow phase: escrow the party's outgoing assets?
    fn on_escrow(&self, _ctx: &ObservationCtx<'_>) -> bool {
        true
    }

    /// Transfer phase: perform the party's tentative transfers?
    fn on_transfer(&self, _ctx: &ObservationCtx<'_>) -> bool {
        true
    }

    /// Validation phase: accept the incoming assets? `ctx.validated` carries
    /// the mechanical verdict (escrows present, deal info consistent); the
    /// default adopts it. Returning `false` declares dissatisfaction;
    /// returning `true` despite a failed mechanical check over-accepts.
    fn on_validate(&self, ctx: &ObservationCtx<'_>) -> bool {
        ctx.validated.unwrap_or(true)
    }

    /// Commit phase: how to vote. The default commits exactly when the
    /// party's validation succeeded (or when the protocol has no validation
    /// phase).
    fn on_vote(&self, ctx: &ObservationCtx<'_>) -> Vote {
        if ctx.validated.unwrap_or(true) {
            Vote::Commit
        } else {
            Vote::Withhold
        }
    }

    /// Timelock commit phase: forward other parties' votes observed on
    /// outgoing-asset chains? The default forwards whenever the party itself
    /// votes commit.
    fn on_forward(&self, ctx: &ObservationCtx<'_>) -> bool {
        self.on_vote(ctx) == Vote::Commit
    }

    /// HTLC swap: claim the counterparty's escrow (revealing or using the
    /// secret)? The default claims whenever the party would vote commit.
    fn on_claim(&self, ctx: &ObservationCtx<'_>) -> bool {
        self.on_vote(ctx) == Vote::Commit
    }

    /// A fresh instance for a new deal execution. Stateless strategies (the
    /// default, `None`) are shared as-is; stateful ones return a clean copy
    /// so that repeated or concurrent runs never see another run's state.
    /// [`crate::party::fresh_configs`] preserves sharing: configs that held
    /// the *same* `Arc` (a coalition) receive the same fresh instance.
    fn fresh(&self) -> Option<Arc<dyn Strategy>> {
        None
    }
}

impl fmt::Debug for dyn Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Strategy({})", self.name())
    }
}

/// The built-in strategy catalog: every legacy [`Deviation`] as a strategy
/// (identical deal outcomes, see the parity tests), plus the adversaries only
/// expressible under the trait.
///
/// [`Deviation`]: crate::party::Deviation
pub mod strategies {
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    use super::*;
    use crate::party::Deviation;

    /// The compliant strategy: every hook at its default.
    pub fn compliant() -> Arc<dyn Strategy> {
        from_deviation(Deviation::None)
    }

    /// Stops participating after completing `phase` (crash / walk-away),
    /// like [`Deviation::CrashAfter`].
    pub fn crash_after(phase: Phase) -> Arc<dyn Strategy> {
        from_deviation(Deviation::CrashAfter(phase))
    }

    /// Never escrows its outgoing assets, like [`Deviation::RefuseEscrow`].
    pub fn refuse_escrow() -> Arc<dyn Strategy> {
        from_deviation(Deviation::RefuseEscrow)
    }

    /// Escrows but never performs its tentative transfers, like
    /// [`Deviation::SkipTransfers`].
    pub fn skip_transfers() -> Arc<dyn Strategy> {
        from_deviation(Deviation::SkipTransfers)
    }

    /// Performs every phase but never sends a commit vote, like
    /// [`Deviation::WithholdVote`].
    pub fn withhold_vote() -> Arc<dyn Strategy> {
        from_deviation(Deviation::WithholdVote)
    }

    /// Votes but never forwards other parties' votes, like
    /// [`Deviation::NeverForward`].
    pub fn never_forward() -> Arc<dyn Strategy> {
        from_deviation(Deviation::NeverForward)
    }

    /// Votes abort during the commit phase, like [`Deviation::VoteAbort`].
    pub fn vote_abort() -> Arc<dyn Strategy> {
        from_deviation(Deviation::VoteAbort)
    }

    /// Declares its incoming assets unsatisfactory at validation, like
    /// [`Deviation::RejectValidation`].
    pub fn reject_validation() -> Arc<dyn Strategy> {
        from_deviation(Deviation::RejectValidation)
    }

    /// Offline (crashed or under denial of service) during `[from, until)`,
    /// like [`Deviation::OfflineDuring`].
    pub fn offline_during(from: Time, until: Time) -> Arc<dyn Strategy> {
        from_deviation(Deviation::OfflineDuring { from, until })
    }

    /// The built-in strategy reproducing a legacy [`Deviation`] exactly:
    /// same decisions at every hook, hence bit-identical runs.
    pub fn from_deviation(deviation: Deviation) -> Arc<dyn Strategy> {
        Arc::new(DeviationStrategy(deviation))
    }

    /// The legacy enum behaviours, expressed through the hook table that the
    /// old `PartyConfig::will_*` predicates implemented.
    #[derive(Debug, Clone, Copy)]
    struct DeviationStrategy(Deviation);

    impl DeviationStrategy {
        fn participates_in(&self, phase: Phase) -> bool {
            match self.0 {
                Deviation::CrashAfter(last) => phase <= last,
                _ => true,
            }
        }

        fn will_vote_commit(&self, ctx: &ObservationCtx<'_>) -> bool {
            !matches!(
                self.0,
                Deviation::RefuseEscrow
                    | Deviation::SkipTransfers
                    | Deviation::WithholdVote
                    | Deviation::VoteAbort
                    | Deviation::RejectValidation
            ) && self.participates_in(Phase::Commit)
                && ctx.validated.unwrap_or(true)
        }
    }

    impl Strategy for DeviationStrategy {
        fn name(&self) -> String {
            match self.0 {
                Deviation::None => "compliant".into(),
                Deviation::CrashAfter(phase) => format!("crash-after-{phase}"),
                Deviation::RefuseEscrow => "refuse-escrow".into(),
                Deviation::SkipTransfers => "skip-transfers".into(),
                Deviation::WithholdVote => "withhold-vote".into(),
                Deviation::NeverForward => "never-forward".into(),
                Deviation::VoteAbort => "vote-abort".into(),
                Deviation::RejectValidation => "reject-validation".into(),
                Deviation::OfflineDuring { from, until } => {
                    format!("offline-{}..{}", from.0, until.0)
                }
            }
        }

        fn is_compliant(&self) -> bool {
            matches!(self.0, Deviation::None)
        }

        fn is_online(&self, t: Time) -> bool {
            match self.0 {
                Deviation::OfflineDuring { from, until } => !(from <= t && t < until),
                _ => true,
            }
        }

        fn offline_window(&self) -> Option<(Time, Time)> {
            match self.0 {
                Deviation::OfflineDuring { from, until } => Some((from, until)),
                _ => None,
            }
        }

        fn on_escrow(&self, _ctx: &ObservationCtx<'_>) -> bool {
            !matches!(self.0, Deviation::RefuseEscrow) && self.participates_in(Phase::Escrow)
        }

        fn on_transfer(&self, _ctx: &ObservationCtx<'_>) -> bool {
            !matches!(self.0, Deviation::RefuseEscrow | Deviation::SkipTransfers)
                && self.participates_in(Phase::Transfer)
        }

        fn on_validate(&self, ctx: &ObservationCtx<'_>) -> bool {
            ctx.validated.unwrap_or(true) && !matches!(self.0, Deviation::RejectValidation)
        }

        fn on_vote(&self, ctx: &ObservationCtx<'_>) -> Vote {
            if self.will_vote_commit(ctx) {
                Vote::Commit
            } else if matches!(self.0, Deviation::VoteAbort | Deviation::RejectValidation)
                && self.participates_in(Phase::Commit)
            {
                Vote::Abort
            } else {
                Vote::Withhold
            }
        }

        fn on_forward(&self, ctx: &ObservationCtx<'_>) -> bool {
            self.will_vote_commit(ctx) && !matches!(self.0, Deviation::NeverForward)
        }
    }

    // ------------------------------------------------------------------
    // The adversaries the closed enum could not express.
    // ------------------------------------------------------------------

    /// The sore-loser attacker: escrows its own assets like a compliant
    /// party, then abandons the deal (no transfers, no votes, no claims, no
    /// forwarding) *exactly when it observes every counterparty's escrow lock
    /// in* — maximizing how long everyone else's assets stay locked while
    /// risking only the timeout on its own. Until that trigger it behaves
    /// compliantly, so the attack is invisible in the early phases.
    pub fn sore_loser() -> Arc<dyn Strategy> {
        Arc::new(SoreLoser)
    }

    #[derive(Debug, Clone, Copy)]
    struct SoreLoser;

    impl SoreLoser {
        fn triggered(ctx: &ObservationCtx<'_>) -> bool {
            ctx.view.counterparty_escrows_locked(ctx.spec, ctx.party)
        }
    }

    impl Strategy for SoreLoser {
        fn name(&self) -> String {
            "sore-loser".into()
        }

        fn on_transfer(&self, ctx: &ObservationCtx<'_>) -> bool {
            !Self::triggered(ctx)
        }

        fn on_vote(&self, ctx: &ObservationCtx<'_>) -> Vote {
            if Self::triggered(ctx) {
                Vote::Withhold
            } else if ctx.validated.unwrap_or(true) {
                Vote::Commit
            } else {
                Vote::Withhold
            }
        }

        fn on_claim(&self, ctx: &ObservationCtx<'_>) -> bool {
            !Self::triggered(ctx)
        }
    }

    /// A colluding coalition: every member's [`crate::party::PartyConfig`]
    /// holds the *same* strategy value, so the members share one interior
    /// state. Each member reports its validation verdict into that state and
    /// the group votes as a bloc: commit only if **every** member (present in
    /// the deal) validated successfully, abort everywhere otherwise — one
    /// dissatisfied member griefs the whole deal on behalf of the group.
    ///
    /// Clone the returned `Arc` into each member's config; per-run state
    /// isolation is handled by [`Strategy::fresh`] +
    /// [`crate::party::fresh_configs`] (sharing within one run is preserved).
    pub fn coalition(members: impl IntoIterator<Item = PartyId>) -> Arc<dyn Strategy> {
        Arc::new(Coalition {
            members: members.into_iter().collect(),
            state: Mutex::new(CoalitionState::default()),
        })
    }

    #[derive(Debug)]
    struct Coalition {
        members: BTreeSet<PartyId>,
        state: Mutex<CoalitionState>,
    }

    #[derive(Debug, Default)]
    struct CoalitionState {
        /// Validation verdicts reported by members, in engine order.
        verdicts: BTreeMap<PartyId, bool>,
    }

    impl Strategy for Coalition {
        fn name(&self) -> String {
            let members: Vec<String> = self.members.iter().map(|p| format!("{p}")).collect();
            format!("coalition({})", members.join("+"))
        }

        fn on_validate(&self, ctx: &ObservationCtx<'_>) -> bool {
            let verdict = ctx.validated.unwrap_or(false);
            self.state
                .lock()
                .expect("coalition state")
                .verdicts
                .insert(ctx.party, verdict);
            verdict
        }

        fn on_vote(&self, ctx: &ObservationCtx<'_>) -> Vote {
            // A member with no recorded verdict counts as dissatisfied when a
            // validation phase ran (its report is simply missing) but as
            // satisfied when the protocol has none (the HTLC swap never calls
            // `on_validate`, signalled by `ctx.validated == None`), matching
            // the `unwrap_or(true)` convention of the other strategies.
            let missing_means = ctx.validated.is_none();
            let state = self.state.lock().expect("coalition state");
            let bloc_satisfied = self
                .members
                .iter()
                .filter(|m| ctx.spec.parties.contains(m))
                .all(|m| state.verdicts.get(m).copied().unwrap_or(missing_means));
            if bloc_satisfied && ctx.validated.unwrap_or(true) {
                Vote::Commit
            } else {
                Vote::Abort
            }
        }

        fn fresh(&self) -> Option<Arc<dyn Strategy>> {
            Some(Arc::new(Coalition {
                members: self.members.clone(),
                state: Mutex::new(CoalitionState::default()),
            }))
        }
    }

    /// The rational defector: cooperates mechanically (escrow, transfers,
    /// honest validation) but commits only when the deal is worth it —
    /// i.e. when the value of the incoming assets it has *observed locked in*
    /// strictly exceeds the value it relinquishes. Fungible assets are valued
    /// at their amount; each non-fungible token at `token_value`. Below the
    /// threshold (or when validation failed) it votes abort to recover its
    /// escrow as fast as the protocol allows.
    pub fn rational_defector(token_value: u64) -> Arc<dyn Strategy> {
        Arc::new(RationalDefector { token_value })
    }

    #[derive(Debug, Clone, Copy)]
    struct RationalDefector {
        token_value: u64,
    }

    impl RationalDefector {
        fn value(&self, asset: &Asset) -> u64 {
            match asset {
                Asset::Fungible { amount, .. } => *amount,
                Asset::NonFungible { tokens, .. } => tokens.len() as u64 * self.token_value,
            }
        }

        /// True if every escrow obligation the deal declares on `chain` has
        /// been observed locking in from its declared owner. A chain with no
        /// declared escrows backs nothing (no transfer there can execute),
        /// and a bystander's — or the defector's own — escrow on the chain
        /// does not stand in for a missing one.
        fn chain_backed(ctx: &ObservationCtx<'_>, chain: ChainId) -> bool {
            let mut any = false;
            for e in ctx.spec.escrows.iter().filter(|e| e.chain == chain) {
                any = true;
                if !ctx.view.escrowed(e.chain, e.owner) {
                    return false;
                }
            }
            any
        }

        /// Value of the party's incoming transfers whose chain is fully
        /// escrow-backed (unbacked promises count for nothing).
        fn observed_incoming(&self, ctx: &ObservationCtx<'_>) -> u64 {
            ctx.spec
                .transfers
                .iter()
                .filter(|t| t.to == ctx.party)
                .filter(|t| Self::chain_backed(ctx, t.chain))
                .map(|t| self.value(&t.asset))
                .sum()
        }

        fn promised_outgoing(&self, ctx: &ObservationCtx<'_>) -> u64 {
            ctx.spec
                .transfers
                .iter()
                .filter(|t| t.from == ctx.party)
                .map(|t| self.value(&t.asset))
                .sum()
        }

        fn worth_it(&self, ctx: &ObservationCtx<'_>) -> bool {
            self.observed_incoming(ctx) > self.promised_outgoing(ctx)
        }
    }

    impl Strategy for RationalDefector {
        fn name(&self) -> String {
            format!("rational-defector(token={})", self.token_value)
        }

        fn on_vote(&self, ctx: &ObservationCtx<'_>) -> Vote {
            if ctx.validated.unwrap_or(true) && self.worth_it(ctx) {
                Vote::Commit
            } else {
                Vote::Abort
            }
        }

        fn on_claim(&self, ctx: &ObservationCtx<'_>) -> bool {
            self.worth_it(ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::strategies::*;
    use super::*;
    use crate::builders::broker_spec;

    /// A context over a canned view, for exercising hooks without a world.
    fn ctx<'a>(
        spec: &'a DealSpec,
        view: &'a DealView,
        party: PartyId,
        validated: Option<bool>,
    ) -> ObservationCtx<'a> {
        ObservationCtx {
            party,
            phase: Phase::Commit,
            now: Time(0),
            spec,
            view,
            validated,
        }
    }

    #[test]
    fn compliant_defaults_do_everything() {
        let spec = broker_spec();
        let view = DealView::default();
        let s = compliant();
        let c = ctx(&spec, &view, PartyId(0), Some(true));
        assert!(s.is_compliant());
        assert!(s.on_escrow(&c));
        assert!(s.on_transfer(&c));
        assert!(s.on_validate(&c));
        assert_eq!(s.on_vote(&c), Vote::Commit);
        assert!(s.on_forward(&c));
        assert!(s.on_claim(&c));
        // A failed validation turns the compliant vote into a withhold.
        let c = ctx(&spec, &view, PartyId(0), Some(false));
        assert_eq!(s.on_vote(&c), Vote::Withhold);
        assert!(!s.on_forward(&c));
    }

    #[test]
    fn builtin_strategies_reproduce_the_deviation_table() {
        let spec = broker_spec();
        let view = DealView::default();
        let validated = Some(true);
        let c = ctx(&spec, &view, PartyId(0), validated);

        assert!(!refuse_escrow().on_escrow(&c));
        assert!(!refuse_escrow().on_transfer(&c));
        assert_eq!(refuse_escrow().on_vote(&c), Vote::Withhold);

        assert!(skip_transfers().on_escrow(&c));
        assert!(!skip_transfers().on_transfer(&c));

        assert_eq!(withhold_vote().on_vote(&c), Vote::Withhold);

        assert_eq!(never_forward().on_vote(&c), Vote::Commit);
        assert!(!never_forward().on_forward(&c));

        assert_eq!(vote_abort().on_vote(&c), Vote::Abort);
        assert!(!reject_validation().on_validate(&c));
        assert_eq!(reject_validation().on_vote(&c), Vote::Abort);

        let crash = crash_after(Phase::Escrow);
        assert!(crash.on_escrow(&c));
        assert!(!crash.on_transfer(&c));
        assert_eq!(crash.on_vote(&c), Vote::Withhold);
        assert_eq!(crash.name(), "crash-after-escrow");

        let off = offline_during(Time(5), Time(10));
        assert!(off.is_online(Time(4)));
        assert!(!off.is_online(Time(5)));
        assert!(!off.is_online(Time(9)));
        assert!(off.is_online(Time(10)));
        assert_eq!(off.offline_window(), Some((Time(5), Time(10))));
        // Offline at the wrong moment is a deviation (paper, Section 3).
        assert!(!off.is_compliant());
    }

    #[test]
    fn sore_loser_abandons_once_counterparties_are_locked_in() {
        let spec = broker_spec();
        let s = sore_loser();
        let me = PartyId(0);
        // Nothing observed yet: behaves compliantly.
        let view = DealView::default();
        let c = ctx(&spec, &view, me, Some(true));
        assert!(s.on_escrow(&c));
        assert!(s.on_transfer(&c));
        assert_eq!(s.on_vote(&c), Vote::Commit);
        // Every counterparty escrow observed: abandon.
        let mut view = DealView::default();
        for e in spec.escrows.iter().filter(|e| e.owner != me) {
            view.escrows.push((e.chain, e.owner));
        }
        let c = ctx(&spec, &view, me, Some(true));
        assert!(s.on_escrow(&c)); // it still escrows — the bait
        assert!(!s.on_transfer(&c));
        assert_eq!(s.on_vote(&c), Vote::Withhold);
        assert!(!s.on_claim(&c));
    }

    #[test]
    fn coalition_votes_as_a_bloc_and_resets_with_fresh() {
        let spec = broker_spec();
        let members = [PartyId(0), PartyId(1)];
        let s = coalition(members);
        let view = DealView::default();
        // Member 0 validates successfully, member 1 does not.
        assert!(s.on_validate(&ctx(&spec, &view, PartyId(0), Some(true))));
        assert!(!s.on_validate(&ctx(&spec, &view, PartyId(1), Some(false))));
        // Both members now vote abort: the bloc is dissatisfied.
        assert_eq!(
            s.on_vote(&ctx(&spec, &view, PartyId(0), Some(true))),
            Vote::Abort
        );
        assert_eq!(
            s.on_vote(&ctx(&spec, &view, PartyId(1), Some(false))),
            Vote::Abort
        );
        // A fresh instance has clean state: with both verdicts good it commits.
        let f = s.fresh().expect("coalition is stateful");
        assert!(f.on_validate(&ctx(&spec, &view, PartyId(0), Some(true))));
        assert!(f.on_validate(&ctx(&spec, &view, PartyId(1), Some(true))));
        assert_eq!(
            f.on_vote(&ctx(&spec, &view, PartyId(0), Some(true))),
            Vote::Commit
        );
        // The old instance still remembers the bad verdict.
        assert_eq!(
            s.on_vote(&ctx(&spec, &view, PartyId(0), Some(true))),
            Vote::Abort
        );
    }

    #[test]
    fn coalition_claims_in_protocols_without_a_validation_phase() {
        // The HTLC swap never calls on_validate (ctx.validated is None), so
        // the members' missing verdicts must not read as dissatisfaction.
        let spec = broker_spec();
        let view = DealView::default();
        let s = coalition([PartyId(0), PartyId(1)]);
        let c = ctx(&spec, &view, PartyId(0), None);
        assert_eq!(s.on_vote(&c), Vote::Commit);
        assert!(s.on_claim(&c));
    }

    #[test]
    fn rational_defector_ignores_bystander_escrows() {
        // Only the *declared* escrow owners back a chain: the defector's own
        // escrow (or a third party's) on the incoming chain must not stand in
        // for the counterparty's missing one.
        let spec = broker_spec();
        let carol = PartyId(2);
        let generous = rational_defector(1_000);
        // Carol observes her own chain-1 escrow and a stray chain-0 escrow by
        // herself — but Bob (the declared ticket escrower) never escrowed.
        let mut view = DealView::default();
        for e in spec.escrows.iter().filter(|e| e.owner == carol) {
            view.escrows.push((e.chain, e.owner));
        }
        view.escrows.push((spec.escrows[0].chain, carol));
        assert_eq!(
            generous.on_vote(&ctx(&spec, &view, carol, Some(true))),
            Vote::Abort
        );
    }

    #[test]
    fn rational_defector_commits_only_above_its_threshold() {
        let spec = broker_spec();
        // Carol (party 2) pays 101 coins for 2 tickets.
        let carol = PartyId(2);
        let mut view = DealView::default();
        for e in &spec.escrows {
            view.escrows.push((e.chain, e.owner));
        }
        // Tickets valued at 100 each: 200 incoming > 101 outgoing → commit.
        let generous = rational_defector(100);
        assert_eq!(
            generous.on_vote(&ctx(&spec, &view, carol, Some(true))),
            Vote::Commit
        );
        // Tickets valued at 10 each: 20 < 101 → defect.
        let stingy = rational_defector(10);
        assert_eq!(
            stingy.on_vote(&ctx(&spec, &view, carol, Some(true))),
            Vote::Abort
        );
        // With no escrow observed backing the incoming chain, even generous
        // valuations defect: unbacked promises count for nothing.
        let empty = DealView::default();
        assert_eq!(
            generous.on_vote(&ctx(&spec, &empty, carol, Some(true))),
            Vote::Abort
        );
    }

    #[test]
    fn view_helpers_answer_lockin_questions() {
        let spec = broker_spec();
        let mut view = DealView::default();
        assert!(!view.counterparty_escrows_locked(&spec, PartyId(0)));
        for e in &spec.escrows {
            view.escrows.push((e.chain, e.owner));
        }
        assert!(view.counterparty_escrows_locked(&spec, PartyId(0)));
        assert!(view.escrowed(spec.escrows[0].chain, spec.escrows[0].owner));
        assert!(!view.has_voted(PartyId(1)));
        view.commit_votes.push(PartyId(1));
        assert!(view.has_voted(PartyId(1)));
    }
}
