//! The generic escrow manager: the paper's Section 4 escrow/transfer semantics.
//!
//! Escrow "plays the role of classical concurrency control, ensuring that a
//! single asset cannot be transferred to different parties at the same time":
//! the contract itself becomes the asset's owner for the duration of the deal.
//! The deal's tentative state is captured by two maps:
//!
//! * the **A map** (abort): who gets each escrowed asset back if the deal
//!   aborts — always the original owner;
//! * the **C map** (commit): who receives each asset if the deal commits —
//!   initially the original owner, updated by tentative transfers.
//!
//! Both commit protocols (timelock and CBC) embed an [`EscrowCore`] and add
//! their own resolution rules on top.

use std::any::Any;
use std::collections::BTreeMap;

use xchain_sim::asset::{Asset, AssetBag};
use xchain_sim::contract::{CallCtx, Contract};
use xchain_sim::error::ChainResult;
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::intern::{InternedAsset, InternedBag, KindTable};

/// How an escrow ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscrowResolution {
    /// The deal committed here: the C map was paid out.
    Committed,
    /// The deal aborted here: the A map (original owners) was refunded.
    Aborted,
}

/// One escrow deposit: the A-map entry for an asset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscrowDeposit {
    /// The party that escrowed the asset (refund target on abort).
    pub original_owner: PartyId,
    /// The escrowed asset.
    pub asset: Asset,
}

/// The escrow state shared by both commit protocols.
///
/// Internally, both the A map (deposits) and the C map (tentative commit
/// ownership) are kept in interned form ([`InternedAsset`] / [`InternedBag`]):
/// kind names are resolved to `Copy` [`xchain_sim::intern::KindId`]s once at
/// deposit time, so the per-call escrow/transfer/release paths never clone a
/// `String`. The name-keyed views ([`EscrowCore::deposits`],
/// [`EscrowCore::on_commit_of`], …) resolve ids back through the chain's
/// [`KindTable`], which the contract receives at install time.
#[derive(Debug, Clone)]
pub struct EscrowCore {
    deal: DealId,
    plist: Vec<PartyId>,
    /// The hosting chain's kind table (set on install; empty until then).
    kinds: KindTable,
    /// A map: deposits, refunded to their original owners on abort.
    deposits: Vec<(PartyId, InternedAsset)>,
    /// C map: what each party receives if the deal commits at this chain.
    on_commit: BTreeMap<PartyId, InternedBag>,
    resolution: Option<EscrowResolution>,
}

impl EscrowCore {
    /// Creates the escrow state for a deal with the given participant list.
    pub fn new(deal: DealId, plist: Vec<PartyId>) -> Self {
        EscrowCore {
            deal,
            plist,
            kinds: KindTable::new(),
            deposits: Vec::new(),
            on_commit: BTreeMap::new(),
            resolution: None,
        }
    }

    /// Adopts the hosting chain's kind table. The escrow managers forward
    /// [`Contract::on_install`] here.
    pub fn install(&mut self, kinds: &KindTable) {
        self.kinds = kinds.clone();
    }

    /// The deal this escrow belongs to.
    pub fn deal(&self) -> DealId {
        self.deal
    }

    /// The participant list.
    pub fn plist(&self) -> &[PartyId] {
        &self.plist
    }

    /// True if `p` participates in the deal.
    pub fn is_participant(&self, p: PartyId) -> bool {
        self.plist.contains(&p)
    }

    /// How the escrow resolved, if it has.
    pub fn resolution(&self) -> Option<EscrowResolution> {
        self.resolution
    }

    /// True if the escrow has neither committed nor aborted yet.
    pub fn is_active(&self) -> bool {
        self.resolution.is_none()
    }

    /// All deposits made so far (the A map), resolved to named assets.
    /// Materializes one `EscrowDeposit` (and its resolved kind name) per
    /// entry — a reporting convenience; hot paths use
    /// [`EscrowCore::deposits_iter`] instead.
    pub fn deposits(&self) -> Vec<EscrowDeposit> {
        self.deposits_iter()
            .map(|(owner, asset)| EscrowDeposit {
                original_owner: owner,
                asset: asset.resolve(&self.kinds),
            })
            .collect()
    }

    /// Borrowing iterator over the A map: `(original owner, interned
    /// deposit)` pairs in deposit order, with no resolution and no
    /// allocation. This is the engine-facing view of the deposits.
    pub fn deposits_iter(&self) -> impl Iterator<Item = (PartyId, &InternedAsset)> {
        self.deposits.iter().map(|(owner, asset)| (*owner, asset))
    }

    /// What `party` would receive if the deal committed now (the C map),
    /// resolved to named assets.
    pub fn on_commit_of(&self, party: PartyId) -> AssetBag {
        self.on_commit
            .get(&party)
            .map(|b| b.resolve(&self.kinds))
            .unwrap_or_default()
    }

    /// True if `party`'s C-map entry covers at least `expected` — the
    /// validation fast path: compares interned bags directly, so per-party
    /// validation never resolves a kind name or allocates a bag.
    pub fn on_commit_covers(&self, party: PartyId, expected: &InternedBag) -> bool {
        match self.on_commit.get(&party) {
            Some(bag) => bag.covers(expected),
            None => expected.is_empty(),
        }
    }

    /// Everything currently held in escrow, summed across deposits.
    pub fn total_escrowed(&self) -> AssetBag {
        let mut bag = AssetBag::new();
        for (_, asset) in self.deposits_iter() {
            bag.add(&asset.resolve(&self.kinds));
        }
        bag
    }

    /// Escrow precondition + postcondition of Section 4:
    /// `Pre: Owns(P, a)` — enforced by the deposit transfer;
    /// `Post: Owns(D, a) ∧ OwnsC(P, a) ∧ OwnsA(P, a)`.
    ///
    /// Gas: 2 storage writes for the deposit transfer plus 1 each for the A
    /// and C map updates — the 4 writes of Figure 3's `escrow`.
    pub fn escrow(&mut self, ctx: &mut CallCtx<'_>, asset: Asset) -> ChainResult<()> {
        // Resolve the kind to a Copy id once; everything after is id-keyed.
        let asset = ctx.intern_asset(&asset);
        self.escrow_interned(ctx, asset)
    }

    /// [`EscrowCore::escrow`] for a pre-interned asset: the plan-based
    /// engines resolve every escrow's kind once per deal (against the table
    /// the world was built from), so even escrow *entry* touches no
    /// `String`. Same checks, gas, and log entry as the named path.
    pub fn escrow_interned(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: InternedAsset,
    ) -> ChainResult<()> {
        let caller = ctx.caller_party()?;
        ctx.require(self.is_active(), "deal already resolved")?;
        ctx.require(self.is_participant(caller), "caller not in plist")?;
        ctx.require(!asset.is_empty(), "cannot escrow an empty asset")?;
        // Pre: Owns(P, a): the deposit fails if the caller does not own it.
        ctx.deposit_interned_from_caller(&asset)?;
        let magnitude = asset.magnitude();
        // A map entry (1 write) + C map entry (1 write). Both maps are
        // recorded before the emit below can fail (out of gas), so an abort
        // can always refund exactly what was deposited.
        ctx.charge_storage_write()?;
        ctx.charge_storage_write()?;
        self.on_commit.entry(caller).or_default().add(&asset);
        self.deposits.push((caller, asset));
        ctx.emit("escrow", vec![self.deal.0, caller.0 as u64, magnitude])?;
        Ok(())
    }

    /// Tentative transfer of Section 4:
    /// `Pre: Owns(D, a) ∧ OwnsC(P, a)`; `Post: OwnsC(Q, a)`.
    ///
    /// Gas: 2 storage writes (decrement sender's C entry, increment the
    /// recipient's — Figure 3 lines 15–16).
    pub fn transfer(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: Asset,
        to: PartyId,
    ) -> ChainResult<()> {
        let asset = ctx.intern_asset(&asset);
        self.transfer_interned(ctx, &asset, to)
    }

    /// [`EscrowCore::transfer`] for a pre-interned asset (same checks, gas,
    /// and log entry as the named path).
    pub fn transfer_interned(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: &InternedAsset,
        to: PartyId,
    ) -> ChainResult<()> {
        let caller = ctx.caller_party()?;
        ctx.require(self.is_active(), "deal already resolved")?;
        ctx.require(self.is_participant(caller), "caller not in plist")?;
        ctx.require(self.is_participant(to), "recipient not in plist")?;
        let sender_bag = self.on_commit.entry(caller).or_default();
        ctx.require(
            sender_bag.contains(asset),
            "caller does not tentatively own the asset",
        )?;
        ctx.charge_storage_write()?;
        let removed = self
            .on_commit
            .get_mut(&caller)
            .map(|b| b.remove(asset))
            .unwrap_or(false);
        debug_assert!(removed, "contains() checked above");
        ctx.charge_storage_write()?;
        self.on_commit.entry(to).or_default().add(asset);
        ctx.emit(
            "tentative-transfer",
            vec![self.deal.0, caller.0 as u64, to.0 as u64, asset.magnitude()],
        )?;
        Ok(())
    }

    /// Pays the C map out to its owners and marks the escrow committed.
    /// Called by the protocol-specific managers once their commit condition
    /// holds. One storage write records the outcome, plus the payout writes.
    /// The whole release path works on interned kinds — no `String` is
    /// cloned, looked up, or constructed here.
    pub fn distribute_commit(&mut self, ctx: &mut CallCtx<'_>) -> ChainResult<()> {
        ctx.require(self.is_active(), "deal already resolved")?;
        ctx.charge_storage_write()?;
        self.resolution = Some(EscrowResolution::Committed);
        for (party, bag) in &self.on_commit {
            for (kind, amount) in bag.fungible_holdings() {
                if amount == 0 {
                    continue;
                }
                ctx.pay_out_fungible((*party).into(), kind, amount)?;
            }
            for (kind, tokens) in bag.non_fungible_holdings() {
                if tokens.is_empty() {
                    continue;
                }
                ctx.pay_out_tokens((*party).into(), kind, tokens)?;
            }
        }
        ctx.emit("escrow-committed", vec![self.deal.0])?;
        Ok(())
    }

    /// Refunds every deposit to its original owner and marks the escrow
    /// aborted. Like the commit path, refunds are paid out of the interned A
    /// map without touching kind names.
    pub fn distribute_abort(&mut self, ctx: &mut CallCtx<'_>) -> ChainResult<()> {
        ctx.require(self.is_active(), "deal already resolved")?;
        ctx.charge_storage_write()?;
        self.resolution = Some(EscrowResolution::Aborted);
        for (owner, asset) in self.deposits_iter() {
            ctx.pay_out_interned(owner.into(), asset)?;
        }
        ctx.emit("escrow-aborted", vec![self.deal.0])?;
        Ok(())
    }
}

/// A bare escrow manager exposing only the Section 4 escrow/transfer
/// semantics plus explicit commit/abort. It has no commit *protocol* of its
/// own — the timelock and CBC managers wrap [`EscrowCore`] with one — but it
/// is useful on its own for unit tests, for the Figure 3 gas measurements and
/// as the building block of the swap baseline.
#[derive(Debug, Clone)]
pub struct EscrowManager {
    core: EscrowCore,
}

impl EscrowManager {
    /// Creates an escrow manager for a deal.
    pub fn new(deal: DealId, plist: Vec<PartyId>) -> Self {
        EscrowManager {
            core: EscrowCore::new(deal, plist),
        }
    }

    /// Read access to the shared escrow state.
    pub fn core(&self) -> &EscrowCore {
        &self.core
    }

    /// Escrows an asset (see [`EscrowCore::escrow`]).
    pub fn escrow(&mut self, ctx: &mut CallCtx<'_>, asset: Asset) -> ChainResult<()> {
        self.core.escrow(ctx, asset)
    }

    /// Tentatively transfers an escrowed asset (see [`EscrowCore::transfer`]).
    pub fn transfer(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: Asset,
        to: PartyId,
    ) -> ChainResult<()> {
        self.core.transfer(ctx, asset, to)
    }

    /// Commits unconditionally (test/measurement hook).
    pub fn force_commit(&mut self, ctx: &mut CallCtx<'_>) -> ChainResult<()> {
        self.core.distribute_commit(ctx)
    }

    /// Aborts unconditionally (test/measurement hook).
    pub fn force_abort(&mut self, ctx: &mut CallCtx<'_>) -> ChainResult<()> {
        self.core.distribute_abort(ctx)
    }
}

impl Contract for EscrowManager {
    fn type_name(&self) -> &'static str {
        "escrow-manager"
    }
    fn on_install(&mut self, kinds: &KindTable) {
        self.core.install(kinds);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_sim::error::ChainError;
    use xchain_sim::ids::{ChainId, Owner};
    use xchain_sim::ledger::Blockchain;
    use xchain_sim::time::{Duration, Time};

    fn setup() -> (
        Blockchain,
        xchain_sim::ids::ContractId,
        PartyId,
        PartyId,
        PartyId,
    ) {
        let mut chain = Blockchain::new(ChainId(0), "tickets", Duration(1));
        let bob = PartyId(1);
        let alice = PartyId(0);
        let carol = PartyId(2);
        chain
            .mint(Owner::Party(bob), &Asset::non_fungible("ticket", [1, 2]))
            .unwrap();
        chain
            .mint(Owner::Party(carol), &Asset::fungible("coin", 101))
            .unwrap();
        let id = chain.install(EscrowManager::new(DealId(7), vec![alice, bob, carol]));
        (chain, id, alice, bob, carol)
    }

    #[test]
    fn escrow_requires_ownership_and_membership() {
        let (mut chain, id, _alice, bob, _carol) = setup();
        // Bob escrows his tickets: ok.
        chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::non_fungible("ticket", [1, 2])),
            )
            .unwrap();
        // Escrow contract now owns the tickets.
        assert!(chain
            .assets()
            .holds(Owner::Contract(id), &Asset::non_fungible("ticket", [1, 2])));
        // A stranger cannot escrow.
        let err = chain
            .call(
                Time(0),
                Owner::Party(PartyId(9)),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::fungible("coin", 1)),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
        // Bob cannot escrow tickets he no longer owns.
        let err = chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::non_fungible("ticket", [1])),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::NotTokenOwner { .. }));
    }

    #[test]
    fn escrow_costs_four_writes_and_transfer_two() {
        // Figure 3: escrow = 4 storage writes, tentative transfer = 2.
        let (mut chain, id, alice, bob, _carol) = setup();
        let before = chain.gas_usage();
        chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::non_fungible("ticket", [1, 2])),
            )
            .unwrap();
        let after_escrow = chain.gas_usage();
        assert_eq!(before.delta_to(&after_escrow).storage_writes, 4);

        chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| {
                    m.transfer(ctx, Asset::non_fungible("ticket", [1, 2]), alice)
                },
            )
            .unwrap();
        let after_transfer = chain.gas_usage();
        assert_eq!(after_escrow.delta_to(&after_transfer).storage_writes, 2);
    }

    #[test]
    fn tentative_transfers_update_c_map_only() {
        let (mut chain, id, alice, bob, carol) = setup();
        chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::non_fungible("ticket", [1, 2])),
            )
            .unwrap();
        chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| {
                    m.transfer(ctx, Asset::non_fungible("ticket", [1, 2]), alice)
                },
            )
            .unwrap();
        chain
            .call(
                Time(0),
                Owner::Party(alice),
                id,
                |m: &mut EscrowManager, ctx| {
                    m.transfer(ctx, Asset::non_fungible("ticket", [1, 2]), carol)
                },
            )
            .unwrap();
        let (bob_c, carol_c) = chain
            .view(id, |m: &EscrowManager| {
                (m.core().on_commit_of(bob), m.core().on_commit_of(carol))
            })
            .unwrap();
        assert!(bob_c.is_empty());
        assert!(carol_c.contains(&Asset::non_fungible("ticket", [1, 2])));
        // The chain-level owner is still the contract until resolution.
        assert!(chain
            .assets()
            .holds(Owner::Contract(id), &Asset::non_fungible("ticket", [1, 2])));
    }

    #[test]
    fn cannot_transfer_what_you_do_not_tentatively_own() {
        let (mut chain, id, alice, bob, carol) = setup();
        chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::fungible("coin", 101)),
            )
            .unwrap();
        // Bob has escrowed nothing here; he cannot move Carol's coins.
        let err = chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.transfer(ctx, Asset::fungible("coin", 50), alice),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
        // Carol cannot over-transfer either.
        let err = chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.transfer(ctx, Asset::fungible("coin", 102), alice),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }

    #[test]
    fn commit_pays_c_map_and_abort_refunds_a_map() {
        // Commit path.
        let (mut chain, id, alice, bob, carol) = setup();
        chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::fungible("coin", 101)),
            )
            .unwrap();
        chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.transfer(ctx, Asset::fungible("coin", 101), alice),
            )
            .unwrap();
        chain
            .call(
                Time(0),
                Owner::Party(alice),
                id,
                |m: &mut EscrowManager, ctx| m.transfer(ctx, Asset::fungible("coin", 100), bob),
            )
            .unwrap();
        chain
            .call(
                Time(1),
                Owner::Party(alice),
                id,
                |m: &mut EscrowManager, ctx| m.force_commit(ctx),
            )
            .unwrap();
        assert_eq!(
            chain.assets().balance(Owner::Party(bob), &"coin".into()),
            100
        );
        assert_eq!(
            chain.assets().balance(Owner::Party(alice), &"coin".into()),
            1
        );
        assert_eq!(
            chain.assets().balance(Owner::Party(carol), &"coin".into()),
            0
        );

        // Abort path on a fresh chain.
        let (mut chain, id, alice, _bob, carol) = setup();
        chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::fungible("coin", 101)),
            )
            .unwrap();
        chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.transfer(ctx, Asset::fungible("coin", 101), alice),
            )
            .unwrap();
        chain
            .call(
                Time(1),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.force_abort(ctx),
            )
            .unwrap();
        // Despite the tentative transfer, the abort refunds the original owner.
        assert_eq!(
            chain.assets().balance(Owner::Party(carol), &"coin".into()),
            101
        );
        assert_eq!(
            chain.assets().balance(Owner::Party(alice), &"coin".into()),
            0
        );
    }

    #[test]
    fn resolution_is_terminal() {
        let (mut chain, id, _alice, bob, _carol) = setup();
        chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::non_fungible("ticket", [1])),
            )
            .unwrap();
        chain
            .call(
                Time(1),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.force_abort(ctx),
            )
            .unwrap();
        // No further escrow, transfer, or second resolution.
        for result in [
            chain.call(
                Time(2),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::non_fungible("ticket", [2])),
            ),
            chain.call(
                Time(2),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.force_commit(ctx),
            ),
            chain.call(
                Time(2),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.force_abort(ctx),
            ),
        ] {
            assert!(matches!(result, Err(ChainError::Require(_))));
        }
        assert_eq!(
            chain
                .view(id, |m: &EscrowManager| m.core().resolution())
                .unwrap(),
            Some(EscrowResolution::Aborted)
        );
    }

    #[test]
    fn interned_entry_points_match_the_named_path() {
        // Same deal driven twice: once through the named API, once through
        // the pre-interned API. State, gas, and log entries must agree.
        let run = |interned: bool| {
            let (mut chain, id, alice, bob, _carol) = setup();
            let tickets = Asset::non_fungible("ticket", [1, 2]);
            let pre = chain.kinds().intern_asset(&tickets);
            chain
                .call(
                    Time(0),
                    Owner::Party(bob),
                    id,
                    |m: &mut EscrowManager, ctx| {
                        if interned {
                            m.core.escrow_interned(ctx, pre.clone())
                        } else {
                            m.escrow(ctx, tickets.clone())
                        }
                    },
                )
                .unwrap();
            chain
                .call(
                    Time(1),
                    Owner::Party(bob),
                    id,
                    |m: &mut EscrowManager, ctx| {
                        if interned {
                            m.core.transfer_interned(ctx, &pre, alice)
                        } else {
                            m.transfer(ctx, tickets.clone(), alice)
                        }
                    },
                )
                .unwrap();
            let deposits = chain
                .view(id, |m: &EscrowManager| m.core().deposits())
                .unwrap();
            let c_map = chain
                .view(id, |m: &EscrowManager| m.core().on_commit_of(alice))
                .unwrap();
            (chain.gas_usage(), chain.log().to_vec(), deposits, c_map)
        };
        let (gas_named, log_named, dep_named, c_named) = run(false);
        let (gas_interned, log_interned, dep_interned, c_interned) = run(true);
        assert_eq!(gas_named, gas_interned);
        assert_eq!(log_named, log_interned);
        assert_eq!(dep_named, dep_interned);
        assert_eq!(c_named, c_interned);
    }

    #[test]
    fn deposits_iter_borrows_and_on_commit_covers_compares_interned() {
        let (mut chain, id, alice, _bob, carol) = setup();
        chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::fungible("coin", 101)),
            )
            .unwrap();
        chain
            .call(
                Time(0),
                Owner::Party(carol),
                id,
                |m: &mut EscrowManager, ctx| m.transfer(ctx, Asset::fungible("coin", 60), alice),
            )
            .unwrap();
        let kinds = chain.kinds().clone();
        chain
            .view(id, |m: &EscrowManager| {
                // The borrowing iterator yields the interned A map directly.
                let deposits: Vec<_> = m.core().deposits_iter().collect();
                assert_eq!(deposits.len(), 1);
                assert_eq!(deposits[0].0, carol);
                assert_eq!(deposits[0].1.resolve(&kinds), Asset::fungible("coin", 101));
                // … and matches the materialized reporting view.
                let resolved = m.core().deposits();
                assert_eq!(resolved[0].original_owner, carol);
                assert_eq!(resolved[0].asset, Asset::fungible("coin", 101));

                // Interned coverage check mirrors the resolved C map.
                let mut expected = InternedBag::new();
                expected.add(&kinds.intern_asset(&Asset::fungible("coin", 60)));
                assert!(m.core().on_commit_covers(alice, &expected));
                expected.add(&kinds.intern_asset(&Asset::fungible("coin", 1)));
                assert!(!m.core().on_commit_covers(alice, &expected));
                // A party with no C-map entry covers only the empty bag.
                assert!(m.core().on_commit_covers(PartyId(9), &InternedBag::new()));
                assert!(!m.core().on_commit_covers(PartyId(9), &expected));
            })
            .unwrap();
    }

    #[test]
    fn empty_escrow_rejected() {
        let (mut chain, id, _alice, bob, _carol) = setup();
        let err = chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |m: &mut EscrowManager, ctx| m.escrow(ctx, Asset::fungible("coin", 0)),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }
}
