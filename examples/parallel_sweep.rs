//! The parallel sweep executor in action: one declarative experiment matrix
//! (workloads × engines × networks × adversaries) executed serially and on
//! every available core, producing the *same* points either way — sweeps
//! scale with the hardware without giving up determinism.
//!
//! Run with: `cargo run --release -p xchain-harness --example parallel_sweep`

use std::time::Instant;

use xchain_deals::builders::{broker_spec, ring_spec};
use xchain_deals::properties::check_safety;
use xchain_harness::adversary::single_deviator_configs;
use xchain_harness::executor::available_threads;
use xchain_harness::sweep::{standard_engines, Sweep, SweepOutcome};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

fn matrix(threads: usize) -> Sweep {
    Sweep::new()
        .spec("broker (Fig 1)", broker_spec())
        .spec("ring n=4", ring_spec(DealId(4), 4))
        .over_protocols(standard_engines(100))
        .over_networks(vec![
            ("synchronous".into(), NetworkModel::synchronous(100)),
            (
                "eventually synchronous".into(),
                NetworkModel::eventually_synchronous(500, 100, 1_000),
            ),
        ])
        .over_adversaries(|spec| {
            let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
            scenarios.extend(
                single_deviator_configs(spec, 100)
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (format!("deviator #{i}"), c)),
            );
            scenarios
        })
        .seed(42)
        .threads(threads)
}

fn run_and_time(label: &str, threads: usize) -> (SweepOutcome, f64) {
    let start = Instant::now();
    let outcome = matrix(threads).run().expect("sweep");
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{label:<22} {:>5} points ({} skipped) in {secs:>7.3}s",
        outcome.points.len(),
        outcome.skipped
    );
    (outcome, secs)
}

fn main() {
    let n = available_threads();
    let (serial, serial_secs) = run_and_time("serial (threads=1)", 1);
    let (parallel, parallel_secs) = run_and_time(&format!("parallel (threads={n})"), n);

    // Identical output, cell for cell.
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(
            (&a.spec, &a.engine, &a.network, &a.adversary, a.seed),
            (&b.spec, &b.engine, &b.network, &b.adversary, b.seed)
        );
        assert_eq!(
            a.run.outcome.metrics.total_gas(),
            b.run.outcome.metrics.total_gas()
        );
        assert!(
            check_safety(&a.deal, &a.configs, &a.run.outcome).holds(),
            "{} / {} / {} violated safety",
            a.spec,
            a.engine,
            a.adversary
        );
    }
    println!(
        "outputs identical across thread counts; speedup ×{:.2} on {n} core(s)",
        serial_secs / parallel_secs
    );
}
