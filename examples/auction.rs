//! The Section 9 auction deal: Alice auctions a ticket; Bob and Carol bid
//! coins; the highest bidder wins the ticket and the losing bid is returned.
//! Executed under the CBC commit protocol through the `Deal` builder.
//!
//! Run with: `cargo run -p xchain-harness --example auction`

use xchain_deals::builders::auction_spec;
use xchain_deals::cbc::CbcOptions;
use xchain_deals::properties::check_safety;
use xchain_deals::{Deal, Protocol};
use xchain_sim::asset::Asset;
use xchain_sim::ids::{DealId, Owner, PartyId};
use xchain_sim::network::NetworkModel;

fn main() {
    // Party 0 is the seller; parties 1 and 2 bid 80 and 95 coins.
    let bids = [80u64, 95];
    // The CBC protocol tolerates an eventually-synchronous network.
    let deal = Deal::new(auction_spec(DealId(9), &bids))
        .network(NetworkModel::eventually_synchronous(500, 100, 2_000))
        .seed(7);
    let run = deal
        .run(Protocol::Cbc(CbcOptions {
            f: 1,
            ..CbcOptions::default()
        }))
        .unwrap();

    println!(
        "deal status on the CBC: {:?}",
        run.ext.cbc_status().unwrap()
    );
    println!(
        "committed everywhere:   {}",
        run.outcome.committed_everywhere()
    );
    println!(
        "safety holds:           {}",
        check_safety(deal.spec(), &[], &run.outcome).holds()
    );
    let winner = PartyId(2);
    println!(
        "winner (bid 95) holds the ticket: {}",
        run.world
            .holdings(Owner::Party(winner))
            .contains(&Asset::non_fungible("ticket", [1]))
    );
    println!(
        "seller's coins: {}",
        run.world
            .holdings(Owner::Party(PartyId(0)))
            .balance(&"coin".into())
    );
    println!(
        "losing bidder's refunded coins: {}",
        run.world
            .holdings(Owner::Party(PartyId(1)))
            .balance(&"coin".into())
    );
}
