//! End-to-end coverage of the adversaries only expressible under the open
//! [`Strategy`] API: the sore-loser, the colluding coalition, and the
//! rational defector. Each runs through the `Deal` builder and the `Sweep`
//! executor, the paper's properties hold at every point, and fixed seeds give
//! bit-identical reruns at any thread count.
//!
//! [`Strategy`]: xchain_deals::strategy::Strategy

use xchain_bft::log::CbcRecord;
use xchain_deals::builders::broker_spec;
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::properties::{check_conservation, check_safety, check_weak_liveness};
use xchain_deals::strategy::strategies;
use xchain_deals::{Deal, Protocol};
use xchain_harness::adversary::novel_strategy_scenarios;
use xchain_harness::sweep::{standard_engines, Sweep};
use xchain_harness::workload::ring_spec;
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::network::NetworkModel;

const DELTA: u64 = 100;

#[test]
fn sore_loser_locks_the_deal_but_steals_nothing() {
    let bob = PartyId(1);
    let configs = vec![PartyConfig::with_strategy(bob, strategies::sore_loser())];
    for protocol in [Protocol::timelock(), Protocol::cbc()] {
        let deal = Deal::new(broker_spec())
            .network(NetworkModel::synchronous(DELTA))
            .parties(&configs)
            .seed(5);
        let run = deal.run(&protocol).unwrap();
        // The attack stops the deal, but the timeouts / rescind votes refund
        // every compliant escrow: nobody ends up worse off.
        assert!(!run.outcome.committed_everywhere());
        assert!(run.outcome.fully_resolved());
        assert!(check_safety(deal.spec(), &configs, &run.outcome).holds());
        assert!(check_weak_liveness(deal.spec(), &configs, &run.outcome));
        assert!(check_conservation(deal.spec(), &run.outcome));
    }
}

#[test]
fn sore_loser_abandons_an_htlc_swap_after_both_sides_fund() {
    use xchain_swap::SwapEngine;
    let spec = ring_spec(DealId(88), 2);
    let leader = spec.parties[0];
    let configs = vec![PartyConfig::with_strategy(leader, strategies::sore_loser())];
    let deal = Deal::new(spec.clone())
        .network(NetworkModel::synchronous(DELTA))
        .parties(&configs)
        .seed(6);
    let run = deal.run(SwapEngine::default()).unwrap();
    // The sore-loser funds (baiting the follower into funding) and then
    // refuses to claim; both HTLCs time out and refund.
    assert_eq!(run.ext.swapped(), Some(false));
    assert!(run.outcome.aborted_everywhere());
    assert!(check_safety(&spec, &configs, &run.outcome).holds());
}

#[test]
fn coalition_shares_state_and_aborts_as_a_bloc() {
    let spec = broker_spec();
    let alice = spec.parties[0];
    let bob = spec.parties[1];
    let carol = spec.parties[2];
    let shared = strategies::coalition([alice, bob]);
    // A third party refusing to escrow makes the members' validation fail, so
    // the coalition — which commits only when *every* member is satisfied —
    // votes abort on behalf of the whole group.
    let configs = vec![
        PartyConfig::with_strategy(alice, shared.clone()),
        PartyConfig::with_strategy(bob, shared),
        PartyConfig::deviating(carol, Deviation::RefuseEscrow),
    ];
    let deal = Deal::new(spec.clone())
        .network(NetworkModel::synchronous(DELTA))
        .parties(&configs)
        .seed(7);
    let run = deal.run(Protocol::cbc()).unwrap();
    assert!(run.outcome.aborted_everywhere());
    assert!(run.ext.cbc_status().unwrap().is_aborted());
    // The decisive abort is a coalition member's vote, not the patience
    // timeout of some compliant bystander.
    let log = run.ext.cbc_log().unwrap();
    assert!(log.blocks().iter().any(|b| matches!(
        &b.record,
        CbcRecord::AbortVote { voter, .. } if *voter == alice || *voter == bob
    )));

    // With every escrow in place the same coalition is satisfied and commits.
    let shared = strategies::coalition([alice, bob]);
    let happy = vec![
        PartyConfig::with_strategy(alice, shared.clone()),
        PartyConfig::with_strategy(bob, shared),
    ];
    let run = Deal::new(spec)
        .network(NetworkModel::synchronous(DELTA))
        .parties(&happy)
        .seed(7)
        .run(Protocol::cbc())
        .unwrap();
    assert!(run.outcome.committed_everywhere());
}

#[test]
fn rational_defector_commits_only_when_the_deal_is_worth_it() {
    let spec = broker_spec();
    let carol = spec.parties[2]; // pays 101 coins for 2 tickets
    for protocol in [Protocol::timelock(), Protocol::cbc()] {
        // Tickets valued at 1000 each: clearly worth it — the deal commits.
        let generous = vec![PartyConfig::with_strategy(
            carol,
            strategies::rational_defector(1_000),
        )];
        let run = Deal::new(spec.clone())
            .network(NetworkModel::synchronous(DELTA))
            .parties(&generous)
            .seed(8)
            .run(&protocol)
            .unwrap();
        assert!(run.outcome.committed_everywhere(), "{protocol:?}");

        // Tickets valued at 1 each: 2 < 101, so the defector walks and the
        // deal aborts everywhere — without harming anyone.
        let stingy = vec![PartyConfig::with_strategy(
            carol,
            strategies::rational_defector(1),
        )];
        let run = Deal::new(spec.clone())
            .network(NetworkModel::synchronous(DELTA))
            .parties(&stingy)
            .seed(8)
            .run(&protocol)
            .unwrap();
        assert!(run.outcome.aborted_everywhere(), "{protocol:?}");
        assert!(check_safety(&spec, &stingy, &run.outcome).holds());
    }
}

#[test]
fn novel_strategies_run_deterministically_through_sweeps() {
    let run_once = |threads: usize| {
        Sweep::new()
            .spec("broker", broker_spec())
            .spec("ring n=2", ring_spec(DealId(55), 2))
            .over_protocols(standard_engines(DELTA))
            .over_adversaries(novel_strategy_scenarios)
            .seed(99)
            .threads(threads)
            .run()
            .unwrap()
    };
    let a = run_once(1);
    let b = run_once(1);
    let c = run_once(4);
    assert!(!a.points.is_empty());
    for points in [&b, &c] {
        assert_eq!(a.points.len(), points.points.len());
        for (x, y) in a.points.iter().zip(&points.points) {
            assert_eq!(x.adversary, y.adversary);
            assert_eq!(x.seed, y.seed);
            // Bit-identical outcomes: stateful strategies (the coalition) are
            // freshly instantiated per cell, so reruns and thread counts
            // cannot leak state into the results.
            assert_eq!(
                format!("{:?}", x.run.outcome),
                format!("{:?}", y.run.outcome),
                "{} / {} / {}",
                x.spec,
                x.engine,
                x.adversary
            );
        }
    }
    // Every point satisfies the paper's properties.
    for p in &a.points {
        let label = format!("{} / {} / {}", p.spec, p.engine, p.adversary);
        assert!(
            check_safety(&p.deal, &p.configs, &p.run.outcome).holds(),
            "{label}"
        );
        assert!(
            check_weak_liveness(&p.deal, &p.configs, &p.run.outcome),
            "{label}"
        );
        assert!(check_conservation(&p.deal, &p.run.outcome), "{label}");
    }
}
