//! Microbenchmarks of the protocol building blocks: escrow/transfer contract
//! calls (Figure 3), path-signature verification (Figure 5), CBC certificate
//! verification (Figure 6), and the well-formedness check (Section 5.1).
//!
//! Run with: `cargo bench -p xchain-bench --bench protocol_micro`

use xchain_bench::Suite;
use xchain_bft::log::CbcLog;
use xchain_deals::builders::{broker_spec, ring_spec};
use xchain_deals::digraph::DealDigraph;
use xchain_deals::{Deal, Protocol};
use xchain_sim::crypto::{KeyDirectory, KeyPair, PathSignature};
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Time;

fn main() {
    println!("protocol_micro");
    let mut suite = Suite::from_args("protocol_micro");

    // Figure 3: one full broker deal (escrow + transfer heavy).
    let deal = Deal::new(broker_spec())
        .network(NetworkModel::synchronous(100))
        .seed(3);
    suite.bench("protocol_micro/fig3_broker_deal_timelock", 100, || {
        deal.run(Protocol::timelock()).unwrap()
    });

    // Figure 5: verifying a forwarded path signature of length k.
    for k in [1usize, 4, 8] {
        let mut dir = KeyDirectory::new();
        let keys: Vec<KeyPair> = (0..k as u32)
            .map(|i| {
                let kp = KeyPair::derive(PartyId(i), 7);
                dir.register(PartyId(i), &kp);
                kp
            })
            .collect();
        let msg = [0xC0717u64, 1, 0];
        let mut path = PathSignature::direct(PartyId(0), &keys[0], &msg);
        for (i, key) in keys.iter().enumerate().skip(1) {
            path = path.forwarded_by(PartyId(i as u32), key, &msg);
        }
        suite.bench(
            &format!("protocol_micro/fig5_path_signature_verify/{k}"),
            1_000,
            || {
                assert!(path.signers_unique());
                for (p, sig) in &path.path {
                    let pk = dir.public_key_of(*p).unwrap();
                    assert!(sig.verify(pk, &words(&msg), &dir));
                }
            },
        );
    }

    // Figure 6: issuing and verifying a status certificate for varying f.
    for f in [1usize, 3, 5] {
        let mut cbc = CbcLog::new(f, 9);
        let plist: Vec<PartyId> = (0..3).map(PartyId).collect();
        let (_, h) = cbc
            .start_deal(Time(0), plist[0], DealId(1), plist.clone())
            .unwrap();
        for (i, p) in plist.iter().enumerate() {
            cbc.vote_commit(Time(i as u64 + 1), DealId(1), h, *p)
                .unwrap();
        }
        let mut dir = KeyDirectory::new();
        cbc.validators().register_in(&mut dir);
        suite.bench(
            &format!("protocol_micro/fig6_status_certificate/{f}"),
            500,
            || {
                let cert = cbc.status_certificate(Time(10), DealId(1), h).unwrap();
                assert!(cert.verify(&cbc.current_validators(), &dir));
            },
        );
    }

    // Section 5.1: strong-connectivity check on large rings.
    for n in [10u32, 100, 500] {
        let spec = ring_spec(DealId(n as u64), n);
        suite.bench(
            &format!("protocol_micro/well_formedness_scc/{n}"),
            200,
            || DealDigraph::from_spec(&spec).is_strongly_connected(),
        );
    }
    suite.finish();
}

fn words(w: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    for x in w {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}
