//! Asset-kind interning: the hot-path representation of asset classes.
//!
//! Asset kinds are *named* at the specification level ([`crate::asset::AssetKind`]
//! wraps a `String` so deal specs stay human-readable), but ledger and escrow
//! operations run once per simulated transaction, and keying maps on `String`
//! forced a clone-per-lookup on every one of them. This module fixes the
//! representation: each world owns an [`Interner`] that maps every kind name
//! to a dense, `Copy` [`KindId`], and the [`crate::ledger::AssetLedger`],
//! escrow contracts, and HTLCs all key their state on ids instead of names.
//!
//! * [`KindId`] — a `u32` handle, `Copy`/`Ord`/`Hash`; the ledger's map keys.
//! * [`Interner`] — the bidirectional name ↔ id table.
//! * [`KindTable`] — a cheaply-cloneable shared handle (`Arc<RwLock<Interner>>`)
//!   owned by the [`crate::world::World`] and handed to every chain it
//!   creates, so a kind name resolves to the same id on all of a world's
//!   chains. Standalone [`crate::ledger::Blockchain`]s create their own.
//! * [`InternedAsset`] / [`InternedBag`] — the id-keyed counterparts of
//!   [`crate::asset::Asset`] and [`crate::asset::AssetBag`], used by contract
//!   state so the escrow/release path never touches a `String`.
//!
//! Interning happens at the cold boundaries (mint, first escrow of a kind);
//! everything after is `Copy` ids. Ids are assigned in first-intern order,
//! which is deterministic for a deterministic setup, so identically-seeded
//! worlds produce identical ids.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, RwLock};

use crate::asset::{Asset, AssetBag, AssetKind};
use crate::ids::TokenId;

/// A dense, `Copy` handle for an asset kind, valid within one [`Interner`]
/// (i.e. within one world, or one standalone chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KindId(pub u32);

impl fmt::Display for KindId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kind#{}", self.0)
    }
}

/// The bidirectional asset-kind name ↔ [`KindId`] table.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, assigning the next free id on first use.
    pub fn intern(&mut self, name: &str) -> KindId {
        if let Some(&id) = self.index.get(name) {
            return KindId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        KindId(id)
    }

    /// The id previously assigned to `name`, if any. Never allocates.
    pub fn get(&self, name: &str) -> Option<KindId> {
        self.index.get(name).copied().map(KindId)
    }

    /// The name behind an id, if the id was produced by this interner.
    pub fn resolve(&self, id: KindId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned kinds.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A shared handle to a world's [`Interner`].
///
/// The world owns the canonical table and every chain it creates holds a
/// clone of this handle, so `"coin"` means the same [`KindId`] on all of the
/// world's chains. Cloning the handle is an `Arc` bump. Reads take a shared
/// lock (an atomic op), writes happen only when a *new* kind name is first
/// interned — never on the per-transfer hot path.
#[derive(Clone, Default)]
pub struct KindTable {
    inner: Arc<RwLock<Interner>>,
}

impl KindTable {
    /// Creates a handle to a fresh, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// A deep copy of the table: a *new* interner seeded with every
    /// assignment made so far, after which the two tables evolve
    /// independently. This is how a pre-resolved `DealPlan` (in
    /// `xchain-deals`) hands every world built from it the same
    /// name → id assignments without sharing a lock: the plan interns its
    /// kinds once into a canonical table, and each world starts from a fork,
    /// so the plan's ids are valid on all of them by construction.
    pub fn fork(&self) -> KindTable {
        let copy = self.inner.read().expect("interner lock").clone();
        KindTable {
            inner: Arc::new(RwLock::new(copy)),
        }
    }

    /// Interns a kind name (see [`Interner::intern`]).
    pub fn intern(&self, name: &str) -> KindId {
        // Fast path: the name is almost always known already.
        if let Some(id) = self.inner.read().expect("interner lock").get(name) {
            return id;
        }
        self.inner.write().expect("interner lock").intern(name)
    }

    /// The id previously assigned to `name`, if any. Never allocates.
    pub fn get(&self, name: &str) -> Option<KindId> {
        self.inner.read().expect("interner lock").get(name)
    }

    /// The [`AssetKind`] behind an id (allocates the returned name; intended
    /// for reporting and error paths, not per-transfer code).
    pub fn resolve(&self, id: KindId) -> Option<AssetKind> {
        self.inner
            .read()
            .expect("interner lock")
            .resolve(id)
            .map(AssetKind::new)
    }

    /// The name behind an id, or `"?"` for unknown ids (error messages).
    pub fn name_of(&self, id: KindId) -> String {
        self.inner
            .read()
            .expect("interner lock")
            .resolve(id)
            .unwrap_or("?")
            .to_string()
    }

    /// Interns the kind of an asset and returns its id-keyed counterpart.
    pub fn intern_asset(&self, asset: &Asset) -> InternedAsset {
        match asset {
            Asset::Fungible { kind, amount } => InternedAsset::Fungible {
                kind: self.intern(kind.name()),
                amount: *amount,
            },
            Asset::NonFungible { kind, tokens } => InternedAsset::NonFungible {
                kind: self.intern(kind.name()),
                tokens: tokens.clone(),
            },
        }
    }

    /// Number of interned kinds.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner lock").len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().expect("interner lock").is_empty()
    }
}

impl fmt::Debug for KindTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KindTable")
            .field("kinds", &self.len())
            .finish()
    }
}

/// The id-keyed counterpart of [`Asset`]: what contracts store and what the
/// ledger's interned fast paths consume. No `String` anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InternedAsset {
    /// A fungible amount of the given kind.
    Fungible {
        /// The interned asset class.
        kind: KindId,
        /// The amount, in indivisible units.
        amount: u64,
    },
    /// Specific non-fungible tokens of the given kind.
    NonFungible {
        /// The interned asset class.
        kind: KindId,
        /// The specific token instances.
        tokens: BTreeSet<TokenId>,
    },
}

impl InternedAsset {
    /// The asset's interned kind.
    pub fn kind(&self) -> KindId {
        match self {
            InternedAsset::Fungible { kind, .. } | InternedAsset::NonFungible { kind, .. } => *kind,
        }
    }

    /// True if the asset is empty (zero amount or no tokens).
    pub fn is_empty(&self) -> bool {
        match self {
            InternedAsset::Fungible { amount, .. } => *amount == 0,
            InternedAsset::NonFungible { tokens, .. } => tokens.is_empty(),
        }
    }

    /// Fungible amount, or number of tokens (mirrors [`Asset::magnitude`]).
    pub fn magnitude(&self) -> u64 {
        match self {
            InternedAsset::Fungible { amount, .. } => *amount,
            InternedAsset::NonFungible { tokens, .. } => tokens.len() as u64,
        }
    }

    /// The name-keyed [`Asset`] this was interned from (reporting only).
    pub fn resolve(&self, kinds: &KindTable) -> Asset {
        match self {
            InternedAsset::Fungible { kind, amount } => Asset::Fungible {
                kind: kinds.resolve(*kind).unwrap_or_else(|| AssetKind::new("?")),
                amount: *amount,
            },
            InternedAsset::NonFungible { kind, tokens } => Asset::NonFungible {
                kind: kinds.resolve(*kind).unwrap_or_else(|| AssetKind::new("?")),
                tokens: tokens.clone(),
            },
        }
    }
}

/// The id-keyed counterpart of [`AssetBag`]: a multi-kind bag with `Copy` map
/// keys, used for contract state (the escrow C map) so per-transfer bag
/// updates never clone a `String`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InternedBag {
    fungible: BTreeMap<KindId, u64>,
    non_fungible: BTreeMap<KindId, BTreeSet<TokenId>>,
}

impl InternedBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an asset to the bag.
    pub fn add(&mut self, asset: &InternedAsset) {
        match asset {
            InternedAsset::Fungible { kind, amount } => {
                *self.fungible.entry(*kind).or_insert(0) += amount;
            }
            InternedAsset::NonFungible { kind, tokens } => {
                self.non_fungible
                    .entry(*kind)
                    .or_default()
                    .extend(tokens.iter().copied());
            }
        }
    }

    /// Removes an asset from the bag; returns false (and leaves the bag
    /// unchanged) if the bag does not contain it.
    pub fn remove(&mut self, asset: &InternedAsset) -> bool {
        if !self.contains(asset) {
            return false;
        }
        match asset {
            InternedAsset::Fungible { kind, amount } => {
                let entry = self.fungible.entry(*kind).or_insert(0);
                *entry -= amount;
                if *entry == 0 {
                    self.fungible.remove(kind);
                }
            }
            InternedAsset::NonFungible { kind, tokens } => {
                if let Some(held) = self.non_fungible.get_mut(kind) {
                    for t in tokens {
                        held.remove(t);
                    }
                    if held.is_empty() {
                        self.non_fungible.remove(kind);
                    }
                }
            }
        }
        true
    }

    /// True if the bag contains at least this asset.
    pub fn contains(&self, asset: &InternedAsset) -> bool {
        match asset {
            InternedAsset::Fungible { kind, amount } => {
                self.fungible.get(kind).copied().unwrap_or(0) >= *amount
            }
            InternedAsset::NonFungible { kind, tokens } => {
                let held = self.non_fungible.get(kind);
                tokens
                    .iter()
                    .all(|t| held.map(|h| h.contains(t)).unwrap_or(false))
            }
        }
    }

    /// True if the bag holds nothing.
    pub fn is_empty(&self) -> bool {
        self.fungible.values().all(|v| *v == 0) && self.non_fungible.values().all(|s| s.is_empty())
    }

    /// Component-wise comparison: true if `self` holds at least everything in
    /// `other` (every fungible balance ≥ and every token set a superset) —
    /// the id-keyed counterpart of [`AssetBag::covers`], used by the escrow
    /// validation fast path so the per-party check never resolves a name.
    pub fn covers(&self, other: &InternedBag) -> bool {
        for (kind, amount) in &other.fungible {
            if *amount > 0 && self.fungible.get(kind).copied().unwrap_or(0) < *amount {
                return false;
            }
        }
        for (kind, tokens) in &other.non_fungible {
            let held = self.non_fungible.get(kind);
            if !tokens
                .iter()
                .all(|t| held.map(|h| h.contains(t)).unwrap_or(false))
            {
                return false;
            }
        }
        true
    }

    /// Iterates over all (kind, amount) fungible holdings.
    pub fn fungible_holdings(&self) -> impl Iterator<Item = (KindId, u64)> + '_ {
        self.fungible.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates over all (kind, token set) non-fungible holdings.
    pub fn non_fungible_holdings(&self) -> impl Iterator<Item = (KindId, &BTreeSet<TokenId>)> {
        self.non_fungible.iter().map(|(k, ts)| (*k, ts))
    }

    /// The name-keyed [`AssetBag`] view of this bag (reporting/validation).
    pub fn resolve(&self, kinds: &KindTable) -> AssetBag {
        let mut bag = AssetBag::new();
        for (kind, amount) in &self.fungible {
            if *amount == 0 {
                continue;
            }
            bag.add(&Asset::Fungible {
                kind: kinds.resolve(*kind).unwrap_or_else(|| AssetKind::new("?")),
                amount: *amount,
            });
        }
        for (kind, tokens) in &self.non_fungible {
            if tokens.is_empty() {
                continue;
            }
            bag.add(&Asset::NonFungible {
                kind: kinds.resolve(*kind).unwrap_or_else(|| AssetKind::new("?")),
                tokens: tokens.clone(),
            });
        }
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let t = KindTable::new();
        let coin = t.intern("coin");
        let ticket = t.intern("ticket");
        assert_eq!(coin, KindId(0));
        assert_eq!(ticket, KindId(1));
        assert_eq!(t.intern("coin"), coin);
        assert_eq!(t.get("coin"), Some(coin));
        assert_eq!(t.get("gold"), None);
        assert_eq!(t.resolve(coin), Some(AssetKind::new("coin")));
        assert_eq!(t.resolve(KindId(9)), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_is_shared_between_clones() {
        let a = KindTable::new();
        let b = a.clone();
        let id = a.intern("coin");
        assert_eq!(b.get("coin"), Some(id));
    }

    #[test]
    fn fork_copies_assignments_then_diverges() {
        let a = KindTable::new();
        let coin = a.intern("coin");
        let b = a.fork();
        // Existing assignments carry over …
        assert_eq!(b.get("coin"), Some(coin));
        // … but new interning is independent in both directions.
        let gold_in_b = b.intern("gold");
        assert_eq!(a.get("gold"), None);
        let silver_in_a = a.intern("silver");
        assert_eq!(b.get("silver"), None);
        // Both assigned the same next id, each in its own table.
        assert_eq!(gold_in_b, silver_in_a);
    }

    #[test]
    fn interned_bag_covers_mirrors_asset_bag_covers() {
        let t = KindTable::new();
        let mut a = InternedBag::new();
        a.add(&t.intern_asset(&Asset::fungible("coin", 100)));
        a.add(&t.intern_asset(&Asset::non_fungible("ticket", [1, 2])));
        let mut b = InternedBag::new();
        b.add(&t.intern_asset(&Asset::fungible("coin", 50)));
        b.add(&t.intern_asset(&Asset::non_fungible("ticket", [1])));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert!(a.covers(&InternedBag::new()));
        // A zero-amount leftover entry never blocks coverage.
        let mut c = InternedBag::new();
        c.add(&t.intern_asset(&Asset::fungible("dust", 5)));
        assert!(c.remove(&t.intern_asset(&Asset::fungible("dust", 5))));
        assert!(a.covers(&c));
    }

    #[test]
    fn interned_asset_roundtrips() {
        let t = KindTable::new();
        let coins = t.intern_asset(&Asset::fungible("coin", 101));
        let tickets = t.intern_asset(&Asset::non_fungible("ticket", [1, 2]));
        assert_eq!(coins.magnitude(), 101);
        assert_eq!(tickets.magnitude(), 2);
        assert!(!coins.is_empty());
        assert_ne!(coins.kind(), tickets.kind());
        assert_eq!(coins.resolve(&t), Asset::fungible("coin", 101));
        assert_eq!(tickets.resolve(&t), Asset::non_fungible("ticket", [1, 2]));
    }

    #[test]
    fn interned_bag_mirrors_asset_bag() {
        let t = KindTable::new();
        let mut bag = InternedBag::new();
        assert!(bag.is_empty());
        bag.add(&t.intern_asset(&Asset::fungible("coin", 100)));
        bag.add(&t.intern_asset(&Asset::fungible("coin", 1)));
        bag.add(&t.intern_asset(&Asset::non_fungible("ticket", [7])));
        assert!(bag.contains(&t.intern_asset(&Asset::fungible("coin", 101))));
        assert!(!bag.contains(&t.intern_asset(&Asset::fungible("coin", 102))));
        assert!(bag.remove(&t.intern_asset(&Asset::fungible("coin", 100))));
        assert!(!bag.remove(&t.intern_asset(&Asset::fungible("coin", 100))));
        assert!(bag.remove(&t.intern_asset(&Asset::non_fungible("ticket", [7]))));

        let resolved = bag.resolve(&t);
        assert_eq!(resolved.balance(&"coin".into()), 1);
        assert!(!resolved.contains(&Asset::non_fungible("ticket", [7])));
    }
}
