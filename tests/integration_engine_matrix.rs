//! The engine × spec × adversary matrix: every builder specification runs
//! through every `DealEngine` (timelock, CBC, and the HTLC swap where
//! expressible), under both the all-compliant and single-deviator
//! configurations, and the paper's safety and conservation properties must
//! hold at every point.

use xchain_deals::builders::{auction_spec, broker_spec, brokered_chain_spec, ring_spec};
use xchain_deals::engine::DealEngine;
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::properties::{check_conservation, check_safety, check_weak_liveness};
use xchain_deals::{Deal, Protocol};
use xchain_harness::sweep::{standard_engines, Sweep};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;
use xchain_swap::SwapEngine;

const DELTA: u64 = 100;

fn all_specs() -> Vec<(String, xchain_deals::spec::DealSpec)> {
    vec![
        ("broker".into(), broker_spec()),
        ("ring n=2".into(), ring_spec(DealId(12), 2)),
        ("ring n=4".into(), ring_spec(DealId(14), 4)),
        (
            "auction 3 bidders".into(),
            auction_spec(DealId(20), &[30, 55, 42]),
        ),
        (
            "brokered chain n=5".into(),
            brokered_chain_spec(DealId(30), 5, 60),
        ),
    ]
}

/// Every single-deviator scenario for the matrix: one per (party, deviation)
/// over a compact but protocol-spanning deviation set.
fn matrix_adversaries(spec: &xchain_deals::spec::DealSpec) -> Vec<(String, Vec<PartyConfig>)> {
    let deviations = [
        Deviation::RefuseEscrow,
        Deviation::WithholdVote,
        Deviation::VoteAbort,
        Deviation::RejectValidation,
    ];
    let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
    for &p in &spec.parties {
        for d in deviations {
            scenarios.push((
                format!("{p} deviates with {d:?}"),
                vec![PartyConfig::deviating(p, d)],
            ));
        }
    }
    scenarios
}

#[test]
fn every_spec_through_every_engine_preserves_safety_and_conservation() {
    let outcome = Sweep::new()
        .over_specs(all_specs())
        .over_protocols(standard_engines(DELTA))
        .over_networks(vec![(
            "synchronous".into(),
            NetworkModel::synchronous(DELTA),
        )])
        .over_adversaries(matrix_adversaries)
        .seed(4242)
        .run()
        .unwrap();

    // Timelock and CBC support every spec; the swap engine only the two-party
    // ring, so exactly 4 spec × adversary blocks are skipped for it.
    assert!(outcome.points.len() > 100, "got {}", outcome.points.len());
    assert!(outcome.skipped > 0);

    for p in &outcome.points {
        let label = format!("{} / {} / {}", p.spec, p.engine, p.adversary);
        let report = check_safety(&p.deal, &p.configs, &p.run.outcome);
        assert!(report.holds(), "{label}: {:?}", report.violations);
        assert!(check_conservation(&p.deal, &p.run.outcome), "{label}");
        assert!(
            check_weak_liveness(&p.deal, &p.configs, &p.run.outcome),
            "{label}"
        );
        // All-compliant cells must commit everywhere under synchrony.
        if p.configs.is_empty() {
            assert!(p.run.outcome.committed_everywhere(), "{label}");
        }
    }

    // All three engines actually produced points.
    for engine in ["timelock", "CBC", "HTLC swap"] {
        assert!(
            !outcome.by_engine(engine).is_empty(),
            "no points for {engine}"
        );
    }
}

#[test]
fn swap_engine_agrees_with_commit_protocols_on_the_two_party_ring() {
    // On the one spec all three engines can express, their outcomes must
    // agree: all-compliant → everyone commits; a deviating escrower → every
    // engine aborts without harming the compliant party.
    let spec = ring_spec(DealId(2), 2);
    let engines: Vec<(&str, Box<dyn DealEngine>)> = vec![
        ("timelock", Box::new(Protocol::timelock())),
        ("CBC", Box::new(Protocol::cbc())),
        ("HTLC swap", Box::new(SwapEngine::default())),
    ];
    for (name, engine) in &engines {
        let deal = Deal::new(spec.clone()).seed(77);
        let run = deal.run(engine).unwrap();
        assert!(run.outcome.committed_everywhere(), "{name} compliant");

        let deal = deal.parties(&[PartyConfig::deviating(
            xchain_sim::ids::PartyId(1),
            Deviation::RefuseEscrow,
        )]);
        let run = deal.run(engine).unwrap();
        assert!(!run.outcome.committed_everywhere(), "{name} deviator");
        assert!(
            check_safety(deal.spec(), deal.configs(), &run.outcome).holds(),
            "{name} deviator safety"
        );
    }
}
