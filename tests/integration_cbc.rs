//! Integration tests: the CBC commit protocol end-to-end, driven through the
//! unified `Deal` builder API.

use xchain_deals::builders::{auction_spec, broker_spec, ring_spec};
use xchain_deals::cbc::CbcOptions;
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::properties::{check_safety, check_strong_liveness, check_weak_liveness};
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::{DealId, Owner, PartyId};
use xchain_sim::network::NetworkModel;

#[test]
fn broker_deal_commits_under_cbc() {
    let deal = Deal::new(broker_spec())
        .network(NetworkModel::synchronous(100))
        .seed(1);
    let run = deal.run(Protocol::cbc()).unwrap();
    assert!(run.ext.cbc_status().unwrap().is_committed());
    assert!(run.outcome.committed_everywhere());
    assert!(check_strong_liveness(deal.spec(), &[], &run.outcome));
}

#[test]
fn cbc_commits_or_aborts_everywhere_never_mixed() {
    // The key CBC guarantee the timelock protocol lacks: the deal either
    // commits everywhere or aborts everywhere, for any single deviator.
    let spec = ring_spec(DealId(2), 4);
    let deviations = [
        Deviation::RefuseEscrow,
        Deviation::SkipTransfers,
        Deviation::WithholdVote,
        Deviation::VoteAbort,
        Deviation::RejectValidation,
        Deviation::CrashAfter(Phase::Transfer),
    ];
    for &p in &spec.parties {
        for d in deviations {
            let configs = vec![PartyConfig::deviating(p, d)];
            let run = Deal::new(spec.clone())
                .network(NetworkModel::synchronous(100))
                .parties(&configs)
                .seed(7)
                .run(Protocol::cbc())
                .unwrap();
            assert!(
                run.outcome.committed_everywhere() || run.outcome.aborted_everywhere(),
                "mixed outcome for {p} with {d:?}"
            );
            assert!(check_safety(&spec, &configs, &run.outcome).holds());
            assert!(check_weak_liveness(&spec, &configs, &run.outcome));
        }
    }
}

#[test]
fn cbc_works_during_asynchrony_before_gst() {
    let spec = auction_spec(DealId(3), &[40, 70, 55]);
    let network = NetworkModel::eventually_synchronous(10_000_000, 100, 5_000);
    let run = Deal::new(spec.clone())
        .network(network)
        .seed(4)
        .run(Protocol::Cbc(CbcOptions {
            f: 2,
            ..CbcOptions::default()
        }))
        .unwrap();
    assert!(run.outcome.committed_everywhere());
    assert!(check_safety(&spec, &[], &run.outcome).holds());
}

#[test]
fn auction_winner_gets_ticket_and_losers_are_refunded() {
    let run = Deal::new(auction_spec(DealId(4), &[80, 95]))
        .network(NetworkModel::synchronous(100))
        .seed(5)
        .run(Protocol::cbc())
        .unwrap();
    assert!(run.outcome.committed_everywhere());
    assert_eq!(
        run.world
            .holdings(Owner::Party(PartyId(0)))
            .balance(&"coin".into()),
        95
    );
    assert_eq!(
        run.world
            .holdings(Owner::Party(PartyId(1)))
            .balance(&"coin".into()),
        80
    );
    assert!(run
        .world
        .holdings(Owner::Party(PartyId(2)))
        .contains(&xchain_sim::asset::Asset::non_fungible("ticket", [1])));
}

#[test]
fn block_proof_resolution_matches_certificate_resolution() {
    let deal = Deal::new(broker_spec())
        .network(NetworkModel::synchronous(100))
        .seed(6);
    let with_cert = deal.run(Protocol::cbc()).unwrap();
    let with_proof = deal
        .run(Protocol::Cbc(CbcOptions {
            use_block_proofs: true,
            ..CbcOptions::default()
        }))
        .unwrap();
    assert_eq!(
        with_cert.outcome.committed_everywhere(),
        with_proof.outcome.committed_everywhere()
    );
    // Same resolution, higher verification cost.
    assert!(
        with_proof
            .outcome
            .metrics
            .gas(Phase::Commit)
            .sig_verifications
            > with_cert
                .outcome
                .metrics
                .gas(Phase::Commit)
                .sig_verifications
    );
}

#[test]
fn censorship_can_only_abort_never_steal() {
    let spec = broker_spec();
    for censored in [PartyId(0), PartyId(1), PartyId(2)] {
        let opts = CbcOptions {
            censored_parties: vec![censored],
            ..CbcOptions::default()
        };
        let run = Deal::new(spec.clone())
            .network(NetworkModel::synchronous(100))
            .seed(8)
            .run(Protocol::Cbc(opts))
            .unwrap();
        assert!(run.outcome.aborted_everywhere(), "censoring {censored}");
        assert!(check_safety(&spec, &[], &run.outcome).holds());
    }
}

#[test]
fn higher_f_costs_more_commit_gas() {
    let deal = Deal::new(broker_spec())
        .network(NetworkModel::synchronous(100))
        .seed(9);
    let mut sigs = Vec::new();
    for f in [1usize, 3, 5] {
        let run = deal
            .run(Protocol::Cbc(CbcOptions {
                f,
                ..CbcOptions::default()
            }))
            .unwrap();
        assert!(run.outcome.committed_everywhere());
        sigs.push(run.outcome.metrics.gas(Phase::Commit).sig_verifications);
    }
    assert!(sigs[0] < sigs[1] && sigs[1] < sigs[2], "{sigs:?}");
    // Exactly m * (2f+1): 2 assets.
    assert_eq!(sigs[0], 2 * 3);
    assert_eq!(sigs[2], 2 * 11);
}
