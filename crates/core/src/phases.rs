//! The phases of a deal execution (Section 4.1) and per-phase measurements.

use std::collections::BTreeMap;
use std::fmt;

use xchain_sim::gas::GasUsage;
use xchain_sim::time::Duration;

/// The five phases of a cross-chain deal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The market-clearing service broadcasts the deal.
    Clearing,
    /// Parties escrow their outgoing assets.
    Escrow,
    /// Parties perform the tentative ownership transfers.
    Transfer,
    /// Each party checks its incoming assets and the deal information.
    Validation,
    /// Parties vote; escrows are released or refunded.
    Commit,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 5] = [
        Phase::Clearing,
        Phase::Escrow,
        Phase::Transfer,
        Phase::Validation,
        Phase::Commit,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Clearing => "clearing",
            Phase::Escrow => "escrow",
            Phase::Transfer => "transfer",
            Phase::Validation => "validation",
            Phase::Commit => "commit",
        };
        f.write_str(s)
    }
}

/// Per-phase gas and wall-clock (simulated) measurements collected by the
/// protocol engines; the raw material for Figures 4 and 7.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseMetrics {
    gas: BTreeMap<Phase, GasUsage>,
    duration: BTreeMap<Phase, Duration>,
}

impl PhaseMetrics {
    /// Creates an empty set of measurements.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the gas attributed to a phase (accumulating).
    pub fn add_gas(&mut self, phase: Phase, gas: GasUsage) {
        let entry = self.gas.entry(phase).or_default();
        *entry += gas;
    }

    /// Records the simulated duration of a phase (accumulating).
    pub fn add_duration(&mut self, phase: Phase, d: Duration) {
        let entry = self.duration.entry(phase).or_default();
        *entry += d;
    }

    /// The gas attributed to a phase.
    pub fn gas(&self, phase: Phase) -> GasUsage {
        self.gas.get(&phase).copied().unwrap_or_default()
    }

    /// The simulated duration of a phase.
    pub fn duration(&self, phase: Phase) -> Duration {
        self.duration.get(&phase).copied().unwrap_or_default()
    }

    /// Total gas across phases.
    pub fn total_gas(&self) -> GasUsage {
        self.gas.values().fold(GasUsage::ZERO, |acc, g| acc + *g)
    }

    /// Total duration across phases.
    pub fn total_duration(&self) -> Duration {
        self.duration
            .values()
            .fold(Duration::ZERO, |acc, d| acc + *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_ordered_and_displayable() {
        assert_eq!(Phase::ALL.len(), 5);
        assert!(Phase::Clearing < Phase::Commit);
        assert_eq!(Phase::Escrow.to_string(), "escrow");
    }

    #[test]
    fn metrics_accumulate() {
        let mut m = PhaseMetrics::new();
        let mut g = GasUsage::ZERO;
        g.storage_writes = 4;
        m.add_gas(Phase::Escrow, g);
        m.add_gas(Phase::Escrow, g);
        m.add_duration(Phase::Escrow, Duration(10));
        m.add_duration(Phase::Commit, Duration(30));
        assert_eq!(m.gas(Phase::Escrow).storage_writes, 8);
        assert_eq!(m.gas(Phase::Commit).storage_writes, 0);
        assert_eq!(m.duration(Phase::Escrow), Duration(10));
        assert_eq!(m.total_gas().storage_writes, 8);
        assert_eq!(m.total_duration(), Duration(40));
    }
}
