//! The HTLC atomic swap as a third [`DealEngine`]: two-party deals that are
//! expressible as swaps (Section 8) can be executed by hashed-timelock
//! contracts instead of a commit protocol, making the swap directly
//! comparable to the timelock and CBC engines in gas and delay.
//!
//! The engine maps a two-party [`DealSpec`] onto a [`SwapSpec`] (leader =
//! first party, follower = second), drives the classic asymmetric-timeout
//! HTLC exchange with per-phase metrics (funding through the pre-interned
//! assets of the [`DealPlan`]), and honours each [`PartyConfig`]'s
//! [`xchain_deals::strategy::Strategy`]: funding asks `on_escrow`, claiming
//! asks `on_claim`, and every answer sees the party's view from the deal's
//! shared [`xchain_deals::strategy::ObservationHub`] (a strategy that
//! refuses to escrow never funds; one that withholds never claims). Results
//! are reported in the same [`DealOutcome`] vocabulary as the commit
//! protocols.

use std::collections::BTreeMap;

use xchain_deals::engine::{DealEngine, EngineRun, ProtocolExt};
use xchain_deals::error::DealError;
use xchain_deals::outcome::{ChainResolution, DealOutcome, ProtocolKind};
use xchain_deals::party::{config_of, PartyConfig};
use xchain_deals::phases::{Phase, PhaseMetrics};
use xchain_deals::plan::DealPlan;
use xchain_deals::setup::{self, advance_one_observation};
use xchain_deals::spec::DealSpec;
use xchain_deals::strategy::ObservationHub;
use xchain_sim::asset::AssetBag;
use xchain_sim::ids::{ChainId, ContractId, Owner, PartyId};
use xchain_sim::time::Duration;
use xchain_sim::world::World;

use crate::htlc::{HtlcContract, HtlcState};
use crate::limits::expressible_as_swap;
use crate::protocol::SwapSpec;

/// The two-party HTLC swap engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapEngine {
    /// The synchrony bound ∆ used for the asymmetric HTLC timeouts (leader
    /// 4∆, follower 2∆) and for normalising durations in reports.
    pub delta: Duration,
}

impl SwapEngine {
    /// A swap engine with the given synchrony bound.
    pub fn new(delta: Duration) -> Self {
        SwapEngine { delta }
    }

    /// Maps a deal specification onto a [`SwapSpec`], if it is a two-party,
    /// two-chain exchange in which each party escrows exactly the single
    /// asset it sends (the Section 8 expressibility condition, specialised to
    /// what an HTLC pair can execute).
    pub fn as_swap_spec(spec: &DealSpec) -> Option<SwapSpec> {
        if spec.n_parties() != 2
            || spec.n_transfers() != 2
            || spec.n_assets() != 2
            || !expressible_as_swap(spec)
        {
            return None;
        }
        let leader = spec.parties[0];
        let follower = spec.parties[1];
        let leader_t = spec.transfers.iter().find(|t| t.from == leader)?;
        let follower_t = spec.transfers.iter().find(|t| t.from == follower)?;
        if leader_t.to != follower || follower_t.to != leader {
            return None;
        }
        // One HTLC per chain: the two legs must live on different chains.
        if leader_t.chain == follower_t.chain {
            return None;
        }
        // Each leg must be backed by a matching escrow obligation.
        let escrow_matches = |p: PartyId, chain: ChainId, asset: &xchain_sim::asset::Asset| {
            spec.escrows
                .iter()
                .any(|e| e.owner == p && e.chain == chain && e.asset == *asset)
        };
        if !escrow_matches(leader, leader_t.chain, &leader_t.asset)
            || !escrow_matches(follower, follower_t.chain, &follower_t.asset)
        {
            return None;
        }
        Some(SwapSpec {
            leader,
            follower,
            leader_chain: leader_t.chain,
            leader_asset: leader_t.asset.clone(),
            follower_chain: follower_t.chain,
            follower_asset: follower_t.asset.clone(),
        })
    }
}

impl Default for SwapEngine {
    fn default() -> Self {
        SwapEngine::new(Duration(100))
    }
}

fn holdings_by_party(world: &World, spec: &DealSpec) -> BTreeMap<PartyId, AssetBag> {
    spec.parties
        .iter()
        .map(|&p| (p, world.holdings(Owner::Party(p))))
        .collect()
}

impl DealEngine for SwapEngine {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Swap
    }

    fn supports(&self, spec: &DealSpec) -> bool {
        Self::as_swap_spec(spec).is_some()
    }

    fn execute(
        &self,
        world: &mut World,
        plan: &DealPlan,
        configs: &[PartyConfig],
    ) -> Result<EngineRun, DealError> {
        let spec = plan.spec();
        let swap = Self::as_swap_spec(spec).ok_or_else(|| {
            DealError::Config("deal is not expressible as a two-party HTLC swap".into())
        })?;
        setup::check_parties_exist(world, spec)?;
        setup::check_chains_exist(world, spec)?;
        setup::apply_offline_windows(world, configs);

        // The two legs' interned assets, resolved once at planning time.
        let leader_asset = plan
            .transfers()
            .iter()
            .find(|t| t.from == swap.leader)
            .expect("as_swap_spec checked the legs")
            .asset
            .clone();
        let follower_asset = plan
            .transfers()
            .iter()
            .find(|t| t.from == swap.follower)
            .expect("as_swap_spec checked the legs")
            .asset
            .clone();

        let mut metrics = PhaseMetrics::new();
        let initial_holdings = holdings_by_party(world, spec);
        let leader_cfg = config_of(configs, swap.leader);
        let follower_cfg = config_of(configs, swap.follower);
        // Both parties monitor both chains through the deal's shared hub; the
        // swap has no validation phase (the hashlock validates), so every
        // observation context carries `validated: None`.
        let mut hub = ObservationHub::new(plan);

        // --------------------------------------------------------------
        // Clearing: install the two HTLCs under one hashlock, with the
        // standard asymmetric timeouts (the leader's escrow outlives the
        // follower's so the follower always has time to claim after the
        // secret is revealed).
        // --------------------------------------------------------------
        let clearing_started = world.now();
        let gas_before = world.total_gas();
        let secret = 0xA11CE ^ world.seed();
        let hashlock = HtlcContract::hash_secret(secret);
        // Funding consumes up to two observation delays (each bounded by ∆)
        // before the leader can claim, so the follower's HTLC must live
        // strictly longer than 2∆; the leader's must outlive the follower's
        // by more than another observation delay so the follower can always
        // claim after the reveal.
        let leader_timeout = world.now() + self.delta.times(6);
        let follower_timeout = world.now() + self.delta.times(3);
        let leader_htlc = world
            .chain_mut(swap.leader_chain)
            .map_err(DealError::Chain)?
            .install(HtlcContract::new(
                swap.leader,
                swap.follower,
                hashlock,
                leader_timeout,
            ));
        let follower_htlc = world
            .chain_mut(swap.follower_chain)
            .map_err(DealError::Chain)?
            .install(HtlcContract::new(
                swap.follower,
                swap.leader,
                hashlock,
                follower_timeout,
            ));
        let mut contracts: BTreeMap<ChainId, ContractId> = BTreeMap::new();
        contracts.insert(swap.leader_chain, leader_htlc);
        contracts.insert(swap.follower_chain, follower_htlc);
        metrics.add_gas(Phase::Clearing, gas_before.delta_to(&world.total_gas()));
        metrics.add_duration(Phase::Clearing, world.now() - clearing_started);

        // --------------------------------------------------------------
        // Escrow: the leader funds first; the follower funds only after
        // observing the leader's escrow (one observation delay).
        // --------------------------------------------------------------
        let escrow_started = world.now();
        let gas_before = world.total_gas();
        let mut leader_funded = false;
        let leader_escrows = {
            let ctx = hub.ctx(world, spec, swap.leader, Phase::Escrow, None);
            leader_cfg.strategy.is_online(ctx.now) && leader_cfg.strategy.on_escrow(&ctx)
        };
        if leader_escrows {
            leader_funded = world
                .call(
                    swap.leader_chain,
                    Owner::Party(swap.leader),
                    leader_htlc,
                    |h: &mut HtlcContract, ctx| h.fund_interned(ctx, leader_asset.clone()),
                )
                .is_ok();
        }
        advance_one_observation(world);
        let mut follower_funded = false;
        let follower_escrows = leader_funded && {
            let ctx = hub.ctx(world, spec, swap.follower, Phase::Escrow, None);
            follower_cfg.strategy.is_online(ctx.now) && follower_cfg.strategy.on_escrow(&ctx)
        };
        if follower_escrows {
            follower_funded = world
                .call(
                    swap.follower_chain,
                    Owner::Party(swap.follower),
                    follower_htlc,
                    |h: &mut HtlcContract, ctx| h.fund_interned(ctx, follower_asset.clone()),
                )
                .is_ok();
        }
        advance_one_observation(world);
        metrics.add_gas(Phase::Escrow, gas_before.delta_to(&world.total_gas()));
        metrics.add_duration(Phase::Escrow, world.now() - escrow_started);

        // The swap has no separate transfer or validation phases: the
        // tentative transfer *is* the claim, and validation is the hashlock.

        // --------------------------------------------------------------
        // Commit: the leader claims the follower's HTLC (revealing the
        // secret on-chain), then the follower claims the leader's. A party
        // that withholds its claim plays the same role as one withholding a
        // commit vote in the deal protocols.
        // --------------------------------------------------------------
        let commit_started = world.now();
        let gas_before = world.total_gas();
        let mut leader_claimed = false;
        let leader_claims = leader_funded && follower_funded && {
            let ctx = hub.ctx(world, spec, swap.leader, Phase::Commit, None);
            leader_cfg.strategy.is_online(ctx.now) && leader_cfg.strategy.on_claim(&ctx)
        };
        if leader_claims {
            leader_claimed = world
                .call(
                    swap.follower_chain,
                    Owner::Party(swap.leader),
                    follower_htlc,
                    |h: &mut HtlcContract, ctx| h.claim(ctx, secret),
                )
                .is_ok();
        }
        advance_one_observation(world);
        let mut follower_claimed = false;
        let follower_claims = leader_claimed && {
            let ctx = hub.ctx(world, spec, swap.follower, Phase::Commit, None);
            follower_cfg.strategy.is_online(ctx.now) && follower_cfg.strategy.on_claim(&ctx)
        };
        if follower_claims {
            follower_claimed = world
                .call(
                    swap.leader_chain,
                    Owner::Party(swap.follower),
                    leader_htlc,
                    |h: &mut HtlcContract, ctx| h.claim(ctx, secret),
                )
                .is_ok();
        }

        // Timeouts: whatever is still locked refunds to its depositor once
        // the longer (leader) timeout has passed.
        if (leader_funded && !follower_claimed) || (follower_funded && !leader_claimed) {
            world.advance_to(leader_timeout + Duration(1));
            if leader_funded && !follower_claimed {
                let _ = world.call(
                    swap.leader_chain,
                    Owner::Party(swap.leader),
                    leader_htlc,
                    |h: &mut HtlcContract, ctx| h.refund(ctx),
                );
            }
            if follower_funded && !leader_claimed {
                let _ = world.call(
                    swap.follower_chain,
                    Owner::Party(swap.follower),
                    follower_htlc,
                    |h: &mut HtlcContract, ctx| h.refund(ctx),
                );
            }
        }
        metrics.add_gas(Phase::Commit, gas_before.delta_to(&world.total_gas()));
        metrics.add_duration(Phase::Commit, world.now() - commit_started);

        // --------------------------------------------------------------
        // Collect the outcome in the protocol-agnostic vocabulary.
        // --------------------------------------------------------------
        let final_holdings = holdings_by_party(world, spec);
        let mut resolutions = BTreeMap::new();
        for (&chain, &contract) in &contracts {
            let state = world
                .chain(chain)
                .ok()
                .and_then(|c| c.view(contract, |h: &HtlcContract| h.state()).ok());
            resolutions.insert(
                chain,
                match state {
                    Some(HtlcState::Claimed) => ChainResolution::Committed,
                    // Never funded means nothing was ever at stake there; the
                    // exchange is off, which is an abort in deal terms.
                    Some(HtlcState::Refunded) | Some(HtlcState::Created) => {
                        ChainResolution::Aborted
                    }
                    Some(HtlcState::Funded) | None => ChainResolution::Unresolved,
                },
            );
        }

        Ok(EngineRun {
            outcome: DealOutcome {
                protocol: ProtocolKind::Swap,
                initial_holdings,
                final_holdings,
                resolutions,
                metrics,
                delta: self.delta,
            },
            contracts,
            ext: ProtocolExt::Swap {
                swapped: leader_claimed && follower_claimed,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_deals::builders::{broker_spec, ring_spec};
    use xchain_deals::party::Deviation;
    use xchain_deals::properties::{check_conservation, check_safety};
    use xchain_deals::Deal;
    use xchain_sim::asset::Asset;
    use xchain_sim::ids::DealId;
    use xchain_sim::network::NetworkModel;

    fn two_party() -> DealSpec {
        ring_spec(DealId(77), 2)
    }

    #[test]
    fn supports_only_swap_expressible_two_party_deals() {
        let engine = SwapEngine::default();
        assert!(engine.supports(&two_party()));
        assert!(!engine.supports(&broker_spec()));
        assert!(!engine.supports(&ring_spec(DealId(1), 4)));
    }

    #[test]
    fn compliant_swap_commits_both_chains() {
        let deal = Deal::new(two_party())
            .network(NetworkModel::synchronous(100))
            .seed(5);
        let run = deal.run(SwapEngine::default()).unwrap();
        assert!(run.outcome.committed_everywhere());
        assert_eq!(run.ext.swapped(), Some(true));
        assert_eq!(run.outcome.protocol, ProtocolKind::Swap);
        // Party 1 now holds party 0's asset and vice versa.
        assert!(run
            .world
            .holdings(Owner::Party(PartyId(1)))
            .contains(&Asset::fungible("asset-0", 10)));
        assert!(run
            .world
            .holdings(Owner::Party(PartyId(0)))
            .contains(&Asset::fungible("asset-1", 10)));
        assert!(check_safety(deal.spec(), &[], &run.outcome).holds());
        assert!(check_conservation(deal.spec(), &run.outcome));
    }

    #[test]
    fn defecting_follower_costs_nobody_anything() {
        let deal = Deal::new(two_party())
            .party(PartyConfig::deviating(PartyId(1), Deviation::RefuseEscrow))
            .seed(6);
        let run = deal.run(SwapEngine::default()).unwrap();
        assert!(run.outcome.aborted_everywhere());
        assert_eq!(run.ext.swapped(), Some(false));
        assert!(run
            .world
            .holdings(Owner::Party(PartyId(0)))
            .contains(&Asset::fungible("asset-0", 10)));
        assert!(check_safety(deal.spec(), deal.configs(), &run.outcome).holds());
    }

    #[test]
    fn withheld_claim_refunds_both_sides() {
        let deal = Deal::new(two_party())
            .party(PartyConfig::deviating(PartyId(0), Deviation::WithholdVote))
            .seed(7);
        let run = deal.run(SwapEngine::default()).unwrap();
        assert!(run.outcome.aborted_everywhere());
        assert!(check_safety(deal.spec(), deal.configs(), &run.outcome).holds());
        assert!(check_conservation(deal.spec(), &run.outcome));
    }

    #[test]
    fn builder_rejects_unsupported_specs() {
        let err = Deal::new(broker_spec())
            .run(SwapEngine::default())
            .unwrap_err();
        assert!(err.to_string().contains("does not support"));
    }

    #[test]
    fn compliant_swaps_commit_for_adversarial_delay_seeds() {
        // Regression: with follower_timeout at install + 2∆ the claim could
        // land at exactly `now == timeout` (two worst-case observation delays
        // during funding) and a fully-compliant swap spuriously aborted.
        // Seeds 1897, 12735, 23841, 26817 and 27893 all produced that timing
        // under the default synchronous ∆ = 100 network.
        for seed in [1897u64, 12735, 23841, 26817, 27893] {
            let run = Deal::new(two_party())
                .network(NetworkModel::synchronous(100))
                .seed(seed)
                .run(SwapEngine::default())
                .unwrap();
            assert!(run.outcome.committed_everywhere(), "seed {seed}");
        }
    }
}
