//! The experiments that regenerate the paper's tables and figures.
//!
//! Each function returns one or more [`Table`]s whose *shape* is compared
//! against the paper's claims in EXPERIMENTS.md. Parameters are small enough
//! to run in seconds; the benches in `xchain-bench` re-run the same code
//! under measurement. Every experiment goes through the unified
//! [`Deal`] builder / [`Sweep`] API, so adding a protocol or network model is
//! a one-line change.

use xchain_bft::pow::{analytic_success_probability, attack_success_rate, PowAttackParams};
use xchain_deals::builders::{auction_spec, broker_spec, brokered_chain_spec, ring_spec};
use xchain_deals::cbc::CbcOptions;
use xchain_deals::digraph::DealDigraph;
use xchain_deals::phases::Phase;
use xchain_deals::properties::{
    check_conservation, check_safety, check_strong_liveness, check_weak_liveness,
};
use xchain_deals::spec::DealSpec;
use xchain_deals::timelock::TimelockOptions;
use xchain_deals::{Deal, Protocol};
use xchain_sim::asset::Asset;
use xchain_sim::ids::{ChainId, DealId, PartyId};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;
use xchain_swap::expressible_as_swap;

use crate::adversary::{
    all_but_one_deviate, coalition_scenario, novel_strategy_scenarios, rational_defector_scenarios,
    single_deviator_configs, sore_loser_scenario,
};
use crate::report::Table;
use crate::sweep::{protocol_engines, standard_engines, AdversaryScenario, Sweep};

/// The ∆ used throughout the experiments (ticks).
pub const DELTA: u64 = 100;

fn sync_net() -> NetworkModel {
    NetworkModel::synchronous(DELTA)
}

/// FIG1/FIG2: the running example — render the deal matrix and digraph facts.
pub fn fig1_fig2_example() -> Vec<Table> {
    let spec = broker_spec();
    let mut names = std::collections::BTreeMap::new();
    names.insert(PartyId(0), "Alice".to_string());
    names.insert(PartyId(1), "Bob".to_string());
    names.insert(PartyId(2), "Carol".to_string());
    let mut t1 = Table::new("Figure 1 — Alice, Bob and Carol's deal matrix", &["matrix"]);
    for line in spec.matrix_string(&names).lines() {
        t1.push_row(vec![line.to_string()]);
    }
    let g = DealDigraph::from_spec(&spec);
    let mut t2 = Table::new(
        "Figure 2 — deal digraph (well-formedness)",
        &["vertices", "arcs", "strongly connected", "free riders"],
    );
    t2.push_row(vec![
        g.n_vertices().to_string(),
        g.n_arcs().to_string(),
        g.is_strongly_connected().to_string(),
        format!("{:?}", g.free_riders()),
    ]);
    vec![t1, t2]
}

/// FIG3: per-operation storage-write counts of the escrow manager.
pub fn fig3_escrow_costs() -> Table {
    let spec = broker_spec();
    let run = Deal::new(spec.clone())
        .network(sync_net())
        .seed(11)
        .run(Protocol::timelock())
        .unwrap();
    let mut t = Table::new(
        "Figure 3 — escrow manager storage writes (measured)",
        &["operation", "count", "storage writes", "writes per op"],
    );
    let escrow_writes = run.outcome.metrics.gas(Phase::Escrow).storage_writes;
    let transfer_writes = run.outcome.metrics.gas(Phase::Transfer).storage_writes;
    t.push_row(vec![
        "escrow".into(),
        spec.n_assets().to_string(),
        escrow_writes.to_string(),
        format!("{:.1}", escrow_writes as f64 / spec.n_assets() as f64),
    ]);
    t.push_row(vec![
        "tentative transfer".into(),
        spec.n_transfers().to_string(),
        transfer_writes.to_string(),
        format!("{:.1}", transfer_writes as f64 / spec.n_transfers() as f64),
    ]);
    t
}

/// One row of the Figure 4 gas table for a single (protocol, n, m, t, f) point.
#[derive(Debug, Clone)]
pub struct GasRow {
    /// Protocol name.
    pub protocol: String,
    /// Parties.
    pub n: usize,
    /// Assets.
    pub m: usize,
    /// Transfers.
    pub t: usize,
    /// CBC fault parameter (0 for timelock).
    pub f: usize,
    /// Storage writes in the escrow phase.
    pub escrow_writes: u64,
    /// Storage writes in the transfer phase.
    pub transfer_writes: u64,
    /// Gas consumed by validation (always 0).
    pub validation_gas: u64,
    /// Signature verifications in the commit phase.
    pub commit_sigs: u64,
    /// Storage writes in the commit phase.
    pub commit_writes: u64,
    /// Total gas of the whole deal.
    pub total_gas: u64,
}

/// FIG4: measures the gas table for a sweep of brokered-chain deals of
/// increasing size under both protocols.
pub fn fig4_gas(ns: &[u32], f: usize) -> (Vec<GasRow>, Table) {
    let mut rows = Vec::new();
    for &n in ns {
        let deal = Deal::new(brokered_chain_spec(DealId(1000 + n as u64), n, 100))
            .network(sync_net())
            .seed(42);
        let tl = deal.run(Protocol::timelock()).unwrap();
        rows.push(gas_row("timelock", deal.spec(), 0, &tl.outcome.metrics));
        let cbc = deal
            .run(Protocol::Cbc(CbcOptions {
                f,
                ..CbcOptions::default()
            }))
            .unwrap();
        rows.push(gas_row("CBC", deal.spec(), f, &cbc.outcome.metrics));
    }
    let mut t = Table::new(
        format!("Figure 4 — gas costs (f = {f} for CBC)"),
        &[
            "protocol",
            "n",
            "m",
            "t",
            "escrow writes",
            "transfer writes",
            "validation gas",
            "commit sig.ver.",
            "commit writes",
            "total gas",
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.protocol.clone(),
            r.n.to_string(),
            r.m.to_string(),
            r.t.to_string(),
            r.escrow_writes.to_string(),
            r.transfer_writes.to_string(),
            r.validation_gas.to_string(),
            r.commit_sigs.to_string(),
            r.commit_writes.to_string(),
            r.total_gas.to_string(),
        ]);
    }
    (rows, t)
}

fn gas_row(
    protocol: &str,
    spec: &DealSpec,
    f: usize,
    metrics: &xchain_deals::phases::PhaseMetrics,
) -> GasRow {
    GasRow {
        protocol: protocol.to_string(),
        n: spec.n_parties(),
        m: spec.n_assets(),
        t: spec.n_transfers(),
        f,
        escrow_writes: metrics.gas(Phase::Escrow).storage_writes,
        transfer_writes: metrics.gas(Phase::Transfer).storage_writes,
        validation_gas: metrics.gas(Phase::Validation).total(),
        commit_sigs: metrics.gas(Phase::Commit).sig_verifications,
        commit_writes: metrics.gas(Phase::Commit).storage_writes,
        total_gas: metrics.total_gas().total(),
    }
}

/// One row of the Figure 7 delay table.
#[derive(Debug, Clone)]
pub struct DelayRow {
    /// Scenario label.
    pub scenario: String,
    /// Parties.
    pub n: usize,
    /// Transfers.
    pub t: usize,
    /// Phase durations in units of ∆.
    pub escrow: f64,
    /// Transfer phase in ∆.
    pub transfer: f64,
    /// Validation phase in ∆.
    pub validation: f64,
    /// Commit phase in ∆.
    pub commit: f64,
}

/// FIG7: measures per-phase delays (in units of ∆) for both protocols,
/// sequential vs concurrent transfers and forwarding vs broadcast votes.
pub fn fig7_delays(ns: &[u32]) -> (Vec<DelayRow>, Table) {
    let delta = Duration(DELTA);
    let mut rows = Vec::new();
    for &n in ns {
        let deal = Deal::new(ring_spec(DealId(2000 + n as u64), n))
            .network(sync_net())
            .seed(7);
        let cases: Vec<(String, Protocol)> = vec![
            (
                "timelock / sequential transfers / forwarded votes".into(),
                Protocol::Timelock(TimelockOptions {
                    delta,
                    altruistic_broadcast: false,
                    concurrent_transfers: false,
                }),
            ),
            (
                "timelock / concurrent transfers / broadcast votes".into(),
                Protocol::Timelock(TimelockOptions {
                    delta,
                    altruistic_broadcast: true,
                    concurrent_transfers: true,
                }),
            ),
            (
                "CBC / sequential transfers".into(),
                Protocol::Cbc(CbcOptions {
                    concurrent_transfers: false,
                    delta,
                    ..CbcOptions::default()
                }),
            ),
            (
                "CBC / concurrent transfers".into(),
                Protocol::Cbc(CbcOptions {
                    concurrent_transfers: true,
                    delta,
                    ..CbcOptions::default()
                }),
            ),
        ];
        for (label, protocol) in cases {
            let run = deal.run(protocol).unwrap();
            rows.push(delay_row(&label, deal.spec(), &run.outcome.metrics, delta));
        }
    }
    let mut t = Table::new(
        "Figure 7 — phase delays in units of ∆ (synchronous network)",
        &[
            "scenario",
            "n",
            "t",
            "escrow/∆",
            "transfer/∆",
            "validation/∆",
            "commit/∆",
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.scenario.clone(),
            r.n.to_string(),
            r.t.to_string(),
            format!("{:.2}", r.escrow),
            format!("{:.2}", r.transfer),
            format!("{:.2}", r.validation),
            format!("{:.2}", r.commit),
        ]);
    }
    (rows, t)
}

fn delay_row(
    scenario: &str,
    spec: &DealSpec,
    metrics: &xchain_deals::phases::PhaseMetrics,
    delta: Duration,
) -> DelayRow {
    DelayRow {
        scenario: scenario.to_string(),
        n: spec.n_parties(),
        t: spec.n_transfers(),
        escrow: metrics.duration(Phase::Escrow).in_units_of(delta),
        transfer: metrics.duration(Phase::Transfer).in_units_of(delta),
        validation: metrics.duration(Phase::Validation).in_units_of(delta),
        commit: metrics.duration(Phase::Commit).in_units_of(delta),
    }
}

/// Result of the safety / liveness sweeps.
#[derive(Debug, Clone, Default)]
pub struct SafetySweepResult {
    /// Number of adversarial scenarios executed.
    pub scenarios: usize,
    /// Safety (Property 1) violations found across all scenarios.
    pub safety_violations: usize,
    /// Weak-liveness (Property 2) violations found.
    pub weak_liveness_violations: usize,
    /// Conservation violations found.
    pub conservation_violations: usize,
}

/// THM 5.1 / 6.1: one generic sweep runs every single-deviator and
/// all-but-one-deviator scenario on the broker deal and a 4-party ring under
/// both commit protocols, checking the safety, weak-liveness and conservation
/// properties on every point.
pub fn safety_sweep() -> (SafetySweepResult, Table) {
    let outcome = Sweep::new()
        .spec("broker (Fig 1)", broker_spec())
        .spec("ring n=4", ring_spec(DealId(77), 4))
        .over_protocols(protocol_engines())
        .over_networks(vec![("synchronous".into(), sync_net())])
        .over_adversaries(|spec| {
            let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
            scenarios.extend(
                single_deviator_configs(spec, DELTA)
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (format!("single deviator #{i}"), c)),
            );
            for &honest in &spec.parties {
                scenarios.extend(
                    all_but_one_deviate(spec, honest, DELTA)
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| (format!("all but {honest} deviate #{i}"), c)),
                );
            }
            // The trait-only adversaries (sore-loser, coalition, rational
            // defector) must satisfy the same properties.
            scenarios.extend(novel_strategy_scenarios(spec));
            scenarios
        })
        .seed(100)
        .run()
        .unwrap();

    let mut result = SafetySweepResult::default();
    for p in &outcome.points {
        result.scenarios += 1;
        result.safety_violations += check_safety(&p.deal, &p.configs, &p.run.outcome)
            .violations
            .len();
        if !check_weak_liveness(&p.deal, &p.configs, &p.run.outcome) {
            result.weak_liveness_violations += 1;
        }
        if !check_conservation(&p.deal, &p.run.outcome) {
            result.conservation_violations += 1;
        }
    }
    let mut t = Table::new(
        "Theorems 5.1/5.2/6.1 — adversarial sweep (violations must be 0)",
        &[
            "scenarios",
            "safety violations",
            "weak-liveness violations",
            "conservation violations",
        ],
    );
    t.push_row(vec![
        result.scenarios.to_string(),
        result.safety_violations.to_string(),
        result.weak_liveness_violations.to_string(),
        result.conservation_violations.to_string(),
    ]);
    (result, t)
}

/// THM 5.3 / strong liveness: all-compliant runs across workloads must commit
/// everywhere and deliver exactly the agreed transfers — one sweep over every
/// workload × engine.
pub fn liveness_experiment() -> Table {
    let outcome = Sweep::new()
        .over_specs(vec![
            ("broker (Fig 1)".into(), broker_spec()),
            ("ring n=5".into(), ring_spec(DealId(3), 5)),
            (
                "auction 3 bidders".into(),
                auction_spec(DealId(4), &[30, 55, 42]),
            ),
            (
                "brokered chain n=6".into(),
                brokered_chain_spec(DealId(5), 6, 80),
            ),
        ])
        .over_protocols(protocol_engines())
        .over_networks(vec![("synchronous".into(), sync_net())])
        .seed(17)
        .run()
        .unwrap();
    let mut t = Table::new(
        "Theorem 5.3 / Property 3 — strong liveness (all parties compliant)",
        &[
            "workload",
            "protocol",
            "committed everywhere",
            "strong liveness",
        ],
    );
    for p in &outcome.points {
        t.push_row(vec![
            p.spec.clone(),
            p.engine.clone(),
            p.run.outcome.committed_everywhere().to_string(),
            check_strong_liveness(&p.deal, &p.configs, &p.run.outcome).to_string(),
        ]);
    }
    t
}

/// One row of the protocol × network × strategy matrix:
/// `(deal, engine, network, adversary, committed everywhere, safety holds)`.
pub type MatrixRow = (String, String, String, String, bool, bool);

/// The named strategies the matrix enumerates on its adversary axis: the
/// all-compliant baseline plus one representative assignment of each
/// trait-only adversary (sore-loser at the first party, a coalition of the
/// first two, a rational defector at the last party with a stingy and a
/// generous token valuation).
fn matrix_strategy_scenarios(spec: &DealSpec) -> Vec<AdversaryScenario> {
    let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
    scenarios.push(sore_loser_scenario(spec.parties[0]));
    scenarios.extend(coalition_scenario(spec));
    scenarios.extend(rational_defector_scenarios(spec));
    scenarios
}

/// The protocol × network × strategy matrix: all three engines (timelock,
/// CBC, HTLC swap) over synchronous and eventually-synchronous networks, on a
/// deal each engine can express, against the named adversary strategies of
/// [`matrix_strategy_scenarios`]. Reproduces the paper's synchrony story in
/// one sweep — the CBC commits under both models when everyone is compliant,
/// the timelock protocol is only guaranteed to commit under synchrony (it
/// stays *safe* regardless), the swap engine covers the two-party case — and
/// shows that no strategy, however adaptive, harms a compliant party.
pub fn protocol_matrix_experiment() -> (Vec<MatrixRow>, Table) {
    let outcome = Sweep::new()
        .spec("two-party exchange", two_party_deal())
        .spec("broker (Fig 1)", broker_spec())
        .over_protocols(standard_engines(DELTA))
        .over_networks(vec![
            ("synchronous".into(), sync_net()),
            (
                "eventually synchronous (GST 5∆)".into(),
                NetworkModel::eventually_synchronous(5 * DELTA, DELTA, 10 * DELTA),
            ),
        ])
        .over_adversaries(matrix_strategy_scenarios)
        .seed(500)
        .run()
        .unwrap();
    let mut rows = Vec::new();
    let mut t = Table::new(
        "Protocol × network × strategy matrix",
        &[
            "deal",
            "engine",
            "network",
            "adversary",
            "committed",
            "safety holds",
        ],
    );
    for p in &outcome.points {
        let committed = p.run.outcome.committed_everywhere();
        let safe = check_safety(&p.deal, &p.configs, &p.run.outcome).holds();
        rows.push((
            p.spec.clone(),
            p.engine.clone(),
            p.network.clone(),
            p.adversary.clone(),
            committed,
            safe,
        ));
        t.push_row(vec![
            p.spec.clone(),
            p.engine.clone(),
            p.network.clone(),
            p.adversary.clone(),
            committed.to_string(),
            safe.to_string(),
        ]);
    }
    (rows, t)
}

/// SEC 6.2: the proof-of-work private-abort-block attack as a function of the
/// attacker's hash power and the required confirmations.
pub fn pow_attack_experiment(trials: u64) -> Table {
    let mut t = Table::new(
        "Section 6.2 — PoW CBC private-abort attack success rate",
        &[
            "attacker hash power",
            "confirmations",
            "measured success",
            "analytic estimate",
        ],
    );
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    for &alpha in &[0.10, 0.25, 0.33, 0.45] {
        for &k in &[1u64, 3, 6, 12] {
            let rate = attack_success_rate(
                &PowAttackParams {
                    alpha,
                    confirmations: k,
                    max_blocks: 60 * (k + 2),
                },
                trials,
                &mut rng,
            );
            t.push_row(vec![
                format!("{alpha:.2}"),
                k.to_string(),
                format!("{rate:.3}"),
                format!("{:.3}", analytic_success_probability(alpha, k)),
            ]);
        }
    }
    t
}

/// DISC: commit-phase gas crossover between the two protocols as n grows at
/// fixed f — the paper's observation that "if 2f+1 … exceeds n … it will
/// usually be more expensive to commit a CBC deal than a timelock deal".
pub fn crossover_experiment(ns: &[u32], f: usize) -> Table {
    let mut t = Table::new(
        format!("Discussion — commit-phase signature verifications, timelock vs CBC (f = {f})"),
        &[
            "n",
            "m",
            "timelock commit sig.ver.",
            "CBC commit sig.ver.",
            "cheaper",
        ],
    );
    for &n in ns {
        let deal = Deal::new(brokered_chain_spec(DealId(4000 + n as u64), n, 60))
            .network(sync_net())
            .seed(3);
        let tl = deal.run(Protocol::timelock()).unwrap();
        let cbc = deal
            .run(Protocol::Cbc(CbcOptions {
                f,
                ..CbcOptions::default()
            }))
            .unwrap();
        let tl_sigs = tl.outcome.metrics.gas(Phase::Commit).sig_verifications;
        let cbc_sigs = cbc.outcome.metrics.gas(Phase::Commit).sig_verifications;
        t.push_row(vec![
            n.to_string(),
            deal.spec().n_assets().to_string(),
            tl_sigs.to_string(),
            cbc_sigs.to_string(),
            if tl_sigs <= cbc_sigs {
                "timelock"
            } else {
                "CBC"
            }
            .to_string(),
        ]);
    }
    t
}

/// SEC 8: swaps vs deals — expressiveness and a two-party cost comparison,
/// with the HTLC swap running as just another [`xchain_deals::DealEngine`].
pub fn swap_baseline_experiment() -> Vec<Table> {
    let mut t1 = Table::new(
        "Section 8 — which deals are expressible as atomic swaps",
        &["deal", "expressible as swap"],
    );
    t1.push_row(vec![
        "broker (Fig 1)".into(),
        expressible_as_swap(&broker_spec()).to_string(),
    ]);
    t1.push_row(vec![
        "auction (Sec 9)".into(),
        expressible_as_swap(&auction_spec(DealId(8), &[10, 20, 30])).to_string(),
    ]);
    t1.push_row(vec![
        "ring n=4".into(),
        expressible_as_swap(&ring_spec(DealId(9), 4)).to_string(),
    ]);

    // Two-party exchange: the same deal under all three engines.
    let deal = Deal::new(two_party_deal()).network(sync_net()).seed(5);
    let mut t2 = Table::new(
        "Section 8 — two-party exchange: HTLC swap vs commit-protocol deals",
        &[
            "mechanism",
            "storage writes",
            "sig verifications",
            "total gas",
            "duration/∆",
        ],
    );
    for (label, make_engine) in standard_engines(DELTA) {
        let run = deal.run(make_engine()).unwrap();
        assert!(run.outcome.committed_everywhere());
        let gas = run.outcome.metrics.total_gas();
        t2.push_row(vec![
            label,
            gas.storage_writes.to_string(),
            gas.sig_verifications.to_string(),
            gas.total().to_string(),
            format!(
                "{:.2}",
                run.outcome
                    .metrics
                    .total_duration()
                    .in_units_of(Duration(DELTA))
            ),
        ]);
    }
    vec![t1, t2]
}

/// A plain two-party exchange expressed as a deal (tickets for coins).
pub fn two_party_deal() -> DealSpec {
    use xchain_deals::spec::{EscrowSpec, TransferSpec};
    DealSpec::new(
        DealId(99),
        vec![PartyId(0), PartyId(1)],
        vec![
            EscrowSpec {
                owner: PartyId(0),
                chain: ChainId(0),
                asset: Asset::non_fungible("ticket", [1]),
            },
            EscrowSpec {
                owner: PartyId(1),
                chain: ChainId(1),
                asset: Asset::fungible("coin", 100),
            },
        ],
        vec![
            TransferSpec {
                from: PartyId(0),
                to: PartyId(1),
                chain: ChainId(0),
                asset: Asset::non_fungible("ticket", [1]),
            },
            TransferSpec {
                from: PartyId(1),
                to: PartyId(0),
                chain: ChainId(1),
                asset: Asset::fungible("coin", 100),
            },
        ],
    )
}

/// Runs every experiment and returns the rendered report.
pub fn full_report() -> String {
    let mut out = String::new();
    for t in fig1_fig2_example() {
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(&fig3_escrow_costs().render());
    out.push('\n');
    out.push_str(&fig4_gas(&[3, 5, 7, 9], 2).1.render());
    out.push('\n');
    out.push_str(&fig7_delays(&[3, 6, 9]).1.render());
    out.push('\n');
    out.push_str(&safety_sweep().1.render());
    out.push('\n');
    out.push_str(&liveness_experiment().render());
    out.push('\n');
    out.push_str(&protocol_matrix_experiment().1.render());
    out.push('\n');
    out.push_str(&pow_attack_experiment(300).render());
    out.push('\n');
    out.push_str(&crossover_experiment(&[3, 4, 6, 8, 10], 2).render());
    out.push('\n');
    for t in swap_baseline_experiment() {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_match_the_paper() {
        let (rows, _) = fig4_gas(&[3, 6], 2);
        for r in &rows {
            // Escrow is 4 writes per asset, transfers 2 per transfer.
            assert_eq!(r.escrow_writes, 4 * r.m as u64);
            assert_eq!(r.transfer_writes, 2 * r.t as u64);
            assert_eq!(r.validation_gas, 0);
        }
        // Timelock commit signatures grow superlinearly with n; CBC's stay
        // proportional to m(2f+1).
        let tl: Vec<&GasRow> = rows.iter().filter(|r| r.protocol == "timelock").collect();
        let cbc: Vec<&GasRow> = rows.iter().filter(|r| r.protocol == "CBC").collect();
        assert!(tl[1].commit_sigs > tl[0].commit_sigs);
        assert_eq!(cbc[0].commit_sigs, (cbc[0].m * 5) as u64);
        assert_eq!(cbc[1].commit_sigs, (cbc[1].m * 5) as u64);
    }

    #[test]
    fn fig7_commit_delay_grows_only_for_forwarded_timelock() {
        let (rows, _) = fig7_delays(&[3, 8]);
        let forwarded: Vec<&DelayRow> = rows
            .iter()
            .filter(|r| r.scenario.contains("forwarded"))
            .collect();
        let cbc: Vec<&DelayRow> = rows
            .iter()
            .filter(|r| r.scenario.starts_with("CBC") && r.scenario.contains("sequential"))
            .collect();
        assert!(forwarded[1].commit > forwarded[0].commit);
        assert!(cbc[1].commit <= 3.0 + 1e-9);
        // Sequential transfers scale with t, concurrent stay ~1∆.
        let seq = rows
            .iter()
            .find(|r| r.scenario.contains("timelock / sequential"))
            .unwrap();
        assert!(seq.transfer >= 1.0);
    }

    #[test]
    fn safety_sweep_finds_no_violations() {
        let (result, _) = safety_sweep();
        assert!(result.scenarios > 100);
        assert_eq!(result.safety_violations, 0);
        assert_eq!(result.weak_liveness_violations, 0);
        assert_eq!(result.conservation_violations, 0);
    }

    #[test]
    fn protocol_matrix_covers_engines_networks_and_strategies() {
        let (rows, _) = protocol_matrix_experiment();
        // Per deal: 5 strategy scenarios (compliant, sore-loser, coalition,
        // 2 rational defectors). 2 deals × {timelock, CBC} × 2 networks × 5,
        // plus the swap engine on the one deal it can express × 2 × 5.
        assert_eq!(rows.len(), 50);
        for (deal, engine, network, adversary, committed, safe) in &rows {
            // Safety holds in every cell, whatever the strategy.
            assert!(
                safe,
                "{deal}/{engine}/{network}/{adversary} violated safety"
            );
            if adversary == "all compliant" {
                // The CBC does not rely on synchrony: it commits everywhere.
                if engine == "CBC" {
                    assert!(committed, "CBC should commit on {network}");
                }
                // Under full synchrony every engine commits.
                if network == "synchronous" {
                    assert!(committed, "{engine} should commit under synchrony");
                }
            }
            // The sore-loser, by construction, never lets the deal commit.
            if adversary.starts_with("sore-loser") {
                assert!(!committed, "{deal}/{engine}/{network}/{adversary}");
            }
        }
        assert!(rows.iter().any(|(_, e, _, _, _, _)| e == "HTLC swap"));
        // The adversary axis enumerates strategy names.
        assert!(rows
            .iter()
            .any(|(_, _, _, a, _, _)| a == "sore-loser@party-0"));
        assert!(rows
            .iter()
            .any(|(_, _, _, a, _, _)| a == "coalition(party-0+party-1)"));
        assert!(rows
            .iter()
            .any(|(_, _, _, a, _, _)| a == "rational-defector(token=1000)@party-1"));
        // A generously-valued rational defector finds the two-party exchange
        // worth committing to under synchrony.
        assert!(rows.iter().any(|(d, _, n, a, c, _)| {
            d == "two-party exchange"
                && n == "synchronous"
                && a == "rational-defector(token=1000)@party-1"
                && *c
        }));
    }

    #[test]
    fn swap_expressiveness_matches_section8() {
        let tables = swap_baseline_experiment();
        let rows = &tables[0].rows;
        assert_eq!(rows[0][1], "false"); // broker deal is not a swap
        assert_eq!(rows[1][1], "false"); // auction is not a swap
        assert_eq!(rows[2][1], "true"); // ring is

        // The commit protocols cost at least as much gas as the plain HTLC
        // swap: they buy generality the swap cannot express.
        let cost = &tables[1].rows;
        let swap_gas: u64 = cost.iter().find(|r| r[0] == "HTLC swap").unwrap()[3]
            .parse()
            .unwrap();
        for row in cost.iter().filter(|r| r[0] != "HTLC swap") {
            let deal_gas: u64 = row[3].parse().unwrap();
            assert!(deal_gas >= swap_gas, "{row:?}");
        }
    }
}
