//! Integration tests: the timelock commit protocol end-to-end across the
//! simulator, contracts and deal engine crates, driven through the unified
//! `Deal` builder API.

use xchain_deals::builders::{broker_spec, brokered_chain_spec, ring_spec};
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::properties::{check_safety, check_strong_liveness, check_weak_liveness};
use xchain_deals::timelock::TimelockOptions;
use xchain_deals::{Deal, Protocol};
use xchain_sim::asset::Asset;
use xchain_sim::ids::{DealId, Owner, PartyId};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;

const DELTA: u64 = 100;

fn net() -> NetworkModel {
    NetworkModel::synchronous(DELTA)
}

#[test]
fn broker_deal_commits_and_routes_assets_correctly() {
    let deal = Deal::new(broker_spec()).network(net()).seed(1);
    let run = deal.run(Protocol::timelock()).unwrap();
    assert!(run.outcome.committed_everywhere());
    assert!(check_strong_liveness(deal.spec(), &[], &run.outcome));
    // Alice nets exactly her 1-coin commission.
    assert_eq!(
        run.world
            .holdings(Owner::Party(PartyId(0)))
            .balance(&"coin".into()),
        1
    );
    assert!(run
        .world
        .holdings(Owner::Party(PartyId(2)))
        .contains(&Asset::non_fungible("ticket", [1, 2])));
}

#[test]
fn rings_of_many_parties_commit() {
    for n in [2u32, 4, 8, 12] {
        let deal = Deal::new(ring_spec(DealId(n as u64), n))
            .network(net())
            .seed(n as u64);
        let run = deal.run(Protocol::timelock()).unwrap();
        assert!(run.outcome.committed_everywhere(), "ring n={n}");
        assert!(
            check_strong_liveness(deal.spec(), &[], &run.outcome),
            "ring n={n}"
        );
    }
}

#[test]
fn every_single_deviator_scenario_is_safe() {
    let spec = broker_spec();
    let deviations = [
        Deviation::RefuseEscrow,
        Deviation::SkipTransfers,
        Deviation::WithholdVote,
        Deviation::NeverForward,
        Deviation::RejectValidation,
        Deviation::CrashAfter(Phase::Escrow),
        Deviation::CrashAfter(Phase::Transfer),
        Deviation::CrashAfter(Phase::Validation),
    ];
    for &p in &spec.parties {
        for (i, d) in deviations.iter().enumerate() {
            let configs = vec![PartyConfig::deviating(p, *d)];
            let run = Deal::new(spec.clone())
                .network(net())
                .parties(&configs)
                .seed(50 + i as u64)
                .run(Protocol::timelock())
                .unwrap();
            let report = check_safety(&spec, &configs, &run.outcome);
            assert!(
                report.holds(),
                "party {p} deviation {d:?}: {:?}",
                report.violations
            );
            assert!(
                check_weak_liveness(&spec, &configs, &run.outcome),
                "party {p} deviation {d:?}"
            );
        }
    }
}

#[test]
fn never_forward_deviator_harms_only_itself() {
    // In a ring, party i+1 is the only party positioned to forward votes to
    // chain i. If it refuses, that chain times out while the others commit —
    // the timelock protocol does not guarantee commit-everywhere — but every
    // compliant party is still safe and nothing stays locked up; only the
    // deviator can end up worse off.
    let spec = ring_spec(DealId(5), 5);
    let configs = vec![PartyConfig::deviating(PartyId(2), Deviation::NeverForward)];
    let deal = Deal::new(spec.clone())
        .network(net())
        .parties(&configs)
        .seed(3);
    let run = deal.run(Protocol::timelock()).unwrap();
    assert!(run.outcome.fully_resolved());
    let report = check_safety(&spec, &configs, &run.outcome);
    assert!(report.holds(), "{:?}", report.violations);
    assert!(check_weak_liveness(&spec, &configs, &run.outcome));

    // With altruistic broadcast the same deviation cannot even prevent commit,
    // because votes no longer rely on forwarding at all.
    let opts = TimelockOptions {
        altruistic_broadcast: true,
        ..TimelockOptions::default()
    };
    let run = deal.run(Protocol::Timelock(opts)).unwrap();
    assert!(run.outcome.committed_everywhere());
}

#[test]
fn offline_compliant_party_is_protected_by_timeouts() {
    // Carol goes offline for the entire run: the deal cannot gather her vote,
    // times out, and refunds everyone.
    let spec = broker_spec();
    let configs = vec![PartyConfig::deviating(
        PartyId(2),
        Deviation::OfflineDuring {
            from: xchain_sim::time::Time(0),
            until: xchain_sim::time::Time(1_000_000),
        },
    )];
    let run = Deal::new(spec.clone())
        .network(net())
        .parties(&configs)
        .seed(4)
        .run(Protocol::timelock())
        .unwrap();
    assert!(run.outcome.aborted_everywhere());
    assert!(check_safety(&spec, &configs, &run.outcome).holds());
    assert_eq!(
        run.world
            .holdings(Owner::Party(PartyId(2)))
            .balance(&"coin".into()),
        101
    );
}

#[test]
fn commit_gas_grows_quadratically_in_parties_for_fixed_assets() {
    // Figure 4: O(m n^2) signature verifications in the worst case. With the
    // brokered-chain workload (m = n-1), per-asset verification counts grow
    // with n.
    let mut per_asset = Vec::new();
    for n in [4u32, 8] {
        let deal = Deal::new(brokered_chain_spec(DealId(n as u64), n, 50))
            .network(net())
            .seed(9);
        let run = deal.run(Protocol::timelock()).unwrap();
        assert!(run.outcome.committed_everywhere());
        let sigs = run.outcome.metrics.gas(Phase::Commit).sig_verifications;
        per_asset.push(sigs as f64 / deal.spec().n_assets() as f64);
    }
    assert!(per_asset[1] > per_asset[0] * 1.5, "{per_asset:?}");
}

#[test]
fn larger_delta_only_changes_timeouts_not_gas() {
    let spec = broker_spec();
    let small = TimelockOptions {
        delta: Duration(50),
        ..TimelockOptions::default()
    };
    let large = TimelockOptions {
        delta: Duration(500),
        ..TimelockOptions::default()
    };
    let r1 = Deal::new(spec.clone())
        .network(NetworkModel::synchronous(50))
        .seed(6)
        .run(Protocol::Timelock(small))
        .unwrap();
    let r2 = Deal::new(spec)
        .network(NetworkModel::synchronous(500))
        .seed(6)
        .run(Protocol::Timelock(large))
        .unwrap();
    assert!(r1.outcome.committed_everywhere() && r2.outcome.committed_everywhere());
    assert_eq!(
        r1.outcome.metrics.total_gas(),
        r2.outcome.metrics.total_gas()
    );
}
