//! ObservationHub parity: on an adversarial trace — cross-chain interleaving,
//! parties refreshing at different cadences, foreign log entries, a commit on
//! one chain and an abort on the other — every party's [`DealView`] out of
//! the shared, label-filtered hub must be **equal** (same entries, same
//! order) to the view its own PR 3 per-party-cursor [`DealObserver`] builds
//! from the same log. Batching the ingest changes the cost, never the view.

use std::collections::BTreeMap;

use xchain_contracts::escrow::EscrowManager;
use xchain_contracts::timelock::{TimelockDealInfo, TimelockManager};
use xchain_deals::builders::broker_spec;
use xchain_deals::plan::DealPlan;
use xchain_deals::setup::world_for_plan;
use xchain_deals::strategy::{DealObserver, ObservationHub};
use xchain_sim::asset::Asset;
use xchain_sim::crypto::PathSignature;
use xchain_sim::ids::{ChainId, Owner, PartyId};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::{Duration, Time};

/// Asserts that the hub's view of `party` equals a fresh observer-maintained
/// view, after both refresh from the world.
fn check(
    world: &xchain_sim::world::World,
    hub: &mut ObservationHub,
    observers: &mut BTreeMap<PartyId, DealObserver>,
    party: PartyId,
    at: &str,
) {
    hub.refresh(world);
    let obs = observers.get_mut(&party).expect("observer");
    obs.observe(world);
    assert_eq!(
        hub.view_of(party),
        obs.view(),
        "hub and per-party cursor views diverged for {party} at {at}"
    );
}

#[test]
fn hub_views_match_per_party_cursor_views_on_an_adversarial_trace() {
    let spec = broker_spec();
    let plan = DealPlan::new(&spec).unwrap();
    let mut world = world_for_plan(&plan, NetworkModel::synchronous(100), 42).unwrap();
    let (alice, bob, carol) = (PartyId(0), PartyId(1), PartyId(2));
    let (tickets, coins) = (ChainId(0), ChainId(1));

    let info = TimelockDealInfo {
        deal: spec.deal,
        plist: spec.parties.clone(),
        t0: Time(1_000),
        delta: Duration(100),
    };
    let tl = world
        .chain_mut(tickets)
        .unwrap()
        .install(TimelockManager::new(info.clone()));
    let esc = world
        .chain_mut(coins)
        .unwrap()
        .install(EscrowManager::new(spec.deal, spec.parties.clone()));

    let mut hub = ObservationHub::new(&plan);
    let mut observers: BTreeMap<PartyId, DealObserver> = spec
        .parties
        .iter()
        .map(|&p| (p, DealObserver::new(&spec)))
        .collect();

    // --- Escrow, out of order across chains; alice polls eagerly, carol
    // --- only at the very end (one big batch vs many small ones).
    world
        .call(
            tickets,
            Owner::Party(bob),
            tl,
            |m: &mut TimelockManager, c| m.escrow(c, Asset::non_fungible("ticket", [1, 2])),
        )
        .unwrap();
    check(
        &world,
        &mut hub,
        &mut observers,
        alice,
        "after bob's escrow",
    );
    world
        .call(
            coins,
            Owner::Party(carol),
            esc,
            |m: &mut EscrowManager, c| m.escrow(c, Asset::fungible("coin", 101)),
        )
        .unwrap();
    check(
        &world,
        &mut hub,
        &mut observers,
        alice,
        "after carol's escrow",
    );
    check(
        &world,
        &mut hub,
        &mut observers,
        bob,
        "bob's first catch-up",
    );

    // --- A failed call leaves no log entry and must not desynchronize
    // --- anything: a stranger tries to escrow.
    assert!(world
        .call(
            coins,
            Owner::Party(PartyId(9)),
            esc,
            |m: &mut EscrowManager, c| m.escrow(c, Asset::fungible("coin", 1)),
        )
        .is_err());
    check(
        &world,
        &mut hub,
        &mut observers,
        alice,
        "after failed escrow",
    );

    // --- Tentative transfers interleaved across chains: coins first so the
    // --- later chain-ordered fold differs from arrival order.
    world
        .call(
            coins,
            Owner::Party(carol),
            esc,
            |m: &mut EscrowManager, c| m.transfer(c, Asset::fungible("coin", 101), alice),
        )
        .unwrap();
    world
        .call(
            tickets,
            Owner::Party(bob),
            tl,
            |m: &mut TimelockManager, c| {
                m.transfer(c, Asset::non_fungible("ticket", [1, 2]), alice)
            },
        )
        .unwrap();
    check(&world, &mut hub, &mut observers, bob, "after transfers");
    world
        .call(
            tickets,
            Owner::Party(alice),
            tl,
            |m: &mut TimelockManager, c| {
                m.transfer(c, Asset::non_fungible("ticket", [1, 2]), carol)
            },
        )
        .unwrap();
    check(&world, &mut hub, &mut observers, alice, "after forwarding");

    // --- Commit votes on the ticket chain; the third vote commits the
    // --- escrow, so one call yields both a vote and a resolution event.
    world.advance_to(Time(1_005));
    for &p in &spec.parties {
        let key = world.key_pair(p).unwrap().clone();
        let vote = PathSignature::direct(p, &key, &info.vote_message(p));
        world
            .call(
                tickets,
                Owner::Party(p),
                tl,
                |m: &mut TimelockManager, c| m.commit(c, &vote),
            )
            .unwrap();
        check(&world, &mut hub, &mut observers, alice, "after a vote");
    }

    // --- The coin escrow aborts: a refund on the other chain.
    world
        .call(
            coins,
            Owner::Party(carol),
            esc,
            |m: &mut EscrowManager, c| m.force_abort(c),
        )
        .unwrap();

    // --- Final catch-up for everyone, including carol's single big batch.
    for &p in &spec.parties {
        check(&world, &mut hub, &mut observers, p, "final");
    }

    // Sanity: the (identical) views saw the whole deal.
    let view = hub.view_of(carol).clone();
    assert_eq!(view.escrows, vec![(tickets, bob), (coins, carol)]);
    assert!(view.has_voted(alice) && view.has_voted(bob) && view.has_voted(carol));
    assert_eq!(view.resolutions, vec![(tickets, true), (coins, false)]);
    assert!(view.counterparty_escrows_locked(&spec, alice));
}

/// Foreign log entries (outside the deal vocabulary) are filtered out by the
/// hub's subscription and ignored by the observer's string match — the views
/// stay equal, and equally blind to them.
#[test]
fn foreign_entries_are_skipped_identically() {
    use xchain_contracts::token::TokenContract;

    let spec = broker_spec();
    let plan = DealPlan::new(&spec).unwrap();
    let mut world = world_for_plan(&plan, NetworkModel::synchronous(100), 7).unwrap();
    let (tickets, alice, bob) = (ChainId(0), PartyId(0), PartyId(1));

    // A token registry on a deal chain: its "mint" entries are log traffic
    // the deal views never ingest.
    let registry = world
        .chain_mut(tickets)
        .unwrap()
        .install(TokenContract::new("gold", "GLD", alice));
    world
        .call(
            tickets,
            Owner::Party(alice),
            registry,
            |r: &mut TokenContract, c| r.mint(c, bob, 50),
        )
        .unwrap();
    let esc = world
        .chain_mut(tickets)
        .unwrap()
        .install(EscrowManager::new(spec.deal, spec.parties.clone()));
    world
        .call(
            tickets,
            Owner::Party(bob),
            esc,
            |m: &mut EscrowManager, c| m.escrow(c, Asset::non_fungible("ticket", [1, 2])),
        )
        .unwrap();

    let mut hub = ObservationHub::new(&plan);
    let mut obs = DealObserver::new(&spec);
    hub.refresh(&world);
    obs.observe(&world);
    assert_eq!(hub.view_of(alice), obs.view());
    assert_eq!(hub.view_of(alice).escrows, vec![(tickets, bob)]);
    assert!(hub.view_of(alice).transfers.is_empty());
}
