//! Deal outcomes: what actually happened, measured per party, per phase and
//! per chain. Outcomes are the inputs to the safety/liveness property
//! checkers and to the Figure 4 / Figure 7 experiments.

use std::collections::BTreeMap;

use xchain_sim::asset::AssetBag;
use xchain_sim::ids::{ChainId, PartyId};
use xchain_sim::time::Duration;

use crate::phases::PhaseMetrics;

/// Which commit protocol executed the deal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The timelock commit protocol (Section 5).
    Timelock,
    /// The certified-blockchain commit protocol (Section 6).
    Cbc,
    /// The two-party HTLC atomic swap baseline (Section 8).
    Swap,
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolKind::Timelock => f.write_str("timelock"),
            ProtocolKind::Cbc => f.write_str("CBC"),
            ProtocolKind::Swap => f.write_str("HTLC swap"),
        }
    }
}

/// How the escrow on one chain ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainResolution {
    /// The escrow released assets to their C-map owners.
    Committed,
    /// The escrow refunded the original owners.
    Aborted,
    /// The escrow never resolved within the simulation horizon (a weak
    /// liveness violation if any compliant party has assets there).
    Unresolved,
}

/// The complete, measured outcome of one deal execution.
#[derive(Debug, Clone)]
pub struct DealOutcome {
    /// Which protocol ran.
    pub protocol: ProtocolKind,
    /// Each party's holdings before the deal started.
    pub initial_holdings: BTreeMap<PartyId, AssetBag>,
    /// Each party's holdings after the deal (and all timeouts) finished.
    pub final_holdings: BTreeMap<PartyId, AssetBag>,
    /// How each involved chain's escrow resolved.
    pub resolutions: BTreeMap<ChainId, ChainResolution>,
    /// Per-phase gas and duration measurements.
    pub metrics: PhaseMetrics,
    /// The synchrony bound ∆ used to normalise durations in reports.
    pub delta: Duration,
}

impl DealOutcome {
    /// True if every involved chain committed.
    pub fn committed_everywhere(&self) -> bool {
        self.resolutions
            .values()
            .all(|r| *r == ChainResolution::Committed)
    }

    /// True if every involved chain aborted.
    pub fn aborted_everywhere(&self) -> bool {
        self.resolutions
            .values()
            .all(|r| *r == ChainResolution::Aborted)
    }

    /// True if no chain is left unresolved.
    pub fn fully_resolved(&self) -> bool {
        self.resolutions
            .values()
            .all(|r| *r != ChainResolution::Unresolved)
    }

    /// The initial holdings of a party (empty if unknown).
    pub fn initial_of(&self, p: PartyId) -> AssetBag {
        self.initial_holdings.get(&p).cloned().unwrap_or_default()
    }

    /// The final holdings of a party (empty if unknown).
    pub fn final_of(&self, p: PartyId) -> AssetBag {
        self.final_holdings.get(&p).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_predicates() {
        let mut o = DealOutcome {
            protocol: ProtocolKind::Timelock,
            initial_holdings: BTreeMap::new(),
            final_holdings: BTreeMap::new(),
            resolutions: BTreeMap::new(),
            metrics: PhaseMetrics::new(),
            delta: Duration(100),
        };
        o.resolutions.insert(ChainId(0), ChainResolution::Committed);
        o.resolutions.insert(ChainId(1), ChainResolution::Committed);
        assert!(o.committed_everywhere());
        assert!(o.fully_resolved());
        assert!(!o.aborted_everywhere());
        o.resolutions
            .insert(ChainId(1), ChainResolution::Unresolved);
        assert!(!o.fully_resolved());
        assert!(!o.committed_everywhere());
    }

    #[test]
    fn protocol_kind_display() {
        assert_eq!(ProtocolKind::Timelock.to_string(), "timelock");
        assert_eq!(ProtocolKind::Cbc.to_string(), "CBC");
        assert_eq!(ProtocolKind::Swap.to_string(), "HTLC swap");
    }
}
