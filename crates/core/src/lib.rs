//! # xchain-deals
//!
//! A from-scratch Rust implementation of **cross-chain deals**, the
//! computational abstraction proposed in *Cross-chain Deals and Adversarial
//! Commerce* (Herlihy, Liskov, Shrira, VLDB 2019), together with the paper's
//! two commit protocols and its safety/liveness properties.
//!
//! A deal is specified as a transfer matrix ([`spec::DealSpec`], Figure 1),
//! analysed as a digraph ([`digraph`], Figure 2), and executed in five phases
//! (clearing, escrow, transfer, validation, commit) over simulated
//! blockchains.
//!
//! ## The unified `DealEngine` API
//!
//! Every commit protocol is a [`engine::DealEngine`] — a pluggable strategy
//! over the same deal graph. The fluent [`deal::Deal`] session builder is the
//! single entry point: it owns the world setup (chains, parties, minted
//! escrow assets) and executes any engine, returning a unified
//! [`deal::DealRun`] carrying the [`outcome::DealOutcome`], the per-chain
//! escrow contracts, per-phase gas/duration metrics, and a protocol-specific
//! [`engine::ProtocolExt`] (validated map for timelock, certified log for
//! CBC, completion flag for the HTLC swap engine in `xchain-swap`).
//!
//! ```
//! use xchain_deals::builders::broker_spec;
//! use xchain_deals::properties::check_safety;
//! use xchain_deals::{Deal, Protocol};
//! use xchain_sim::network::NetworkModel;
//!
//! let deal = Deal::new(broker_spec())
//!     .network(NetworkModel::synchronous(100))
//!     .seed(42);
//!
//! // The same session runs under either protocol — or any other engine.
//! let timelock = deal.run(Protocol::timelock()).unwrap();
//! let cbc = deal.run(Protocol::cbc()).unwrap();
//! assert!(timelock.outcome.committed_everywhere());
//! assert!(cbc.outcome.committed_everywhere());
//! assert!(check_safety(deal.spec(), &[], &timelock.outcome).holds());
//! assert!(cbc.ext.cbc_status().unwrap().is_committed());
//! ```
//!
//! The engines behind [`engine::Protocol`]:
//!
//! * [`Protocol::Timelock`](engine::Protocol::Timelock) — the fully
//!   decentralized timelock commit protocol for synchronous networks
//!   (Section 5), with path-signature votes and `|p| · ∆` timeouts;
//! * [`Protocol::Cbc`](engine::Protocol::Cbc) — the certified-blockchain
//!   commit protocol for eventually-synchronous networks (Section 6), with
//!   validator-certified proofs of commit and abort.
//!
//! Party behaviour is an **open adversary API**: a [`party::PartyConfig`]
//! pairs a party with a [`strategy::Strategy`] — per-phase decision hooks fed
//! an [`strategy::ObservationCtx`] (the party's own, cursor-fed view of the
//! deal) — so adversaries can be adaptive and stateful, and new attacks are
//! user code instead of core edits. The classic behaviours survive as
//! [`party::Deviation`] descriptions realized by built-in strategies
//! ([`strategy::strategies`]), alongside adversaries the old enum could not
//! express (sore-loser, colluding coalitions, rational defectors). The
//! paper's Properties 1–3 are executable checks in [`properties`]. The
//! pre-0.2 free functions (`run_timelock`, `run_cbc`) have been removed; the
//! [`deal::Deal`] builder is the only entry point (see the migration table in
//! CHANGES.md).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builders;
pub mod cbc;
pub mod deal;
pub mod digraph;
pub mod engine;
pub mod error;
pub mod outcome;
pub mod party;
pub mod phases;
pub mod plan;
pub mod properties;
pub mod setup;
pub mod spec;
pub mod strategy;
pub mod timelock;
pub mod validation;

pub use cbc::{CbcOptions, CbcRun};
pub use deal::{Deal, DealRun};
pub use digraph::{is_well_formed, DealDigraph};
pub use engine::{DealEngine, EngineRun, Protocol, ProtocolExt};
pub use error::DealError;
pub use outcome::{ChainResolution, DealOutcome, ProtocolKind};
pub use party::{config_of, fresh_configs, Deviation, PartyConfig};
pub use phases::{Phase, PhaseMetrics};
pub use plan::{DealPlan, PartyPlan, PlannedEscrow, PlannedTransfer};
pub use properties::{
    check_conservation, check_safety, check_strong_liveness, check_weak_liveness, SafetyReport,
};
pub use spec::{DealSpec, EscrowSpec, TransferSpec};
pub use strategy::{
    strategies, DealObserver, DealView, ObservationCtx, ObservationHub, ObservedEvent, Strategy,
    Vote,
};
pub use timelock::{TimelockOptions, TimelockRun};
