//! Error types for deal specification and protocol execution.

use std::fmt;

use xchain_bft::log::CbcError;
use xchain_sim::error::ChainError;

/// Errors raised while specifying or executing a cross-chain deal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DealError {
    /// The deal specification is malformed (empty plist, unknown parties,
    /// unorderable transfers, …).
    InvalidSpec(String),
    /// The deal digraph is not strongly connected (free riders present).
    NotWellFormed,
    /// An underlying chain/contract operation failed in a way the protocol
    /// engine could not tolerate.
    Chain(ChainError),
    /// A CBC operation failed in a way the protocol engine could not tolerate.
    Cbc(CbcError),
    /// The engine was configured inconsistently (e.g. missing party config).
    Config(String),
}

impl fmt::Display for DealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DealError::InvalidSpec(msg) => write!(f, "invalid deal specification: {msg}"),
            DealError::NotWellFormed => write!(f, "deal digraph is not strongly connected"),
            DealError::Chain(e) => write!(f, "chain error: {e}"),
            DealError::Cbc(e) => write!(f, "CBC error: {e}"),
            DealError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for DealError {}

impl From<ChainError> for DealError {
    fn from(e: ChainError) -> Self {
        DealError::Chain(e)
    }
}

impl From<CbcError> for DealError {
    fn from(e: CbcError) -> Self {
        DealError::Cbc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: DealError = ChainError::BadSignature.into();
        assert!(e.to_string().contains("chain error"));
        let e: DealError = CbcError::QuorumUnavailable.into();
        assert!(e.to_string().contains("CBC"));
        assert!(DealError::NotWellFormed
            .to_string()
            .contains("strongly connected"));
    }
}
