//! A non-fungible ticket registry (the "ticket blockchain").
//!
//! Tickets are the paper's running example of a non-fungible asset. The
//! registry issues tickets with seat metadata; the metadata is what a buyer
//! inspects during the validation phase ("Carol checks … that the seats are
//! (at least as good as) the ones agreed upon").

use std::any::Any;
use std::collections::BTreeMap;

use xchain_sim::asset::AssetKind;
use xchain_sim::contract::{CallCtx, Contract};
use xchain_sim::error::ChainResult;
use xchain_sim::ids::{PartyId, TokenId};
use xchain_sim::intern::{InternedAsset, KindId, KindTable};

/// Seat metadata attached to one ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seat {
    /// Row number (lower is closer to the stage).
    pub row: u32,
    /// Seat number within the row.
    pub number: u32,
    /// Subjective quality grade, 0–100 (higher is better). Buyers compare this
    /// against the grade they agreed to during validation.
    pub grade: u8,
}

/// The ticket registry contract.
#[derive(Debug, Clone)]
pub struct TicketRegistry {
    kind: AssetKind,
    /// Interned id of `kind` on the hosting chain (set on install).
    kind_id: Option<KindId>,
    event_name: String,
    issuer: PartyId,
    next_token: u64,
    seats: BTreeMap<TokenId, Seat>,
}

impl TicketRegistry {
    /// Creates the registry; `issuer` (the event organiser) is the only party
    /// allowed to issue tickets.
    pub fn new(kind: impl Into<AssetKind>, event_name: impl Into<String>, issuer: PartyId) -> Self {
        TicketRegistry {
            kind: kind.into(),
            kind_id: None,
            event_name: event_name.into(),
            issuer,
            next_token: 1,
            seats: BTreeMap::new(),
        }
    }

    /// The asset kind of the tickets this registry issues.
    pub fn kind(&self) -> &AssetKind {
        &self.kind
    }

    /// The event the tickets admit to.
    pub fn event_name(&self) -> &str {
        &self.event_name
    }

    /// The seat metadata of a ticket, if it exists.
    pub fn seat(&self, token: TokenId) -> Option<&Seat> {
        self.seats.get(&token)
    }

    /// Number of tickets issued so far.
    pub fn issued(&self) -> usize {
        self.seats.len()
    }

    /// Issues a new ticket with the given seat to `to`, returning its token id.
    pub fn issue(
        &mut self,
        ctx: &mut CallCtx<'_>,
        to: PartyId,
        seat: Seat,
    ) -> ChainResult<TokenId> {
        let caller = ctx.caller_party()?;
        ctx.require(
            caller == self.issuer,
            "only the event organiser can issue tickets",
        )?;
        let token = TokenId(self.next_token);
        self.next_token += 1;
        ctx.charge_storage_write()?; // seat metadata
        self.seats.insert(token, seat);
        let kind = self
            .kind_id
            .unwrap_or_else(|| ctx.kinds().intern(self.kind.name()));
        let asset = InternedAsset::NonFungible {
            kind,
            tokens: [token].into_iter().collect(),
        };
        ctx.mint_interned_to_self(&asset)?;
        ctx.pay_out_interned(to.into(), &asset)?;
        ctx.emit("issue-ticket", vec![to.0 as u64, token.0])?;
        Ok(token)
    }

    /// True if every ticket in `tokens` has a grade of at least `min_grade` —
    /// the check a buyer performs during validation.
    pub fn all_at_least(&self, tokens: &[TokenId], min_grade: u8) -> bool {
        tokens.iter().all(|t| {
            self.seats
                .get(t)
                .map(|s| s.grade >= min_grade)
                .unwrap_or(false)
        })
    }
}

impl Contract for TicketRegistry {
    fn type_name(&self) -> &'static str {
        "ticket-registry"
    }
    fn on_install(&mut self, kinds: &KindTable) {
        self.kind_id = Some(kinds.intern(self.kind.name()));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_sim::asset::Asset;
    use xchain_sim::error::ChainError;
    use xchain_sim::ids::{ChainId, Owner};
    use xchain_sim::ledger::Blockchain;
    use xchain_sim::time::{Duration, Time};

    #[test]
    fn issue_and_inspect_tickets() {
        let mut chain = Blockchain::new(ChainId(0), "tickets", Duration(1));
        let bob = PartyId(1);
        let id = chain.install(TicketRegistry::new("ticket", "Hit Play", bob));
        let t1 = chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |r: &mut TicketRegistry, ctx| {
                    r.issue(
                        ctx,
                        bob,
                        Seat {
                            row: 1,
                            number: 11,
                            grade: 95,
                        },
                    )
                },
            )
            .unwrap();
        let t2 = chain
            .call(
                Time(0),
                Owner::Party(bob),
                id,
                |r: &mut TicketRegistry, ctx| {
                    r.issue(
                        ctx,
                        bob,
                        Seat {
                            row: 20,
                            number: 4,
                            grade: 40,
                        },
                    )
                },
            )
            .unwrap();
        assert_ne!(t1, t2);
        assert!(chain.assets().holds(
            Owner::Party(bob),
            &Asset::NonFungible {
                kind: "ticket".into(),
                tokens: [t1, t2].into_iter().collect(),
            }
        ));
        let (good, issued) = chain
            .view(id, |r: &TicketRegistry| {
                (r.all_at_least(&[t1], 90), r.issued())
            })
            .unwrap();
        assert!(good);
        assert_eq!(issued, 2);
        assert!(!chain
            .view(id, |r: &TicketRegistry| r.all_at_least(&[t1, t2], 90))
            .unwrap());
        assert!(!chain
            .view(id, |r: &TicketRegistry| r.all_at_least(&[TokenId(99)], 1))
            .unwrap());
    }

    #[test]
    fn only_organiser_issues() {
        let mut chain = Blockchain::new(ChainId(0), "tickets", Duration(1));
        let id = chain.install(TicketRegistry::new("ticket", "Hit Play", PartyId(1)));
        let err = chain
            .call(
                Time(0),
                Owner::Party(PartyId(2)),
                id,
                |r: &mut TicketRegistry, ctx| {
                    r.issue(
                        ctx,
                        PartyId(2),
                        Seat {
                            row: 1,
                            number: 1,
                            grade: 50,
                        },
                    )
                },
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }
}
