//! Network timing models and adversarial availability windows.
//!
//! The paper uses three communication assumptions:
//!
//! * **Synchronous** (Section 5, timelock protocol): there is a known bound
//!   `∆` on the time needed to change a blockchain's state in a way
//!   observable by all parties.
//! * **Eventually synchronous / semi-synchronous** (Section 6, CBC protocol,
//!   after Dwork–Lynch–Stockmeyer): delays are unbounded before a global
//!   stabilization time (GST) and bounded by `∆` afterwards.
//! * **Asynchronous**: no bound at all (used to demonstrate why the timelock
//!   protocol needs synchrony).
//!
//! Additionally, Section 5.3 and Section 9 discuss denial-of-service windows
//! during which a party is driven offline and cannot observe or act; the
//! [`OfflineSchedule`] models those.

use rand::Rng;

use crate::ids::PartyId;
use crate::time::{Duration, Time};

/// The network/observation timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkModel {
    /// Known bound `delta` on state-change observation latency.
    Synchronous {
        /// The bound ∆.
        delta: Duration,
    },
    /// Unbounded (up to `pre_gst_max`) delays before `gst`, bounded by `delta`
    /// afterwards.
    EventuallySynchronous {
        /// Global stabilization time.
        gst: Time,
        /// The bound ∆ after GST.
        delta: Duration,
        /// Worst-case delay the simulator will generate before GST (stands in
        /// for "unbounded"; must exceed `delta`).
        pre_gst_max: Duration,
    },
    /// No bound; the simulator generates delays up to `max_delay`.
    Asynchronous {
        /// Worst-case delay the simulator will generate.
        max_delay: Duration,
    },
}

impl NetworkModel {
    /// A synchronous network with bound `delta` ticks.
    pub fn synchronous(delta: u64) -> Self {
        NetworkModel::Synchronous {
            delta: Duration(delta),
        }
    }

    /// An eventually-synchronous network.
    pub fn eventually_synchronous(gst: u64, delta: u64, pre_gst_max: u64) -> Self {
        NetworkModel::EventuallySynchronous {
            gst: Time(gst),
            delta: Duration(delta),
            pre_gst_max: Duration(pre_gst_max.max(delta)),
        }
    }

    /// A (bounded-simulation) asynchronous network.
    pub fn asynchronous(max_delay: u64) -> Self {
        NetworkModel::Asynchronous {
            max_delay: Duration(max_delay),
        }
    }

    /// The synchrony bound ∆ the protocols may rely on, if one exists at all
    /// times (`Synchronous`) or eventually (`EventuallySynchronous`).
    pub fn delta(&self) -> Option<Duration> {
        match self {
            NetworkModel::Synchronous { delta } => Some(*delta),
            NetworkModel::EventuallySynchronous { delta, .. } => Some(*delta),
            NetworkModel::Asynchronous { .. } => None,
        }
    }

    /// The worst-case delay the model can produce at time `now`.
    pub fn max_delay_at(&self, now: Time) -> Duration {
        match self {
            NetworkModel::Synchronous { delta } => *delta,
            NetworkModel::EventuallySynchronous {
                gst,
                delta,
                pre_gst_max,
            } => {
                if now < *gst {
                    *pre_gst_max
                } else {
                    *delta
                }
            }
            NetworkModel::Asynchronous { max_delay } => *max_delay,
        }
    }

    /// Samples an observation delay for an event occurring at `now`.
    /// Delays are at least one tick (nothing is observed instantaneously).
    pub fn sample_delay<R: Rng + ?Sized>(&self, now: Time, rng: &mut R) -> Duration {
        let max = self.max_delay_at(now).ticks().max(1);
        Duration(rng.gen_range(1..=max))
    }

    /// True if, at time `now`, the model guarantees the ∆ bound.
    pub fn is_synchronous_at(&self, now: Time) -> bool {
        match self {
            NetworkModel::Synchronous { .. } => true,
            NetworkModel::EventuallySynchronous { gst, .. } => now >= *gst,
            NetworkModel::Asynchronous { .. } => false,
        }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::synchronous(100)
    }
}

/// A window during which a party cannot observe chains or submit transactions
/// (crash, network partition, or targeted denial-of-service, Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineWindow {
    /// The affected party.
    pub party: PartyId,
    /// Start of the outage (inclusive).
    pub from: Time,
    /// End of the outage (exclusive).
    pub until: Time,
}

/// The set of offline windows configured for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct OfflineSchedule {
    windows: Vec<OfflineWindow>,
}

impl OfflineSchedule {
    /// An empty schedule (everyone always online).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an outage window.
    pub fn add(&mut self, party: PartyId, from: Time, until: Time) {
        self.windows.push(OfflineWindow { party, from, until });
    }

    /// True if `party` is offline at `t`.
    pub fn is_offline(&self, party: PartyId, t: Time) -> bool {
        self.windows
            .iter()
            .any(|w| w.party == party && t >= w.from && t < w.until)
    }

    /// The earliest time at or after `t` at which `party` is back online.
    pub fn next_online(&self, party: PartyId, t: Time) -> Time {
        let mut t = t;
        // Windows may overlap/chain; iterate until no window covers t.
        loop {
            match self
                .windows
                .iter()
                .find(|w| w.party == party && t >= w.from && t < w.until)
            {
                Some(w) => t = w.until,
                None => return t,
            }
        }
    }

    /// All configured windows.
    pub fn windows(&self) -> &[OfflineWindow] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synchronous_delays_bounded_by_delta() {
        let m = NetworkModel::synchronous(50);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let d = m.sample_delay(Time(0), &mut rng);
            assert!(d.ticks() >= 1 && d.ticks() <= 50);
        }
        assert_eq!(m.delta(), Some(Duration(50)));
        assert!(m.is_synchronous_at(Time(0)));
    }

    #[test]
    fn eventually_synchronous_respects_gst() {
        let m = NetworkModel::eventually_synchronous(1_000, 50, 5_000);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!m.is_synchronous_at(Time(999)));
        assert!(m.is_synchronous_at(Time(1_000)));
        assert_eq!(m.max_delay_at(Time(0)), Duration(5_000));
        assert_eq!(m.max_delay_at(Time(1_000)), Duration(50));
        let mut saw_large = false;
        for _ in 0..500 {
            let d = m.sample_delay(Time(10), &mut rng);
            assert!(d.ticks() <= 5_000);
            if d.ticks() > 50 {
                saw_large = true;
            }
        }
        assert!(saw_large, "pre-GST delays should exceed delta sometimes");
        for _ in 0..200 {
            assert!(m.sample_delay(Time(2_000), &mut rng).ticks() <= 50);
        }
    }

    #[test]
    fn asynchronous_has_no_delta() {
        let m = NetworkModel::asynchronous(10_000);
        assert_eq!(m.delta(), None);
        assert!(!m.is_synchronous_at(Time(0)));
    }

    #[test]
    fn pre_gst_max_never_below_delta() {
        let m = NetworkModel::eventually_synchronous(100, 500, 10);
        assert_eq!(m.max_delay_at(Time(0)), Duration(500));
    }

    #[test]
    fn offline_schedule_windows() {
        let mut s = OfflineSchedule::new();
        s.add(PartyId(1), Time(10), Time(20));
        s.add(PartyId(1), Time(20), Time(30));
        s.add(PartyId(2), Time(0), Time(5));
        assert!(!s.is_offline(PartyId(1), Time(9)));
        assert!(s.is_offline(PartyId(1), Time(10)));
        assert!(s.is_offline(PartyId(1), Time(19)));
        assert!(s.is_offline(PartyId(1), Time(29)));
        assert!(!s.is_offline(PartyId(1), Time(30)));
        assert!(!s.is_offline(PartyId(3), Time(15)));
        assert_eq!(s.next_online(PartyId(1), Time(15)), Time(30));
        assert_eq!(s.next_online(PartyId(1), Time(35)), Time(35));
        assert_eq!(s.next_online(PartyId(2), Time(2)), Time(5));
        assert_eq!(s.windows().len(), 3);
    }
}
