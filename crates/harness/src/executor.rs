//! A hand-rolled work-queue executor for embarrassingly parallel job sets.
//!
//! The experiment matrix of a [`crate::sweep::Sweep`] is a cross-product of
//! independent cells — exactly the shape of the paper's Section 7 evaluation
//! (protocols × deal topologies × adversary behaviours) — so it parallelizes
//! trivially: each cell builds its own world and runs to completion without
//! touching any other cell's state. The build environment has no crates.io
//! access (no rayon), so this module provides the minimal pool the sweeps
//! need, built on [`std::thread::scope`]:
//!
//! * jobs are indexed `0..jobs` and pulled from a shared atomic counter, so
//!   workers self-balance regardless of per-cell cost;
//! * results carry their index and are re-ordered before returning, so the
//!   output of [`run_indexed`] is **always in job order** — callers observe
//!   byte-identical results whether the pool ran with 1 thread or 16;
//! * `threads == 1` (or a single job) short-circuits to a plain serial loop
//!   with zero synchronization, which is what the determinism tests compare
//!   the parallel runs against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use by default: the machine's available
/// parallelism, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `job(0..jobs)` across `threads` scoped workers and returns the
/// results **in job-index order** (as if computed by a serial loop).
///
/// `job` must be safe to call concurrently from several threads (`Sync`); the
/// sweep satisfies this by giving every cell its own engine and world. Panics
/// in a job propagate to the caller once all workers have joined.
pub fn run_indexed<T, F>(jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(jobs.max(1));
    if threads <= 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Claim-then-run loop; batch the lock at the end so workers
                // never serialize on the results vector mid-run.
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    local.push((i, job(i)));
                }
                results.lock().expect("executor results lock").extend(local);
            });
        }
    });

    let mut indexed = results.into_inner().expect("executor results lock");
    debug_assert_eq!(indexed.len(), jobs);
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 8, 64] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let counter = AtomicU64::new(0);
        let out = run_indexed(100, 8, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_jobs_and_degenerate_thread_counts() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(1, 16, |i| i + 1), vec![1]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
