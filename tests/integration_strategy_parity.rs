//! Strategy/enum parity: every legacy `Deviation` and its built-in strategy
//! replacement must produce *identical* `SweepOutcome`s — same labels, seeds,
//! resolutions, holdings and per-phase metrics — at `threads(1)` and
//! `threads(4)`. This pins the open adversary API to the behaviour the old
//! closed enum had, so the migration (`Deviation::X` → `strategies::x()`)
//! is purely mechanical.

use xchain_deals::party::PartyConfig;
use xchain_deals::spec::DealSpec;
use xchain_deals::strategy::strategies;
use xchain_harness::adversary::all_deviations;
use xchain_harness::sweep::{standard_engines, Sweep, SweepOutcome};
use xchain_harness::workload::{broker_spec, ring_spec};
use xchain_sim::ids::DealId;

const DELTA: u64 = 100;

/// Single-deviator scenarios built through the legacy enum entry point.
fn legacy_scenarios(spec: &DealSpec) -> Vec<(String, Vec<PartyConfig>)> {
    let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
    for &p in &spec.parties {
        for (i, d) in all_deviations(DELTA).into_iter().enumerate() {
            scenarios.push((format!("adv#{i}@{p}"), vec![PartyConfig::deviating(p, d)]));
        }
    }
    scenarios
}

/// The same scenarios built through the strategy catalog (`strategies::*`).
fn strategy_scenarios(spec: &DealSpec) -> Vec<(String, Vec<PartyConfig>)> {
    let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
    for &p in &spec.parties {
        for (i, d) in all_deviations(DELTA).into_iter().enumerate() {
            scenarios.push((
                format!("adv#{i}@{p}"),
                vec![PartyConfig::with_strategy(p, strategies::from_deviation(d))],
            ));
        }
    }
    scenarios
}

fn run_sweep(
    gen: impl Fn(&DealSpec) -> Vec<(String, Vec<PartyConfig>)> + Send + Sync + 'static,
    threads: usize,
) -> SweepOutcome {
    Sweep::new()
        .spec("broker", broker_spec())
        .spec("ring n=2", ring_spec(DealId(41), 2))
        .over_protocols(standard_engines(DELTA))
        .over_adversaries(gen)
        .seed(2024)
        .threads(threads)
        .run()
        .unwrap()
}

/// Two sweep outcomes must agree cell by cell, down to the Debug rendering of
/// the full `DealOutcome` (holdings, resolutions, per-phase gas and
/// durations).
fn assert_identical(a: &SweepOutcome, b: &SweepOutcome) {
    assert_eq!(a.skipped, b.skipped);
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        let label = format!(
            "{} / {} / {} / {}",
            x.spec, x.engine, x.network, x.adversary
        );
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.engine, y.engine);
        assert_eq!(x.network, y.network);
        assert_eq!(x.adversary, y.adversary, "{label}");
        assert_eq!(x.seed, y.seed, "{label}");
        assert_eq!(
            format!("{:?}", x.run.outcome),
            format!("{:?}", y.run.outcome),
            "{label}"
        );
    }
}

#[test]
fn every_legacy_deviation_matches_its_builtin_strategy() {
    let legacy = run_sweep(legacy_scenarios, 1);
    let strategy = run_sweep(strategy_scenarios, 1);
    assert!(legacy.points.len() > 2 * (1 + 3 * all_deviations(DELTA).len()));
    assert_identical(&legacy, &strategy);
}

#[test]
fn parity_holds_at_every_thread_count() {
    let legacy_serial = run_sweep(legacy_scenarios, 1);
    let legacy_parallel = run_sweep(legacy_scenarios, 4);
    let strategy_parallel = run_sweep(strategy_scenarios, 4);
    assert_identical(&legacy_serial, &legacy_parallel);
    assert_identical(&legacy_parallel, &strategy_parallel);
}
