//! Pre-resolved deal plans: the compile-once layer between a [`DealSpec`]
//! and the protocol engines.
//!
//! A [`DealSpec`] is the *human-facing* description of a deal: asset kinds
//! are names, per-party chain sets are derived on demand, and the tentative
//! transfer order is recomputed by whoever asks. That is the right shape for
//! authoring deals, but the wrong shape for executing them — PR 2 interned
//! the simulator's ledger so per-transaction paths work on `Copy`
//! [`KindId`]s, yet every engine still crossed the spec boundary with
//! `String`-kinded [`Asset`]s (escrow entry, tentative transfers, validation)
//! and re-derived `incoming_chains_of`/`outgoing_chains_of` (allocating,
//! sorting Vecs) at every commit round.
//!
//! A [`DealPlan`] resolves all of that **exactly once per deal**:
//!
//! * the spec is validated and the tentative [`transfer order`] is computed
//!   a single time (previously `validate()` + the engine each computed it);
//! * every escrow and transfer asset is interned into the plan's canonical
//!   [`KindTable`], producing [`InternedAsset`]s the engines hand straight to
//!   the contracts' `*_interned` entry points — after planning, **no kind
//!   name is looked up or cloned anywhere on the deal hot path**;
//! * per-party tables ([`PartyPlan`]) precompute the incoming/outgoing chain
//!   sets (the timelock vote and forwarding targets) and the per-chain
//!   *expected net incoming* [`InternedBag`]s that validation compares
//!   against the escrow C map via [`EscrowCore::on_commit_covers`].
//!
//! Kind-id validity is by construction: [`crate::setup::world_for_plan`]
//! builds each world from a [`KindTable::fork`] of the plan's table, so every
//! id the plan assigned resolves identically on all of that world's chains.
//! One plan can therefore be shared (it is `Send + Sync`) across many worlds
//! — the sweep executor in `xchain-harness` resolves one plan per
//! specification and reuses it for every cell (seed × network × adversary ×
//! engine) that runs that spec, and `Deal::run_in` resolves the plan against
//! the *caller's* world table instead, so caller-owned worlds keep working.
//!
//! [`transfer order`]: DealSpec::transfer_order
//! [`EscrowCore::on_commit_covers`]: xchain_contracts::escrow::EscrowCore::on_commit_covers
//! [`KindId`]: xchain_sim::intern::KindId
//! [`Asset`]: xchain_sim::asset::Asset

use xchain_sim::ids::{ChainId, PartyId};
use xchain_sim::intern::{InternedAsset, InternedBag, KindTable};

use crate::error::DealError;
use crate::spec::{DealSpec, EscrowSpec, TransferSpec};

/// One escrow obligation with its asset pre-interned (parallel to
/// [`DealSpec::escrows`]).
#[derive(Debug, Clone)]
pub struct PlannedEscrow {
    /// The original owner of the asset.
    pub owner: PartyId,
    /// The chain the asset lives on.
    pub chain: ChainId,
    /// The asset to escrow, interned against the plan's kind table.
    pub asset: InternedAsset,
}

/// One matrix entry with its asset pre-interned (parallel to
/// [`DealSpec::transfers`]).
#[derive(Debug, Clone)]
pub struct PlannedTransfer {
    /// The sending party.
    pub from: PartyId,
    /// The receiving party.
    pub to: PartyId,
    /// The chain the asset lives on.
    pub chain: ChainId,
    /// The asset to transfer, interned against the plan's kind table.
    pub asset: InternedAsset,
}

/// Everything one party's protocol actions need, precomputed (parallel to
/// [`DealSpec::parties`]).
#[derive(Debug, Clone)]
pub struct PartyPlan {
    /// The party.
    pub id: PartyId,
    /// Chains on which the party has incoming assets (vote targets under the
    /// timelock protocol) — sorted, deduplicated.
    pub incoming_chains: Vec<ChainId>,
    /// Chains on which the party has outgoing assets (what it monitors for
    /// forwarding) — sorted, deduplicated.
    pub outgoing_chains: Vec<ChainId>,
    /// Per incoming chain, the party's expected *net* incoming assets
    /// (incoming minus onward transfers on the same chain) — what validation
    /// requires the escrow C map to cover. Parallel to `incoming_chains`.
    pub expected: Vec<InternedBag>,
}

/// A deal specification resolved for execution: validated once, transfer
/// order fixed, every asset interned, per-party chain/validation tables
/// precomputed. See the module docs for how engines and worlds consume it.
#[derive(Debug, Clone)]
pub struct DealPlan {
    spec: DealSpec,
    kinds: KindTable,
    chains: Vec<ChainId>,
    transfer_order: Vec<usize>,
    escrows: Vec<PlannedEscrow>,
    transfers: Vec<PlannedTransfer>,
    parties: Vec<PartyPlan>,
}

impl DealPlan {
    /// Resolves a specification into a plan with its own canonical kind
    /// table. Worlds meant to execute this plan must be built from it
    /// ([`crate::setup::world_for_plan`]) so the interned ids line up.
    pub fn new(spec: &DealSpec) -> Result<Self, DealError> {
        Self::resolve(spec.clone(), KindTable::new())
    }

    /// Resolves a specification against an *existing* kind table (shared,
    /// not forked): the plan's ids are assigned in — and stay valid for —
    /// whatever worlds share that table. This is how [`crate::Deal::run_in`]
    /// plans against a caller-supplied world.
    pub fn for_table(spec: &DealSpec, kinds: &KindTable) -> Result<Self, DealError> {
        Self::resolve(spec.clone(), kinds.clone())
    }

    fn resolve(spec: DealSpec, kinds: KindTable) -> Result<Self, DealError> {
        spec.validate()?;
        // `validate()` proved an order exists; computing it here fixes it for
        // the lifetime of the plan (engines no longer recompute it per run).
        let transfer_order = spec.transfer_order()?;
        // Deterministic id assignment: escrows in spec order, then transfers
        // in spec order. Identical specs therefore produce identical tables.
        let escrows: Vec<PlannedEscrow> = spec
            .escrows
            .iter()
            .map(|e: &EscrowSpec| PlannedEscrow {
                owner: e.owner,
                chain: e.chain,
                asset: kinds.intern_asset(&e.asset),
            })
            .collect();
        let transfers: Vec<PlannedTransfer> = spec
            .transfers
            .iter()
            .map(|t: &TransferSpec| PlannedTransfer {
                from: t.from,
                to: t.to,
                chain: t.chain,
                asset: kinds.intern_asset(&t.asset),
            })
            .collect();
        let chains = spec.chains();
        let parties = spec
            .parties
            .iter()
            .map(|&p| {
                let incoming_chains = spec.incoming_chains_of(p);
                let expected = incoming_chains
                    .iter()
                    .map(|&chain| {
                        // Net expected incoming on `chain`: add incoming,
                        // remove onward transfers (mirrors
                        // `validation::expected_on_chain`).
                        let mut bag = InternedBag::new();
                        for t in transfers.iter().filter(|t| t.to == p && t.chain == chain) {
                            bag.add(&t.asset);
                        }
                        for t in transfers.iter().filter(|t| t.from == p && t.chain == chain) {
                            bag.remove(&t.asset);
                        }
                        bag
                    })
                    .collect();
                PartyPlan {
                    id: p,
                    incoming_chains,
                    outgoing_chains: spec.outgoing_chains_of(p),
                    expected,
                }
            })
            .collect();
        Ok(DealPlan {
            spec,
            kinds,
            chains,
            transfer_order,
            escrows,
            transfers,
            parties,
        })
    }

    /// The specification this plan was resolved from.
    pub fn spec(&self) -> &DealSpec {
        &self.spec
    }

    /// The plan's canonical kind table (fork it to build a world, see
    /// [`crate::setup::world_for_plan`]).
    pub fn kinds(&self) -> &KindTable {
        &self.kinds
    }

    /// The chains involved in the deal (sorted, deduplicated).
    pub fn chains(&self) -> &[ChainId] {
        &self.chains
    }

    /// The fixed tentative-transfer order: indices into [`DealPlan::transfers`].
    pub fn transfer_order(&self) -> &[usize] {
        &self.transfer_order
    }

    /// The escrow obligations with pre-interned assets (parallel to
    /// [`DealSpec::escrows`]).
    pub fn escrows(&self) -> &[PlannedEscrow] {
        &self.escrows
    }

    /// The transfers with pre-interned assets (parallel to
    /// [`DealSpec::transfers`]).
    pub fn transfers(&self) -> &[PlannedTransfer] {
        &self.transfers
    }

    /// The per-party tables (parallel to [`DealSpec::parties`]).
    pub fn parties(&self) -> &[PartyPlan] {
        &self.parties
    }

    /// The precomputed table for one party. Deal parties are few, so a scan
    /// beats a map; the engines mostly iterate [`DealPlan::parties`] instead.
    pub fn party(&self, id: PartyId) -> Option<&PartyPlan> {
        self.parties.iter().find(|pp| pp.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{broker_spec, ring_spec};
    use xchain_sim::asset::Asset;
    use xchain_sim::ids::DealId;

    #[test]
    fn plan_precomputes_what_the_spec_derives() {
        let spec = broker_spec();
        let plan = DealPlan::new(&spec).unwrap();
        assert_eq!(plan.spec(), &spec);
        assert_eq!(plan.chains(), &spec.chains()[..]);
        assert_eq!(plan.transfer_order(), &spec.transfer_order().unwrap()[..]);
        assert_eq!(plan.escrows().len(), spec.escrows.len());
        assert_eq!(plan.transfers().len(), spec.transfers.len());
        for (pp, &p) in plan.parties().iter().zip(&spec.parties) {
            assert_eq!(pp.id, p);
            assert_eq!(pp.incoming_chains, spec.incoming_chains_of(p));
            assert_eq!(pp.outgoing_chains, spec.outgoing_chains_of(p));
            assert_eq!(pp.expected.len(), pp.incoming_chains.len());
        }
        assert!(plan.party(PartyId(0)).is_some());
        assert!(plan.party(PartyId(9)).is_none());
    }

    #[test]
    fn planned_assets_resolve_back_to_the_spec_assets() {
        let spec = broker_spec();
        let plan = DealPlan::new(&spec).unwrap();
        for (pe, e) in plan.escrows().iter().zip(&spec.escrows) {
            assert_eq!(pe.asset.resolve(plan.kinds()), e.asset);
        }
        for (pt, t) in plan.transfers().iter().zip(&spec.transfers) {
            assert_eq!(pt.asset.resolve(plan.kinds()), t.asset);
        }
    }

    #[test]
    fn expected_bags_mirror_validation_expected_on_chain() {
        let spec = broker_spec();
        let plan = DealPlan::new(&spec).unwrap();
        for pp in plan.parties() {
            for (chain, expected) in pp.incoming_chains.iter().zip(&pp.expected) {
                let named = crate::validation::expected_on_chain(&spec, pp.id, *chain);
                let mut roundtrip = xchain_sim::asset::AssetBag::new();
                for (kind, amount) in named.fungible_holdings() {
                    if amount > 0 {
                        roundtrip.add(&Asset::Fungible {
                            kind: kind.clone(),
                            amount,
                        });
                    }
                }
                for (kind, tokens) in named.non_fungible_holdings() {
                    if !tokens.is_empty() {
                        roundtrip.add(&Asset::NonFungible {
                            kind: kind.clone(),
                            tokens: tokens.clone(),
                        });
                    }
                }
                assert_eq!(expected.resolve(plan.kinds()), roundtrip, "{}", pp.id);
            }
        }
    }

    #[test]
    fn invalid_specs_fail_at_planning_time() {
        let mut spec = ring_spec(DealId(1), 3);
        spec.parties.push(spec.parties[0]); // duplicate party
        assert!(DealPlan::new(&spec).is_err());
    }

    #[test]
    fn identical_specs_produce_identical_id_assignments() {
        let a = DealPlan::new(&broker_spec()).unwrap();
        let b = DealPlan::new(&broker_spec()).unwrap();
        for (ea, eb) in a.escrows().iter().zip(b.escrows()) {
            assert_eq!(ea.asset, eb.asset);
        }
        for (ta, tb) in a.transfers().iter().zip(b.transfers()) {
            assert_eq!(ta.asset, tb.asset);
        }
    }
}
