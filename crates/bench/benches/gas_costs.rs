//! Benchmark regenerating Figure 4 (gas costs): full deal executions under
//! both protocols across deal sizes, through the unified `Deal` builder.
//!
//! Run with: `cargo bench -p xchain-bench --bench gas_costs`

use xchain_bench::Suite;
use xchain_deals::builders::brokered_chain_spec;
use xchain_deals::cbc::CbcOptions;
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

fn main() {
    println!("fig4_gas");
    let mut suite = Suite::from_args("gas_costs");
    for n in [3u32, 6, 9] {
        let deal = Deal::new(brokered_chain_spec(DealId(n as u64), n, 100))
            .network(NetworkModel::synchronous(100))
            .seed(1);
        suite.bench(&format!("fig4_gas/timelock/{n}"), 50, || {
            deal.run(Protocol::timelock()).unwrap()
        });
        suite.bench(&format!("fig4_gas/cbc_f2/{n}"), 50, || {
            deal.run(Protocol::Cbc(CbcOptions {
                f: 2,
                ..CbcOptions::default()
            }))
            .unwrap()
        });
    }
    suite.finish();
}
