//! Benchmark regenerating Figure 7 (delays): ring deals of varying size
//! under the delay-relevant protocol options, through the `Deal` builder.
//!
//! Run with: `cargo bench -p xchain-bench --bench delays`

use xchain_bench::Suite;
use xchain_deals::builders::ring_spec;
use xchain_deals::timelock::TimelockOptions;
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;

fn main() {
    println!("fig7_delays");
    let mut suite = Suite::from_args("delays");
    for n in [3u32, 6, 9] {
        let deal = Deal::new(ring_spec(DealId(n as u64), n))
            .network(NetworkModel::synchronous(100))
            .seed(2);
        suite.bench(&format!("fig7_delays/timelock_forwarded/{n}"), 30, || {
            deal.run(Protocol::timelock()).unwrap()
        });
        suite.bench(&format!("fig7_delays/timelock_broadcast/{n}"), 30, || {
            deal.run(Protocol::Timelock(TimelockOptions {
                altruistic_broadcast: true,
                concurrent_transfers: true,
                delta: Duration(100),
            }))
            .unwrap()
        });
        suite.bench(&format!("fig7_delays/cbc/{n}"), 30, || {
            deal.run(Protocol::cbc()).unwrap()
        });
    }
    suite.finish();
}
