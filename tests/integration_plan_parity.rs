//! Plan-vs-string parity: executing through pre-resolved [`DealPlan`]s (the
//! sweep path — one plan per spec, worlds forked from the plan's kind table)
//! must produce *exactly* the outcomes of resolving everything per run (the
//! `Deal::run` path, whose plan is rebuilt from the string-kinded spec every
//! call). The plan layer is a representation change, not a semantic one.

use xchain_deals::builders::{auction_spec, broker_spec, ring_spec};
use xchain_deals::plan::DealPlan;
use xchain_deals::spec::DealSpec;
use xchain_deals::{Deal, DealRun, Protocol};
use xchain_harness::adversary::single_deviator_configs;
use xchain_harness::sweep::{standard_engines, Sweep, SweepOutcome};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;
use xchain_swap::SwapEngine;

fn specs() -> Vec<(String, DealSpec)> {
    vec![
        ("broker".into(), broker_spec()),
        ("ring n=2".into(), ring_spec(DealId(2), 2)),
        ("ring n=4".into(), ring_spec(DealId(4), 4)),
        ("auction".into(), auction_spec(DealId(9), &[30, 55])),
    ]
}

fn fingerprint(run: &DealRun) -> String {
    format!(
        "gas={:?}|outcome={:?}",
        run.outcome.metrics.total_gas(),
        run.outcome
    )
}

/// The sweep (shared plans, forked kind tables) against a hand-rolled loop
/// over `Deal::run` (fresh plan per cell): identical outcomes, point for
/// point, at `threads(1)` and `threads(4)`.
#[test]
fn sweep_with_shared_plans_matches_per_run_resolution() {
    let sweep = |threads: usize| -> SweepOutcome {
        Sweep::new()
            .over_specs(specs())
            .over_protocols(standard_engines(100))
            .over_networks(vec![
                ("sync".into(), NetworkModel::synchronous(100)),
                (
                    "eventually sync".into(),
                    NetworkModel::eventually_synchronous(300, 100, 600),
                ),
            ])
            .over_adversaries(|spec| {
                let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
                scenarios.extend(
                    single_deviator_configs(spec, 100)
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| (format!("deviator #{i}"), c)),
                );
                scenarios
            })
            .seed(777)
            .threads(threads)
            .run()
            .unwrap()
    };

    for threads in [1usize, 4] {
        let outcome = sweep(threads);
        assert!(outcome.points.len() > 100, "threads={threads}");
        for p in &outcome.points {
            // Re-execute the cell the pre-plan way: a fresh `Deal::run`,
            // which resolves its own plan from the string-kinded spec.
            let deal = Deal::new(p.deal.clone())
                .parties(&p.configs)
                .seed(p.seed)
                .network(match p.network.as_str() {
                    "sync" => NetworkModel::synchronous(100),
                    _ => NetworkModel::eventually_synchronous(300, 100, 600),
                });
            let rerun = match p.engine.as_str() {
                "timelock" => deal.run(Protocol::timelock()),
                "CBC" => deal.run(Protocol::cbc()),
                _ => deal.run(SwapEngine::new(xchain_sim::time::Duration(100))),
            }
            .unwrap();
            assert_eq!(
                fingerprint(&p.run),
                fingerprint(&rerun),
                "threads={threads}: {} / {} / {} / {} diverged",
                p.spec,
                p.engine,
                p.network,
                p.adversary
            );
        }
    }
}

/// One shared plan across many sessions (different seeds and engines) equals
/// per-session planning, and `run_in` (plan resolved against the caller's
/// world table) equals both.
#[test]
fn shared_plan_and_caller_world_agree_with_fresh_plans() {
    let spec = broker_spec();
    let session = Deal::new(spec.clone()).network(NetworkModel::synchronous(100));
    let plan = session.plan().unwrap();
    for seed in [0u64, 7, 42, 1897] {
        for engine in [Protocol::timelock(), Protocol::cbc()] {
            let deal = session.clone().seed(seed);
            let fresh = deal.run(engine.clone()).unwrap();
            let shared = deal.run_planned(&plan, engine.clone()).unwrap();
            assert_eq!(fingerprint(&fresh), fingerprint(&shared), "seed {seed}");
            // Caller-owned world: the plan is resolved against the world's
            // own kind table instead of a fork.
            let mut world = deal.build_world().unwrap();
            let in_run = deal.run_in(&mut world, engine.clone()).unwrap();
            assert_eq!(
                format!("{:?}", fresh.outcome),
                format!("{:?}", in_run.outcome),
                "seed {seed}"
            );
        }
    }
}

/// A plan is reusable concurrently: the same `DealPlan` value driving cells
/// on several worker threads yields the serial outcome (the plan is shared
/// state, so this doubles as a thread-safety check under `cargo test`).
#[test]
fn one_plan_many_threads_is_deterministic() {
    let run_with = |threads: usize| {
        Sweep::new()
            .spec("ring n=5", ring_spec(DealId(5), 5))
            .over_protocols(standard_engines(100))
            .over_adversaries(|spec| {
                single_deviator_configs(spec, 100)
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (format!("deviator #{i}"), c))
                    .collect()
            })
            .seed(31)
            .threads(threads)
            .run()
            .unwrap()
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(fingerprint(&a.run), fingerprint(&b.run));
    }
}

/// Planning catches invalid specifications up front with the same error
/// class the engines used to produce mid-run.
#[test]
fn invalid_specs_fail_at_plan_time() {
    let mut spec = broker_spec();
    spec.parties.push(spec.parties[0]);
    assert!(DealPlan::new(&spec).is_err());
    assert!(Deal::new(spec).run(Protocol::timelock()).is_err());
}
