//! Benchmark of the deal observation machinery: the shared, label-filtered
//! [`ObservationHub`] against the per-party cursor [`DealObserver`]s it
//! replaced on the engine hot path, over the log of a real 9-party deal.
//!
//! `observer_views` re-reads (and re-string-matches) every log entry once
//! per party; `hub_views` reads each entry once, parses it once, and fans it
//! out — the "second half" of batched log monitoring. `timelock_decisions`
//! measures the full per-decision pattern the engines use (refresh + fold +
//! context assembly for every party across several simulated phases).
//!
//! Run with: `cargo bench -p xchain-bench --bench observation`

use xchain_bench::Suite;
use xchain_deals::builders::ring_spec;
use xchain_deals::phases::Phase;
use xchain_deals::plan::DealPlan;
use xchain_deals::strategy::{DealObserver, ObservationHub};
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

fn main() {
    println!("observation");
    let mut suite = Suite::from_args("observation");
    let n = 9u32;
    let spec = ring_spec(DealId(n as u64), n);
    let plan = DealPlan::new(&spec).expect("ring spec plans");
    // A fully-played deal: its world's logs carry every escrow, transfer,
    // vote and resolution entry a party would have monitored.
    let run = Deal::new(spec.clone())
        .network(NetworkModel::synchronous(100))
        .seed(3)
        .run(Protocol::timelock())
        .expect("ring deal runs");
    assert!(run.outcome.committed_everywhere());
    let world = &run.world;

    suite.bench(&format!("observation/observer_views/{n}"), 200, || {
        // PR 3 shape: every party re-reads the whole log with its own
        // cursors and re-matches every label string.
        let mut total = 0usize;
        for _ in &spec.parties {
            let mut obs = DealObserver::new(&spec);
            obs.observe(world);
            total += obs.view().escrows.len();
        }
        total
    });

    suite.bench(&format!("observation/hub_views/{n}"), 200, || {
        // One shared ingest pass; per-party views fold pre-parsed events.
        let mut hub = ObservationHub::new(&plan);
        hub.refresh(world);
        let mut total = 0usize;
        for &p in &spec.parties {
            total += hub.view_of(p).escrows.len();
        }
        total
    });

    suite.bench(&format!("observation/timelock_decisions/{n}"), 200, || {
        // The engine's actual decision pattern: one context per party per
        // phase, against an already-caught-up hub (O(chains) refresh checks).
        let mut hub = ObservationHub::new(&plan);
        let mut votes = 0usize;
        for phase in [Phase::Escrow, Phase::Transfer, Phase::Commit] {
            for &p in &spec.parties {
                let ctx = hub.ctx(world, &spec, p, phase, Some(true));
                votes += usize::from(ctx.view.has_voted(p));
            }
        }
        votes
    });

    suite.finish();
}
