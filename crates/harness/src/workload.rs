//! Workload generation: the paper's example deals plus randomly generated
//! well-formed deals used by the sweeps and property tests.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xchain_deals::builders;
use xchain_deals::spec::{DealSpec, EscrowSpec, TransferSpec};
use xchain_sim::asset::Asset;
use xchain_sim::ids::{ChainId, DealId, PartyId};

pub use builders::{auction_spec, broker_spec, broker_spec_with, brokered_chain_spec, ring_spec};

/// Parameters for random well-formed deal generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomDealParams {
    /// Number of parties `n` (≥ 2).
    pub parties: u32,
    /// Number of extra (non-ring) transfers to add on top of the base ring.
    pub extra_transfers: u32,
    /// Fungible amount escrowed per party.
    pub amount: u64,
}

impl Default for RandomDealParams {
    fn default() -> Self {
        RandomDealParams {
            parties: 4,
            extra_transfers: 2,
            amount: 100,
        }
    }
}

/// Generates a random well-formed deal: a base ring (guaranteeing strong
/// connectivity) plus `extra_transfers` random forwarding hops that route part
/// of an escrowed amount through additional parties. Deterministic in `seed`.
pub fn random_well_formed_deal(deal: DealId, params: &RandomDealParams, seed: u64) -> DealSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.parties.max(2);
    let parties: Vec<PartyId> = (0..n).map(PartyId).collect();
    let mut escrows = Vec::new();
    let mut transfers = Vec::new();
    // Base ring: party i escrows `amount` of its own kind and sends it to i+1.
    for i in 0..n {
        let kind = format!("asset-{i}");
        let asset = Asset::fungible(kind.as_str(), params.amount);
        escrows.push(EscrowSpec {
            owner: PartyId(i),
            chain: ChainId(i),
            asset: asset.clone(),
        });
        transfers.push(TransferSpec {
            from: PartyId(i),
            to: PartyId((i + 1) % n),
            chain: ChainId(i),
            asset,
        });
    }
    // Extra hops: the ring recipient forwards a slice of what it received to a
    // random third party on the same chain.
    for _ in 0..params.extra_transfers {
        let i = rng.gen_range(0..n);
        let recipient = PartyId((i + 1) % n);
        let others: Vec<PartyId> = parties
            .iter()
            .copied()
            .filter(|p| *p != recipient)
            .collect();
        let Some(&target) = others.choose(&mut rng) else {
            continue;
        };
        let slice = rng.gen_range(1..=(params.amount / 2).max(1));
        transfers.push(TransferSpec {
            from: recipient,
            to: target,
            chain: ChainId(i),
            asset: Asset::fungible(format!("asset-{i}").as_str(), slice),
        });
    }
    DealSpec::new(deal, parties, escrows, transfers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_deals::digraph::is_well_formed;

    #[test]
    fn random_deals_are_valid_and_well_formed() {
        for seed in 0..30 {
            let params = RandomDealParams {
                parties: 2 + (seed % 6) as u32,
                extra_transfers: (seed % 4) as u32,
                amount: 50,
            };
            let spec = random_well_formed_deal(DealId(seed), &params, seed);
            spec.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(is_well_formed(&spec), "seed {seed} not well formed");
        }
    }

    #[test]
    fn random_deals_are_deterministic_in_seed() {
        let p = RandomDealParams::default();
        assert_eq!(
            random_well_formed_deal(DealId(1), &p, 9),
            random_well_formed_deal(DealId(1), &p, 9)
        );
    }
}
