//! Many-deal workload benchmark: the same specification executed across many
//! seeds, the shape of a market that clears deal after deal. Compares the
//! pre-resolved-plan path (`Deal::plan` once + `run_planned` per deal — what
//! the sweeps do) against re-resolving the plan per deal (`Deal::run`), for
//! both commit protocols.
//!
//! Run with: `cargo bench -p xchain-bench --bench workload`

use xchain_bench::Suite;
use xchain_deals::builders::{broker_spec, ring_spec};
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

const DEALS: u64 = 100;

fn main() {
    println!("workload");
    let mut suite = Suite::from_args("workload");
    for (label, spec) in [
        ("broker", broker_spec()),
        ("ring5", ring_spec(DealId(5), 5)),
    ] {
        let session = Deal::new(spec).network(NetworkModel::synchronous(100));
        let plan = session.plan().expect("spec plans");

        suite.bench(
            &format!("workload/deals{DEALS}/{label}/timelock_shared_plan"),
            5,
            || {
                let mut committed = 0u64;
                let mut deal = session.clone();
                for seed in 0..DEALS {
                    deal = deal.seed(seed);
                    let run = deal.run_planned(&plan, Protocol::timelock()).unwrap();
                    committed += u64::from(run.outcome.committed_everywhere());
                }
                assert_eq!(committed, DEALS);
                committed
            },
        );

        suite.bench(
            &format!("workload/deals{DEALS}/{label}/timelock_fresh_plan"),
            5,
            || {
                // A brand-new session per deal: the spec is cloned and the
                // plan re-resolved every time — the pre-plan cost model.
                let mut committed = 0u64;
                for seed in 0..DEALS {
                    let deal = Deal::new(session.spec().clone())
                        .network(NetworkModel::synchronous(100))
                        .seed(seed);
                    let run = deal.run(Protocol::timelock()).unwrap();
                    committed += u64::from(run.outcome.committed_everywhere());
                }
                committed
            },
        );

        suite.bench(
            &format!("workload/deals{DEALS}/{label}/cbc_shared_plan"),
            5,
            || {
                let mut committed = 0u64;
                let mut deal = session.clone();
                for seed in 0..DEALS {
                    deal = deal.seed(seed);
                    let run = deal.run_planned(&plan, Protocol::cbc()).unwrap();
                    committed += u64::from(run.outcome.committed_everywhere());
                }
                assert_eq!(committed, DEALS);
                committed
            },
        );
    }
    suite.finish();
}
