//! # xchain-deals
//!
//! A from-scratch Rust implementation of **cross-chain deals**, the
//! computational abstraction proposed in *Cross-chain Deals and Adversarial
//! Commerce* (Herlihy, Liskov, Shrira, VLDB 2019), together with the paper's
//! two commit protocols and its safety/liveness properties.
//!
//! A deal is specified as a transfer matrix ([`spec::DealSpec`], Figure 1),
//! analysed as a digraph ([`digraph`], Figure 2), and executed in five phases
//! (clearing, escrow, transfer, validation, commit) over simulated
//! blockchains. Two protocol engines are provided:
//!
//! * [`timelock::run_timelock`] — the fully decentralized timelock commit
//!   protocol for synchronous networks (Section 5), with path-signature votes
//!   and `|p| · ∆` timeouts;
//! * [`cbc::run_cbc`] — the certified-blockchain commit protocol for
//!   eventually-synchronous networks (Section 6), with validator-certified
//!   proofs of commit and abort.
//!
//! Party behaviour — compliant or deviating in a dozen ways — is configured
//! with [`party::PartyConfig`], and the paper's Properties 1–3 are executable
//! checks in [`properties`].
//!
//! ```
//! use xchain_deals::builders::broker_spec;
//! use xchain_deals::setup::world_for_spec;
//! use xchain_deals::timelock::{run_timelock, TimelockOptions};
//! use xchain_deals::properties::check_safety;
//! use xchain_sim::network::NetworkModel;
//!
//! let spec = broker_spec();
//! let mut world = world_for_spec(&spec, NetworkModel::synchronous(100), 42).unwrap();
//! let run = run_timelock(&mut world, &spec, &[], &TimelockOptions::default()).unwrap();
//! assert!(run.outcome.committed_everywhere());
//! assert!(check_safety(&spec, &[], &run.outcome).holds());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builders;
pub mod cbc;
pub mod digraph;
pub mod error;
pub mod outcome;
pub mod party;
pub mod phases;
pub mod properties;
pub mod setup;
pub mod spec;
pub mod timelock;
pub mod validation;

pub use cbc::{run_cbc, CbcOptions, CbcRun};
pub use digraph::{is_well_formed, DealDigraph};
pub use error::DealError;
pub use outcome::{ChainResolution, DealOutcome, ProtocolKind};
pub use party::{config_of, Deviation, PartyConfig};
pub use phases::{Phase, PhaseMetrics};
pub use properties::{check_conservation, check_safety, check_strong_liveness, check_weak_liveness, SafetyReport};
pub use spec::{DealSpec, EscrowSpec, TransferSpec};
pub use timelock::{run_timelock, TimelockOptions, TimelockRun};
