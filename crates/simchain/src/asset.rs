//! Assets: fungible amounts and non-fungible token sets.
//!
//! The paper's model (Section 3): "An asset may be fungible, like a sum of
//! money, or non-fungible, like a theater ticket." Each blockchain manages one
//! or more *asset kinds*; ownership of concrete asset units is tracked by the
//! ledger ([`crate::ledger::Blockchain`]).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use crate::ids::TokenId;

/// Names an asset class, e.g. `"coin"` or `"ticket"`. One blockchain may host
/// several kinds (e.g. several token contracts on the same chain).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AssetKind(pub String);

impl AssetKind {
    /// Creates a new asset kind from a name.
    pub fn new(name: impl Into<String>) -> Self {
        AssetKind(name.into())
    }

    /// The kind's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AssetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AssetKind {
    fn from(s: &str) -> Self {
        AssetKind(s.to_string())
    }
}

/// A concrete quantity of some asset kind: either a fungible amount or a set
/// of specific non-fungible tokens.
///
/// This is the unit in which deal specifications express transfers ("101
/// coins", "tickets 12 and 13").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Asset {
    /// A fungible amount of the given kind.
    Fungible {
        /// The asset class.
        kind: AssetKind,
        /// The amount, in indivisible units.
        amount: u64,
    },
    /// Specific non-fungible tokens of the given kind.
    NonFungible {
        /// The asset class.
        kind: AssetKind,
        /// The specific token instances.
        tokens: BTreeSet<TokenId>,
    },
}

impl Asset {
    /// Convenience constructor for a fungible amount.
    pub fn fungible(kind: impl Into<AssetKind>, amount: u64) -> Self {
        Asset::Fungible {
            kind: kind.into(),
            amount,
        }
    }

    /// Convenience constructor for a set of non-fungible tokens.
    pub fn non_fungible(kind: impl Into<AssetKind>, tokens: impl IntoIterator<Item = u64>) -> Self {
        Asset::NonFungible {
            kind: kind.into(),
            tokens: tokens.into_iter().map(TokenId).collect(),
        }
    }

    /// The asset's kind.
    pub fn kind(&self) -> &AssetKind {
        match self {
            Asset::Fungible { kind, .. } | Asset::NonFungible { kind, .. } => kind,
        }
    }

    /// True if the asset is empty (zero amount or no tokens).
    pub fn is_empty(&self) -> bool {
        match self {
            Asset::Fungible { amount, .. } => *amount == 0,
            Asset::NonFungible { tokens, .. } => tokens.is_empty(),
        }
    }

    /// A rough "value" used only for reporting and workload generation
    /// (fungible amount, or number of tokens).
    pub fn magnitude(&self) -> u64 {
        match self {
            Asset::Fungible { amount, .. } => *amount,
            Asset::NonFungible { tokens, .. } => tokens.len() as u64,
        }
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asset::Fungible { kind, amount } => write!(f, "{amount} {kind}"),
            Asset::NonFungible { kind, tokens } => {
                write!(f, "{kind}{{")?;
                for (i, t) in tokens.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", t.0)?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A multi-kind bag of assets, used to describe a party's holdings and to
/// compute "better off / worse off" comparisons for the safety property.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AssetBag {
    fungible: BTreeMap<AssetKind, u64>,
    non_fungible: BTreeMap<AssetKind, BTreeSet<TokenId>>,
}

impl AssetBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an asset to the bag.
    pub fn add(&mut self, asset: &Asset) {
        match asset {
            Asset::Fungible { kind, amount } => {
                *self.fungible.entry(kind.clone()).or_insert(0) += amount;
            }
            Asset::NonFungible { kind, tokens } => {
                self.non_fungible
                    .entry(kind.clone())
                    .or_default()
                    .extend(tokens.iter().copied());
            }
        }
    }

    /// Removes an asset from the bag; returns false (and leaves the bag
    /// unchanged) if the bag does not contain it.
    pub fn remove(&mut self, asset: &Asset) -> bool {
        if !self.contains(asset) {
            return false;
        }
        match asset {
            Asset::Fungible { kind, amount } => {
                let entry = self.fungible.entry(kind.clone()).or_insert(0);
                *entry -= amount;
                if *entry == 0 {
                    self.fungible.remove(kind);
                }
            }
            Asset::NonFungible { kind, tokens } => {
                if let Some(held) = self.non_fungible.get_mut(kind) {
                    for t in tokens {
                        held.remove(t);
                    }
                    if held.is_empty() {
                        self.non_fungible.remove(kind);
                    }
                }
            }
        }
        true
    }

    /// True if the bag contains at least this asset.
    pub fn contains(&self, asset: &Asset) -> bool {
        match asset {
            Asset::Fungible { kind, amount } => {
                self.fungible.get(kind).copied().unwrap_or(0) >= *amount
            }
            Asset::NonFungible { kind, tokens } => {
                let held = self.non_fungible.get(kind);
                tokens
                    .iter()
                    .all(|t| held.map(|h| h.contains(t)).unwrap_or(false))
            }
        }
    }

    /// The fungible balance of a kind.
    pub fn balance(&self, kind: &AssetKind) -> u64 {
        self.fungible.get(kind).copied().unwrap_or(0)
    }

    /// The non-fungible tokens held of a kind.
    pub fn tokens(&self, kind: &AssetKind) -> BTreeSet<TokenId> {
        self.non_fungible.get(kind).cloned().unwrap_or_default()
    }

    /// True if the bag holds nothing.
    pub fn is_empty(&self) -> bool {
        self.fungible.values().all(|v| *v == 0) && self.non_fungible.values().all(|s| s.is_empty())
    }

    /// Component-wise comparison: true if `self` holds at least everything in
    /// `other` (every fungible balance >= and every token set superset).
    /// This is the partial order used to check "no worse off".
    pub fn covers(&self, other: &AssetBag) -> bool {
        for (kind, amount) in &other.fungible {
            if self.balance(kind) < *amount {
                return false;
            }
        }
        for (kind, tokens) in &other.non_fungible {
            let held = self.tokens(kind);
            if !tokens.iter().all(|t| held.contains(t)) {
                return false;
            }
        }
        true
    }

    /// Iterates over all (kind, amount) fungible holdings.
    pub fn fungible_holdings(&self) -> impl Iterator<Item = (&AssetKind, u64)> {
        self.fungible.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates over all (kind, token set) non-fungible holdings.
    pub fn non_fungible_holdings(&self) -> impl Iterator<Item = (&AssetKind, &BTreeSet<TokenId>)> {
        self.non_fungible.iter()
    }
}

impl fmt::Display for AssetBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.fungible {
            if *v == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{v} {k}")?;
            first = false;
        }
        for (k, ts) in &self.non_fungible {
            if ts.is_empty() {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k} x{}", ts.len())?;
            first = false;
        }
        if first {
            write!(f, "(nothing)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asset_constructors_and_display() {
        let coins = Asset::fungible("coin", 101);
        let tickets = Asset::non_fungible("ticket", [12, 13]);
        assert_eq!(coins.kind().name(), "coin");
        assert_eq!(tickets.kind().name(), "ticket");
        assert_eq!(coins.to_string(), "101 coin");
        assert_eq!(tickets.to_string(), "ticket{12,13}");
        assert_eq!(coins.magnitude(), 101);
        assert_eq!(tickets.magnitude(), 2);
        assert!(!coins.is_empty());
        assert!(Asset::fungible("coin", 0).is_empty());
        assert!(Asset::non_fungible("ticket", []).is_empty());
    }

    #[test]
    fn bag_add_remove_contains() {
        let mut bag = AssetBag::new();
        bag.add(&Asset::fungible("coin", 100));
        bag.add(&Asset::fungible("coin", 1));
        bag.add(&Asset::non_fungible("ticket", [7]));
        assert_eq!(bag.balance(&"coin".into()), 101);
        assert!(bag.contains(&Asset::fungible("coin", 101)));
        assert!(!bag.contains(&Asset::fungible("coin", 102)));
        assert!(bag.contains(&Asset::non_fungible("ticket", [7])));
        assert!(!bag.contains(&Asset::non_fungible("ticket", [8])));

        assert!(bag.remove(&Asset::fungible("coin", 100)));
        assert_eq!(bag.balance(&"coin".into()), 1);
        assert!(!bag.remove(&Asset::fungible("coin", 100)));
        assert!(bag.remove(&Asset::non_fungible("ticket", [7])));
        assert!(!bag.contains(&Asset::non_fungible("ticket", [7])));
    }

    #[test]
    fn covers_is_a_partial_order() {
        let mut a = AssetBag::new();
        a.add(&Asset::fungible("coin", 100));
        a.add(&Asset::non_fungible("ticket", [1, 2]));
        let mut b = AssetBag::new();
        b.add(&Asset::fungible("coin", 50));
        b.add(&Asset::non_fungible("ticket", [1]));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert!(a.covers(&AssetBag::new()));
    }

    #[test]
    fn bag_display_and_emptiness() {
        let mut bag = AssetBag::new();
        assert!(bag.is_empty());
        assert_eq!(bag.to_string(), "(nothing)");
        bag.add(&Asset::fungible("coin", 5));
        bag.add(&Asset::non_fungible("ticket", [1]));
        assert!(!bag.is_empty());
        let s = bag.to_string();
        assert!(s.contains("5 coin"));
        assert!(s.contains("ticket x1"));
    }
}
