//! The certified-blockchain (CBC) commit protocol engine (Section 6).
//!
//! Parties vote to commit or abort the *entire deal* on a shared certified
//! log; escrow contracts on the asset chains are resolved by presenting
//! validator-signed proofs. Unlike the timelock protocol this works under
//! eventual synchrony: before the global stabilization time votes simply take
//! longer to be observed, and impatient parties may rescind by voting abort —
//! but the deal still either commits everywhere or aborts everywhere.

use std::collections::BTreeMap;

use xchain_bft::log::CbcLog;
use xchain_bft::proof::DealStatus;
use xchain_contracts::cbc_manager::{CbcDealInfo, CbcManager};
use xchain_sim::ids::{ChainId, ContractId, Owner, PartyId};
use xchain_sim::time::Duration;
use xchain_sim::world::World;

use crate::error::DealError;
use crate::outcome::{ChainResolution, DealOutcome, ProtocolKind};
use crate::party::{config_of, PartyConfig};
use crate::phases::{Phase, PhaseMetrics};
use crate::plan::DealPlan;
use crate::setup::advance_one_observation;
use crate::strategy::{ObservationHub, Vote};
use crate::timelock::holdings_by_party;
use crate::{setup, validation};

/// Tunable options for the CBC protocol engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbcOptions {
    /// The CBC's fault-tolerance parameter `f` (3f+1 validators, 2f+1 quorum).
    pub f: usize,
    /// How long a party that has voted commit waits before rescinding with an
    /// abort vote if the deal has not resolved (must be at least ∆ for strong
    /// liveness, Section 6).
    pub patience: Duration,
    /// If true, escrow contracts are resolved with full block-range proofs
    /// instead of validator status certificates (the expensive, unoptimized
    /// path of Section 6.2).
    pub use_block_proofs: bool,
    /// If true, independent tentative transfers are submitted concurrently.
    pub concurrent_transfers: bool,
    /// Parties whose CBC submissions the validators censor (Section 9's
    /// censorship threat). Empty for honest validators.
    pub censored_parties: Vec<PartyId>,
    /// The nominal ∆ used to normalise durations in reports.
    pub delta: Duration,
}

impl Default for CbcOptions {
    fn default() -> Self {
        CbcOptions {
            f: 1,
            patience: Duration(300),
            use_block_proofs: false,
            concurrent_transfers: false,
            censored_parties: Vec::new(),
            delta: Duration(100),
        }
    }
}

/// The result of a CBC deal execution.
#[derive(Debug)]
pub struct CbcRun {
    /// The measured outcome.
    pub outcome: DealOutcome,
    /// The CBC escrow contract installed on each involved chain.
    pub contracts: BTreeMap<ChainId, ContractId>,
    /// The certified log after the run (for post-mortem inspection).
    pub log: CbcLog,
    /// Which parties passed validation.
    pub validated: BTreeMap<PartyId, bool>,
    /// The final deal status recorded on the CBC.
    pub status: DealStatus,
}

/// The CBC protocol driver behind [`crate::Protocol::Cbc`].
pub(crate) fn drive(
    world: &mut World,
    plan: &DealPlan,
    configs: &[PartyConfig],
    opts: &CbcOptions,
) -> Result<CbcRun, DealError> {
    let spec = plan.spec();
    setup::check_parties_exist(world, spec)?;
    setup::check_chains_exist(world, spec)?;
    setup::apply_offline_windows(world, configs);

    let mut metrics = PhaseMetrics::new();
    let initial_holdings = holdings_by_party(world, spec);
    // One shared observation hub for the whole deal (see the timelock
    // engine): a single filtered ingest pass per chain, one view per party.
    let mut hub = ObservationHub::new(plan);

    // ------------------------------------------------------------------
    // Clearing phase: create the CBC, publish startDeal, install contracts.
    // ------------------------------------------------------------------
    let clearing_started = world.now();
    let gas_before = world.total_gas();
    let mut cbc = CbcLog::new(opts.f, world.seed() ^ 0xCBC);
    for p in &opts.censored_parties {
        cbc.censor(*p);
    }
    // Register validator keys on every involved chain so escrow contracts can
    // verify certificates.
    for &chain in plan.chains() {
        let chain_ref = world.chain_mut(chain).map_err(DealError::Chain)?;
        cbc.validators().register_on_chain(chain_ref);
    }
    // One party (the first that is not censored) records the start of the deal.
    let starter = spec
        .parties
        .iter()
        .copied()
        .find(|p| !opts.censored_parties.contains(p))
        .ok_or_else(|| DealError::Config("every party is censored".into()))?;
    let (_, start_hash) = cbc
        .start_deal(world.now(), starter, spec.deal, spec.parties.clone())
        .map_err(DealError::Cbc)?;
    let info = CbcDealInfo {
        deal: spec.deal,
        plist: spec.parties.clone(),
        start_hash,
        validators: cbc.initial_validators(),
    };
    let mut contracts: BTreeMap<ChainId, ContractId> = BTreeMap::new();
    for &chain in plan.chains() {
        let id = world
            .chain_mut(chain)
            .map_err(DealError::Chain)?
            .install(CbcManager::new(info.clone()));
        contracts.insert(chain, id);
    }
    metrics.add_gas(Phase::Clearing, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Clearing, world.now() - clearing_started);

    // ------------------------------------------------------------------
    // Escrow phase.
    // ------------------------------------------------------------------
    let escrow_started = world.now();
    let gas_before = world.total_gas();
    for e in plan.escrows() {
        let cfg = config_of(configs, e.owner);
        let willing = {
            let ctx = hub.ctx(world, spec, e.owner, Phase::Escrow, None);
            cfg.strategy.is_online(ctx.now) && cfg.strategy.on_escrow(&ctx)
        };
        if !willing {
            continue;
        }
        let contract = contracts[&e.chain];
        let result = world.call(
            e.chain,
            Owner::Party(e.owner),
            contract,
            |m: &mut CbcManager, ctx| m.escrow_interned(ctx, e.asset.clone()),
        );
        match result {
            Ok(()) => {}
            Err(err) if cfg.is_compliant() && !world.is_offline(e.owner, world.now()) => {
                return Err(DealError::Chain(err))
            }
            Err(_) => {}
        }
    }
    advance_one_observation(world);
    metrics.add_gas(Phase::Escrow, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Escrow, world.now() - escrow_started);

    // ------------------------------------------------------------------
    // Transfer phase.
    // ------------------------------------------------------------------
    let transfer_started = world.now();
    let gas_before = world.total_gas();
    let order = plan.transfer_order();
    for (step, idx) in order.iter().enumerate() {
        let t = &plan.transfers()[*idx];
        let cfg = config_of(configs, t.from);
        let willing = {
            let ctx = hub.ctx(world, spec, t.from, Phase::Transfer, None);
            cfg.strategy.is_online(ctx.now) && cfg.strategy.on_transfer(&ctx)
        };
        if willing {
            let contract = contracts[&t.chain];
            let _ = world.call(
                t.chain,
                Owner::Party(t.from),
                contract,
                |m: &mut CbcManager, ctx| m.transfer_interned(ctx, &t.asset, t.to),
            );
        }
        if !opts.concurrent_transfers && step + 1 < order.len() {
            advance_one_observation(world);
        }
    }
    advance_one_observation(world);
    metrics.add_gas(Phase::Transfer, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Transfer, world.now() - transfer_started);

    // ------------------------------------------------------------------
    // Validation phase.
    // ------------------------------------------------------------------
    let validation_started = world.now();
    let gas_before = world.total_gas();
    let mut validated: BTreeMap<PartyId, bool> = BTreeMap::new();
    for pp in plan.parties() {
        let p = pp.id;
        let cfg = config_of(configs, p);
        let mechanical = validation::validate_cbc_plan(world, pp, &info, &contracts);
        let ok = {
            let ctx = hub.ctx(world, spec, p, Phase::Validation, Some(mechanical));
            cfg.strategy.on_validate(&ctx)
        };
        validated.insert(p, ok);
    }
    advance_one_observation(world);
    metrics.add_gas(Phase::Validation, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Validation, world.now() - validation_started);

    // ------------------------------------------------------------------
    // Commit phase: votes on the CBC, then proof presentation to contracts.
    // ------------------------------------------------------------------
    let commit_started = world.now();
    let gas_before = world.total_gas();

    // All parties vote in parallel (the CBC orders them).
    for &p in &spec.parties {
        let cfg = config_of(configs, p);
        if world.is_offline(p, world.now()) || !cfg.strategy.is_online(world.now()) {
            continue;
        }
        let verdict = validated.get(&p).copied().unwrap_or(false);
        let vote = {
            let ctx = hub.ctx(world, spec, p, Phase::Commit, Some(verdict));
            cfg.strategy.on_vote(&ctx)
        };
        match vote {
            Vote::Commit => {
                let _ = cbc.vote_commit(world.now(), spec.deal, start_hash, p);
            }
            Vote::Abort => {
                let _ = cbc.vote_abort(world.now(), spec.deal, start_hash, p);
            }
            Vote::Withhold => {}
        }
    }
    // The votes become observable after at most one network delay (longer
    // before GST under eventual synchrony).
    advance_one_observation(world);

    // If the deal is still undecided (some party withheld its vote), compliant
    // parties wait out their patience and then rescind by voting abort.
    let mut status = cbc
        .deal_status(spec.deal, start_hash)
        .map_err(DealError::Cbc)?;
    if matches!(status, DealStatus::Active) {
        world.advance_by(opts.patience);
        for &p in &spec.parties {
            let cfg = config_of(configs, p);
            if cfg.is_compliant()
                && !world.is_offline(p, world.now())
                && cfg.strategy.is_online(world.now())
            {
                // Keep trying compliant parties until one abort vote lands
                // (the first candidate may itself be censored by the CBC).
                if cbc
                    .vote_abort(world.now(), spec.deal, start_hash, p)
                    .is_ok()
                {
                    break;
                }
            }
        }
        status = cbc
            .deal_status(spec.deal, start_hash)
            .map_err(DealError::Cbc)?;
    }

    // Proof presentation: for each chain, an online party presents the proof
    // of the decisive outcome; presentations happen in parallel (≤ ∆).
    if !matches!(status, DealStatus::Active) {
        let epoch_infos = cbc.epoch_infos().to_vec();
        for (&chain, &contract) in &contracts {
            let Some(presenter) = setup::pick_online_party(world, spec, configs) else {
                continue;
            };
            if opts.use_block_proofs {
                let proof = cbc
                    .block_proof(spec.deal, start_hash)
                    .map_err(DealError::Cbc)?;
                let _ = world.call(
                    chain,
                    Owner::Party(presenter),
                    contract,
                    |m: &mut CbcManager, ctx| m.resolve_with_block_proof(ctx, &proof, &epoch_infos),
                );
            } else {
                let cert = cbc
                    .status_certificate(world.now(), spec.deal, start_hash)
                    .map_err(DealError::Cbc)?;
                let _ = world.call(
                    chain,
                    Owner::Party(presenter),
                    contract,
                    |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &cert),
                );
            }
        }
        advance_one_observation(world);
    }
    metrics.add_gas(Phase::Commit, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Commit, world.now() - commit_started);

    // ------------------------------------------------------------------
    // Collect the outcome.
    // ------------------------------------------------------------------
    let final_holdings = holdings_by_party(world, spec);
    let mut resolutions = BTreeMap::new();
    for (&chain, &contract) in &contracts {
        let res = world
            .chain(chain)
            .ok()
            .and_then(|c| c.view(contract, |m: &CbcManager| m.resolution()).ok())
            .flatten();
        resolutions.insert(
            chain,
            match res {
                Some(xchain_contracts::escrow::EscrowResolution::Committed) => {
                    ChainResolution::Committed
                }
                Some(xchain_contracts::escrow::EscrowResolution::Aborted) => {
                    ChainResolution::Aborted
                }
                None => ChainResolution::Unresolved,
            },
        );
    }

    Ok(CbcRun {
        outcome: DealOutcome {
            protocol: ProtocolKind::Cbc,
            initial_holdings,
            final_holdings,
            resolutions,
            metrics,
            delta: opts.delta,
        },
        contracts,
        log: cbc,
        validated,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::broker_spec;
    use crate::deal::{Deal, DealRun};
    use crate::engine::Protocol;
    use crate::party::Deviation;
    use xchain_sim::asset::Asset;
    use xchain_sim::network::NetworkModel;

    fn run_broker(
        configs: &[PartyConfig],
        opts: &CbcOptions,
        network: NetworkModel,
        seed: u64,
    ) -> DealRun {
        Deal::new(broker_spec())
            .network(network)
            .parties(configs)
            .seed(seed)
            .run(Protocol::Cbc(opts.clone()))
            .unwrap()
    }

    #[test]
    fn all_compliant_deal_commits_everywhere() {
        let run = run_broker(
            &[],
            &CbcOptions::default(),
            NetworkModel::synchronous(100),
            1,
        );
        assert!(run.outcome.committed_everywhere());
        assert!(run.ext.cbc_status().unwrap().is_committed());
        assert!(run
            .world
            .holdings(Owner::Party(PartyId(2)))
            .contains(&Asset::non_fungible("ticket", [1, 2])));
        assert_eq!(
            run.world
                .holdings(Owner::Party(PartyId(1)))
                .balance(&"coin".into()),
            100
        );
    }

    #[test]
    fn withheld_vote_leads_to_abort_everywhere() {
        let configs = vec![PartyConfig::deviating(PartyId(1), Deviation::WithholdVote)];
        let run = run_broker(
            &configs,
            &CbcOptions::default(),
            NetworkModel::synchronous(100),
            2,
        );
        assert!(run.outcome.aborted_everywhere());
        assert!(run.ext.cbc_status().unwrap().is_aborted());
        // Carol's coins are refunded.
        assert_eq!(
            run.world
                .holdings(Owner::Party(PartyId(2)))
                .balance(&"coin".into()),
            101
        );
    }

    #[test]
    fn explicit_abort_vote_aborts_everywhere() {
        let configs = vec![PartyConfig::deviating(PartyId(2), Deviation::VoteAbort)];
        let run = run_broker(
            &configs,
            &CbcOptions::default(),
            NetworkModel::synchronous(100),
            3,
        );
        assert!(run.outcome.aborted_everywhere());
    }

    #[test]
    fn commits_even_before_gst_under_eventual_synchrony() {
        // Pre-GST delays are long but the CBC protocol does not rely on
        // timeouts for safety: with all parties compliant the deal commits.
        let network = NetworkModel::eventually_synchronous(1_000_000, 100, 5_000);
        let run = run_broker(&[], &CbcOptions::default(), network, 4);
        assert!(run.outcome.committed_everywhere());
    }

    #[test]
    fn block_proof_path_costs_more_gas_than_certificates() {
        let run_cert = run_broker(
            &[],
            &CbcOptions::default(),
            NetworkModel::synchronous(100),
            5,
        );
        let opts = CbcOptions {
            use_block_proofs: true,
            ..CbcOptions::default()
        };
        let run_proof = run_broker(&[], &opts, NetworkModel::synchronous(100), 5);
        let cert_sigs = run_cert
            .outcome
            .metrics
            .gas(Phase::Commit)
            .sig_verifications;
        let proof_sigs = run_proof
            .outcome
            .metrics
            .gas(Phase::Commit)
            .sig_verifications;
        assert!(
            proof_sigs > cert_sigs,
            "{proof_sigs} should exceed {cert_sigs}"
        );
        assert!(run_proof.outcome.committed_everywhere());
    }

    #[test]
    fn censorship_delays_but_does_not_steal() {
        // The CBC censors Bob: his commit vote never lands, so the deal aborts
        // (liveness lost) but both escrows refund (safety preserved).
        let opts = CbcOptions {
            censored_parties: vec![PartyId(1)],
            ..CbcOptions::default()
        };
        let run = run_broker(&[], &opts, NetworkModel::synchronous(100), 6);
        assert!(run.outcome.aborted_everywhere());
        assert!(run
            .world
            .holdings(Owner::Party(PartyId(1)))
            .contains(&Asset::non_fungible("ticket", [1, 2])));
        assert_eq!(
            run.world
                .holdings(Owner::Party(PartyId(2)))
                .balance(&"coin".into()),
            101
        );
    }

    #[test]
    fn commit_duration_is_constant_in_party_count() {
        // Figure 7: the CBC commit phase is O(1)·∆ — votes in parallel plus a
        // constant number of observation delays — regardless of n.
        use crate::builders::ring_spec;
        use xchain_sim::ids::DealId;
        let mut durations = Vec::new();
        for n in [3u32, 6, 9] {
            let run = Deal::new(ring_spec(DealId(n as u64), n))
                .network(NetworkModel::synchronous(100))
                .seed(7)
                .run(Protocol::cbc())
                .unwrap();
            assert!(run.outcome.committed_everywhere());
            durations.push(
                run.outcome
                    .metrics
                    .duration(Phase::Commit)
                    .in_units_of(Duration(100)),
            );
        }
        for d in &durations {
            assert!(
                *d <= 3.0 + 1e-9,
                "CBC commit should be O(1) deltas, got {d}"
            );
        }
    }
}
