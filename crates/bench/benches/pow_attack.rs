//! Criterion benchmark for the Section 6.2 proof-of-work private-abort attack
//! simulation, across attacker hash power and confirmation depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xchain_bft::pow::{attack_success_rate, PowAttackParams};

fn bench_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow_attack");
    group.sample_size(10);
    for (alpha, k) in [(0.25f64, 3u64), (0.25, 6), (0.45, 6)] {
        let id = format!("alpha{:.2}_k{}", alpha, k);
        group.bench_with_input(BenchmarkId::from_parameter(id), &(alpha, k), |b, &(alpha, k)| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                attack_success_rate(
                    &PowAttackParams { alpha, confirmations: k, max_blocks: 200 },
                    200,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pow);
criterion_main!(benches);
