//! Adversarial commerce with the open adversary API: the same broker deal is
//! executed against built-in strategies (the classic deviations plus the
//! sore-loser, coalition and rational-defector attacks) *and* against a
//! custom strategy defined right here in user code — no core edits required.
//! Compliant parties are never left worse off (Property 1) and never have
//! assets locked up forever (Property 2), under both commit protocols.
//!
//! Run with: `cargo run -p xchain-harness --example adversarial`

use std::sync::Arc;

use xchain_deals::party::PartyConfig;
use xchain_deals::properties::{check_safety, check_weak_liveness};
use xchain_deals::strategy::{strategies, ObservationCtx, Strategy, Vote};
use xchain_deals::{Deal, Protocol};
use xchain_harness::workload::broker_spec;
use xchain_sim::ids::PartyId;
use xchain_sim::network::NetworkModel;

/// A user-defined adversary: votes commit only after it has *observed* every
/// other party's commit vote land on-chain — it free-rides on everyone
/// else's willingness to be first. The decision is adaptive through the
/// cursor-fed view: the timelock engine polls parties in `plist` order at
/// the start of the commit phase, so by the time a *later* party is asked,
/// the earlier parties' votes are already on-chain and visible. Carol is
/// last in the broker deal, so her timelock run commits; under the CBC,
/// where all votes are cast simultaneously on the shared log (never
/// observable first), she withholds forever and the deal aborts.
///
/// Nothing here touches the core crates: implementing [`Strategy`] is the
/// whole extension surface.
struct VoteLast;

impl Strategy for VoteLast {
    fn name(&self) -> String {
        "vote-last".into()
    }

    fn on_vote(&self, ctx: &ObservationCtx<'_>) -> Vote {
        let everyone_else_voted = ctx
            .spec
            .parties
            .iter()
            .filter(|&&p| p != ctx.party)
            .all(|&p| ctx.view.has_voted(p));
        if everyone_else_voted && ctx.validated.unwrap_or(true) {
            Vote::Commit
        } else {
            Vote::Withhold
        }
    }

    // It still forwards what it observes: withholding its own vote is the
    // only liberty it takes.
    fn on_forward(&self, ctx: &ObservationCtx<'_>) -> bool {
        ctx.validated.unwrap_or(true)
    }
}

fn main() {
    let spec = broker_spec();
    let alice = PartyId(0);
    let bob = PartyId(1);
    let carol = PartyId(2);
    let coalition = strategies::coalition([alice, bob]);
    let scenarios: Vec<(&str, Vec<PartyConfig>)> = vec![
        ("everyone compliant", vec![]),
        (
            "Bob never escrows his tickets",
            vec![PartyConfig::with_strategy(bob, strategies::refuse_escrow())],
        ),
        (
            "Carol withholds her commit vote",
            vec![PartyConfig::with_strategy(
                carol,
                strategies::withhold_vote(),
            )],
        ),
        (
            "Bob plays the sore loser (escrows, then walks once everyone is locked in)",
            vec![PartyConfig::with_strategy(bob, strategies::sore_loser())],
        ),
        (
            "Alice and Bob collude as one coalition",
            vec![
                PartyConfig::with_strategy(alice, coalition.clone()),
                PartyConfig::with_strategy(bob, coalition),
            ],
        ),
        (
            "Carol is a rational defector who finds tickets nearly worthless",
            vec![PartyConfig::with_strategy(
                carol,
                strategies::rational_defector(1),
            )],
        ),
        (
            "Carol runs the custom vote-last strategy defined in this example",
            vec![PartyConfig::with_strategy(carol, Arc::new(VoteLast))],
        ),
    ];

    for (label, configs) in scenarios {
        let deal = Deal::new(spec.clone())
            .network(NetworkModel::synchronous(100))
            .parties(&configs)
            .seed(11);
        println!("scenario: {label}");
        for protocol in [Protocol::timelock(), Protocol::cbc()] {
            let run = deal.run(&protocol).unwrap();
            println!(
                "  {:>8}: committed={} aborted={} safety={} weak-liveness={}",
                run.outcome.protocol,
                run.outcome.committed_everywhere(),
                run.outcome.aborted_everywhere(),
                check_safety(deal.spec(), &configs, &run.outcome).holds(),
                check_weak_liveness(deal.spec(), &configs, &run.outcome),
            );
        }
    }
}
