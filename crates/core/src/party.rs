//! Party identity and behaviour configuration.
//!
//! The paper classifies parties only as *compliant* (they follow the protocol)
//! or *deviating* (they do not, whether rationally or not), and deliberately
//! makes no assumption about how many parties deviate or how. Behaviour is
//! therefore an open [`Strategy`] trait (see [`crate::strategy`]): a
//! [`PartyConfig`] pairs a party with the strategy that answers its protocol
//! decisions, and new adversaries are user code, not core edits.
//!
//! The [`Deviation`] enum survives as the *description* of the classic
//! failure and attack modes the paper discusses — crashing or walking away at
//! any phase, refusing to escrow or transfer, withholding or never forwarding
//! votes, voting abort, claiming dissatisfaction at validation, and being
//! driven offline during the commit window. [`PartyConfig::deviating`] turns
//! a description into its built-in strategy, so legacy callers migrate
//! mechanically (see the MIGRATION table in CHANGES.md).

use std::fmt;
use std::sync::Arc;

use xchain_sim::ids::PartyId;
use xchain_sim::time::Time;

use crate::phases::Phase;
use crate::strategy::{strategies, Strategy};

/// How a party deviates from the protocol, if at all: the catalog of classic
/// behaviours, each realized by a built-in [`Strategy`]
/// (`strategies::from_deviation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deviation {
    /// Follows the protocol exactly.
    None,
    /// Stops participating entirely after completing the given phase
    /// (crash / walk-away).
    CrashAfter(Phase),
    /// Never escrows its outgoing assets (joins the deal, then reneges).
    RefuseEscrow,
    /// Escrows but never performs its tentative transfers.
    SkipTransfers,
    /// Performs every phase but never sends a commit vote.
    WithholdVote,
    /// Timelock only: sends its own commit votes but never forwards other
    /// parties' votes (free-rides on the forwarding work of others).
    NeverForward,
    /// CBC only: votes to abort during the commit phase even though
    /// validation succeeded.
    VoteAbort,
    /// Declares its incoming assets unsatisfactory during validation and
    /// therefore never votes to commit.
    RejectValidation,
    /// Is offline (crashed or under denial of service) during `[from, until)`;
    /// otherwise behaves like a compliant party. Going offline at the wrong
    /// moment is a deviation: the paper notes such parties can miss the
    /// window in which they must claim assets or forward votes.
    OfflineDuring {
        /// Start of the outage.
        from: Time,
        /// End of the outage (exclusive).
        until: Time,
    },
}

/// The behaviour configuration of one party in a deal execution: the party
/// plus the [`Strategy`] that makes its decisions. Cloning shares the
/// strategy (an `Arc`), which is what a colluding coalition wants; per-run
/// state isolation is provided by [`fresh_configs`].
#[derive(Clone)]
pub struct PartyConfig {
    /// The party.
    pub id: PartyId,
    /// The behaviour driving it.
    pub strategy: Arc<dyn Strategy>,
}

impl fmt::Debug for PartyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartyConfig")
            .field("id", &self.id)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl PartyConfig {
    /// A compliant party.
    pub fn compliant(id: PartyId) -> Self {
        PartyConfig {
            id,
            strategy: strategies::compliant(),
        }
    }

    /// A party following one of the classic deviation behaviours (the legacy
    /// entry point; equivalent to `with_strategy(id,
    /// strategies::from_deviation(deviation))`).
    pub fn deviating(id: PartyId, deviation: Deviation) -> Self {
        PartyConfig {
            id,
            strategy: strategies::from_deviation(deviation),
        }
    }

    /// A party driven by an arbitrary strategy — the open adversary API.
    pub fn with_strategy(id: PartyId, strategy: Arc<dyn Strategy>) -> Self {
        PartyConfig { id, strategy }
    }

    /// True if the party follows the protocol exactly. Parties that go
    /// offline during the run are classified as deviating, matching the
    /// paper's treatment of parties that fail to act in time.
    pub fn is_compliant(&self) -> bool {
        self.strategy.is_compliant()
    }

    /// The offline window to register with the world, if the strategy models
    /// one.
    pub fn offline_window(&self) -> Option<(Time, Time)> {
        self.strategy.offline_window()
    }
}

/// Looks up a party's configuration, defaulting to compliant when absent.
pub fn config_of(configs: &[PartyConfig], id: PartyId) -> PartyConfig {
    configs
        .iter()
        .find(|c| c.id == id)
        .cloned()
        .unwrap_or_else(|| PartyConfig::compliant(id))
}

/// Clones a configuration set for one deal execution, giving stateful
/// strategies a clean interior state (via [`Strategy::fresh`]) while
/// preserving sharing: configs that held the *same* `Arc` — a coalition —
/// receive the same fresh instance. Stateless strategies are shared as-is.
/// [`crate::deal::Deal::run`] calls this before every execution, so repeated
/// runs of one session and concurrent sweep cells never see each other's
/// strategy state.
pub fn fresh_configs(configs: &[PartyConfig]) -> Vec<PartyConfig> {
    let mut replaced: Vec<(*const (), Arc<dyn Strategy>)> = Vec::new();
    configs
        .iter()
        .map(|c| {
            let key = Arc::as_ptr(&c.strategy) as *const ();
            let strategy = match replaced.iter().find(|(k, _)| *k == key) {
                Some((_, fresh)) => fresh.clone(),
                None => {
                    let fresh = c.strategy.fresh().unwrap_or_else(|| c.strategy.clone());
                    replaced.push((key, fresh.clone()));
                    fresh
                }
            };
            PartyConfig { id: c.id, strategy }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{DealView, ObservationCtx, Vote};

    #[test]
    fn compliant_and_deviating_classification() {
        let c = PartyConfig::compliant(PartyId(0));
        assert!(c.is_compliant());
        assert_eq!(c.offline_window(), None);
        let d = PartyConfig::deviating(PartyId(1), Deviation::WithholdVote);
        assert!(!d.is_compliant());
        let off = PartyConfig::deviating(
            PartyId(2),
            Deviation::OfflineDuring {
                from: Time(5),
                until: Time(10),
            },
        );
        assert!(!off.is_compliant());
        assert_eq!(off.offline_window(), Some((Time(5), Time(10))));
    }

    #[test]
    fn config_lookup_defaults_to_compliant() {
        let configs = vec![PartyConfig::deviating(PartyId(1), Deviation::WithholdVote)];
        assert!(config_of(&configs, PartyId(0)).is_compliant());
        assert!(!config_of(&configs, PartyId(1)).is_compliant());
    }

    #[test]
    fn fresh_configs_preserves_sharing_and_resets_state() {
        use crate::strategy::strategies;
        let shared = strategies::coalition([PartyId(0), PartyId(1)]);
        let solo = strategies::sore_loser();
        let configs = vec![
            PartyConfig::with_strategy(PartyId(0), shared.clone()),
            PartyConfig::with_strategy(PartyId(1), shared),
            PartyConfig::with_strategy(PartyId(2), solo),
        ];
        let fresh = fresh_configs(&configs);
        // The two coalition members still share one (new) instance …
        assert!(Arc::ptr_eq(&fresh[0].strategy, &fresh[1].strategy));
        // … which is not the prototype.
        assert!(!Arc::ptr_eq(&fresh[0].strategy, &configs[0].strategy));
        // Stateless strategies are shared as-is.
        assert!(Arc::ptr_eq(&fresh[2].strategy, &configs[2].strategy));
    }

    #[test]
    fn deviating_config_answers_through_its_strategy() {
        let spec = crate::builders::broker_spec();
        let view = DealView::default();
        let ctx = ObservationCtx {
            party: PartyId(0),
            phase: Phase::Commit,
            now: Time(0),
            spec: &spec,
            view: &view,
            validated: Some(true),
        };
        let c = PartyConfig::deviating(PartyId(0), Deviation::RefuseEscrow);
        assert!(!c.strategy.on_escrow(&ctx));
        let c = PartyConfig::deviating(PartyId(0), Deviation::VoteAbort);
        assert_eq!(c.strategy.on_vote(&ctx), Vote::Abort);
        let c = PartyConfig::deviating(PartyId(0), Deviation::CrashAfter(Phase::Escrow));
        assert!(c.strategy.on_escrow(&ctx));
        assert!(!c.strategy.on_transfer(&ctx));
    }
}
