//! Integration tests over the experiment harness: the regenerated tables must
//! exhibit the qualitative shapes the paper reports.

use xchain_harness::experiments::{
    crossover_experiment, fig3_escrow_costs, fig4_gas, fig7_delays, liveness_experiment,
    protocol_matrix_experiment, swap_baseline_experiment,
};

#[test]
fn fig4_commit_costs_scale_as_the_paper_says() {
    let (rows, table) = fig4_gas(&[3, 6, 9], 2);
    assert!(!table.render().is_empty());
    let tl: Vec<_> = rows.iter().filter(|r| r.protocol == "timelock").collect();
    let cbc: Vec<_> = rows.iter().filter(|r| r.protocol == "CBC").collect();
    // Timelock: per-asset signature verifications grow with n (towards n^2).
    let tl_per_asset: Vec<f64> = tl
        .iter()
        .map(|r| r.commit_sigs as f64 / r.m as f64)
        .collect();
    assert!(
        tl_per_asset.windows(2).all(|w| w[1] > w[0]),
        "{tl_per_asset:?}"
    );
    // CBC: exactly m(2f+1) signature verifications regardless of n.
    for r in &cbc {
        assert_eq!(r.commit_sigs, (r.m * (2 * r.f + 1)) as u64);
    }
    // Escrow and transfer costs match O(m) and O(t) exactly for both.
    for r in &rows {
        assert_eq!(r.escrow_writes, 4 * r.m as u64);
        assert_eq!(r.transfer_writes, 2 * r.t as u64);
        assert_eq!(r.validation_gas, 0);
    }
}

#[test]
fn fig7_delays_match_the_paper_shape() {
    let (rows, _) = fig7_delays(&[3, 7]);
    // Sequential transfers cost more than concurrent ones.
    let seq = rows
        .iter()
        .find(|r| r.n == 7 && r.scenario.contains("timelock / sequential"))
        .unwrap();
    let conc = rows
        .iter()
        .find(|r| r.n == 7 && r.scenario.contains("timelock / concurrent"))
        .unwrap();
    assert!(seq.transfer > conc.transfer);
    // Forwarded timelock commit grows with n; CBC commit stays O(1).
    let tl3 = rows
        .iter()
        .find(|r| r.n == 3 && r.scenario.contains("forwarded"))
        .unwrap();
    let tl7 = rows
        .iter()
        .find(|r| r.n == 7 && r.scenario.contains("forwarded"))
        .unwrap();
    assert!(tl7.commit > tl3.commit);
    for r in rows.iter().filter(|r| r.scenario.starts_with("CBC")) {
        assert!(r.commit <= 3.0 + 1e-9, "{r:?}");
    }
    // Escrow and validation are each about one ∆.
    for r in &rows {
        assert!(r.escrow <= 1.0 + 1e-9);
        assert!(r.validation <= 1.0 + 1e-9);
    }
}

#[test]
fn fig3_escrow_write_counts() {
    let t = fig3_escrow_costs();
    // 4 writes per escrow, 2 per tentative transfer.
    assert_eq!(t.rows[0][3], "4.0");
    assert_eq!(t.rows[1][3], "2.0");
}

#[test]
fn crossover_favours_timelock_for_small_n_and_cbc_for_large_n() {
    let t = crossover_experiment(&[3, 12], 2);
    // With f = 2 (quorum 5): at n = 3 the timelock needs at most n^2 = 9 per
    // asset (usually fewer), close to the CBC's 5; by n = 12 the timelock is
    // clearly more expensive.
    let last = t.rows.last().unwrap();
    assert_eq!(last[4], "CBC", "CBC should be cheaper at n = 12: {last:?}");
}

#[test]
fn liveness_table_reports_all_commits() {
    let t = liveness_experiment();
    for row in &t.rows {
        assert_eq!(row[2], "true", "{row:?}");
        assert_eq!(row[3], "true", "{row:?}");
    }
}

#[test]
fn swap_baseline_tables_are_consistent() {
    let tables = swap_baseline_experiment();
    assert_eq!(tables.len(), 2);
    // The same two-party deal ran under all three engines.
    assert_eq!(tables[1].rows.len(), 3);
    // The commit protocols cost at least as much gas as the plain HTLC swap:
    // they buy generality (brokering, auctions) that the swap cannot express.
    let gas_of = |label: &str| -> u64 {
        tables[1]
            .rows
            .iter()
            .find(|r| r[0] == label)
            .unwrap_or_else(|| panic!("no row for {label}"))[3]
            .parse()
            .unwrap()
    };
    let swap_gas = gas_of("HTLC swap");
    assert!(gas_of("timelock") >= swap_gas);
    assert!(gas_of("CBC") >= swap_gas);
}

#[test]
fn protocol_matrix_is_safe_in_every_cell() {
    let (rows, table) = protocol_matrix_experiment();
    assert!(!table.render().is_empty());
    // Three engines on the two-party deal, two on the broker deal, over two
    // network models and five named strategy scenarios each.
    assert_eq!(rows.len(), 50);
    for (deal, engine, network, adversary, committed, safe) in &rows {
        assert!(safe, "{deal}/{engine}/{network}/{adversary}");
        if network == "synchronous" && adversary == "all compliant" {
            assert!(committed, "{deal}/{engine} under synchrony");
        }
    }
}

#[test]
fn fixed_per_party_timeouts_are_contradictory() {
    // Section 5's negative result: assigning each party one fixed timeout per
    // asset cannot work. With Bob's and Carol's votes already published, Alice
    // can wait until just before her coin-chain timeout Ac, forcing the
    // ticket-chain timeout to satisfy At >= Ac + ∆ (Carol needs ∆ to observe
    // and forward), or symmetrically wait on the ticket chain, forcing
    // Ac >= At + ∆. No pair (At, Ac) satisfies both, for any ∆ > 0.
    let delta: i64 = 100;
    let satisfiable = (0..=20 * delta).step_by(10).any(|at| {
        (0..=20 * delta)
            .step_by(10)
            .any(|ac| at >= ac + delta && ac >= at + delta)
    });
    assert!(!satisfiable);
    // The path-signature rule resolves the dilemma: the deadline depends on
    // the forwarding path length, not on the party, so a vote forwarded once
    // simply gets one extra ∆ — which is exactly what the contracts enforce
    // (exercised end-to-end by the timelock integration tests).
}

#[test]
fn timelock_protocol_is_decentralized_per_section_5_1() {
    // "There is no single blockchain that must be accessed by all compliant
    // parties": in the brokered-chain workload every non-broker party touches
    // only the chains of its own incoming and outgoing assets, which is a
    // strict subset of the deal's chains.
    use xchain_deals::builders::brokered_chain_spec;
    use xchain_deals::setup::chains_touched_by;
    use xchain_sim::ids::{DealId, PartyId};
    let spec = brokered_chain_spec(DealId(31), 6, 60);
    let all_chains = spec.chains();
    for p in 1..6u32 {
        let touched = chains_touched_by(&spec, PartyId(p));
        assert!(
            touched.len() < all_chains.len(),
            "party {p} should not need every chain: {touched:?}"
        );
    }
    // No chain is touched by every party.
    for chain in &all_chains {
        let touching_everyone = spec
            .parties
            .iter()
            .all(|p| chains_touched_by(&spec, *p).contains(chain));
        assert!(!touching_everyone, "{chain:?} is touched by every party");
    }
}
