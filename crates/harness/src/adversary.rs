//! Adversary sweeps: strategy generators for the [`crate::sweep::Sweep`]
//! adversary axis.
//!
//! The generators come in two layers. The *legacy* layer enumerates the
//! classic [`Deviation`] behaviours and deviating-party subsets, so the
//! safety experiments cover every misbehaviour the paper discusses, for both
//! protocols. The *strategy* layer speaks the open adversary API
//! ([`xchain_deals::strategy::Strategy`]): scenarios are labelled with
//! strategy names (so sweep tables and `experiments -- matrix` read
//! "sore-loser@party-1", not an enum debug print), the built-in strategies
//! reproduce each legacy deviation bit-identically, and the catalog includes
//! the adversaries only expressible under the trait — the sore-loser, the
//! colluding coalition, and the rational defector.

use std::sync::Arc;

use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::spec::DealSpec;
use xchain_deals::strategy::{strategies, Strategy};
use xchain_sim::ids::PartyId;
use xchain_sim::time::Time;

use crate::sweep::AdversaryScenario;

/// Every single-party deviation strategy exercised by the safety sweep.
pub fn all_deviations(delta: u64) -> Vec<Deviation> {
    vec![
        Deviation::RefuseEscrow,
        Deviation::SkipTransfers,
        Deviation::WithholdVote,
        Deviation::NeverForward,
        Deviation::VoteAbort,
        Deviation::RejectValidation,
        Deviation::CrashAfter(Phase::Clearing),
        Deviation::CrashAfter(Phase::Escrow),
        Deviation::CrashAfter(Phase::Transfer),
        Deviation::CrashAfter(Phase::Validation),
        Deviation::OfflineDuring {
            from: Time(0),
            until: Time(delta * 50),
        },
    ]
}

/// All configurations in which exactly one party deviates, for each strategy.
pub fn single_deviator_configs(spec: &DealSpec, delta: u64) -> Vec<Vec<PartyConfig>> {
    let mut configs = Vec::new();
    for &p in &spec.parties {
        for d in all_deviations(delta) {
            configs.push(vec![PartyConfig::deviating(p, d)]);
        }
    }
    configs
}

/// Configurations in which every party except `honest` deviates with the same
/// strategy — the paper makes no assumption about how many parties deviate, so
/// the sweep includes "everyone else is malicious" cases.
pub fn all_but_one_deviate(spec: &DealSpec, honest: PartyId, delta: u64) -> Vec<Vec<PartyConfig>> {
    all_deviations(delta)
        .into_iter()
        .map(|d| {
            spec.parties
                .iter()
                .filter(|p| **p != honest)
                .map(|p| PartyConfig::deviating(*p, d))
                .collect()
        })
        .collect()
}

// ----------------------------------------------------------------------
// The strategy layer: generators over the open adversary API.
// ----------------------------------------------------------------------

/// The built-in strategy replacing each legacy deviation, in the
/// [`all_deviations`] order. Used by the parity tests and by
/// [`single_strategist_scenarios`].
pub fn builtin_strategies(delta: u64) -> Vec<Arc<dyn Strategy>> {
    all_deviations(delta)
        .into_iter()
        .map(strategies::from_deviation)
        .collect()
}

/// Single-deviator scenarios over the built-in strategies, labelled
/// `"<strategy name>@<party>"` — the strategy-native counterpart of
/// [`single_deviator_configs`].
pub fn single_strategist_scenarios(spec: &DealSpec, delta: u64) -> Vec<AdversaryScenario> {
    let mut scenarios = Vec::new();
    for &p in &spec.parties {
        for s in builtin_strategies(delta) {
            scenarios.push((
                format!("{}@{p}", s.name()),
                vec![PartyConfig::with_strategy(p, s)],
            ));
        }
    }
    scenarios
}

/// The sore-loser attack assigned to one party: it escrows, then abandons
/// exactly when the counterparty escrows lock in.
pub fn sore_loser_scenario(party: PartyId) -> AdversaryScenario {
    let s = strategies::sore_loser();
    (
        format!("{}@{party}", s.name()),
        vec![PartyConfig::with_strategy(party, s)],
    )
}

/// A coalition of the deal's first two parties sharing a single strategy
/// value (and its interior state). `None` for one-party specs.
pub fn coalition_scenario(spec: &DealSpec) -> Option<AdversaryScenario> {
    if spec.parties.len() < 2 {
        return None;
    }
    let members = [spec.parties[0], spec.parties[1]];
    let shared = strategies::coalition(members);
    Some((
        shared.name(),
        members
            .iter()
            .map(|&m| PartyConfig::with_strategy(m, shared.clone()))
            .collect(),
    ))
}

/// A rational defector at the deal's last party, once with tokens valued too
/// low to be worth committing for and once valued generously.
pub fn rational_defector_scenarios(spec: &DealSpec) -> Vec<AdversaryScenario> {
    let Some(&last) = spec.parties.last() else {
        return Vec::new();
    };
    [1u64, 1_000]
        .into_iter()
        .map(|token_value| {
            let s = strategies::rational_defector(token_value);
            (
                format!("{}@{last}", s.name()),
                vec![PartyConfig::with_strategy(last, s)],
            )
        })
        .collect()
}

/// The adversaries only expressible under the [`Strategy`] trait, at
/// representative assignments: a sore-loser at every party in turn, one
/// coalition of the first two parties, and the two rational defectors.
pub fn novel_strategy_scenarios(spec: &DealSpec) -> Vec<AdversaryScenario> {
    let mut scenarios: Vec<AdversaryScenario> = spec
        .parties
        .iter()
        .map(|&p| sore_loser_scenario(p))
        .collect();
    scenarios.extend(coalition_scenario(spec));
    scenarios.extend(rational_defector_scenarios(spec));
    scenarios
}

/// The full strategy axis for a sweep: the all-compliant baseline, every
/// built-in strategy at every party, and the novel adversaries.
pub fn strategy_scenarios(spec: &DealSpec, delta: u64) -> Vec<AdversaryScenario> {
    let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
    scenarios.extend(single_strategist_scenarios(spec, delta));
    scenarios.extend(novel_strategy_scenarios(spec));
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_deals::builders::broker_spec;

    #[test]
    fn sweeps_cover_every_party_and_strategy() {
        let spec = broker_spec();
        let singles = single_deviator_configs(&spec, 100);
        assert_eq!(singles.len(), 3 * all_deviations(100).len());
        let majority = all_but_one_deviate(&spec, PartyId(0), 100);
        assert_eq!(majority.len(), all_deviations(100).len());
        assert!(majority.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn strategy_scenarios_are_labelled_with_strategy_names() {
        let spec = broker_spec();
        let scenarios = strategy_scenarios(&spec, 100);
        // baseline + 3 parties × 11 built-ins + (3 sore-losers + coalition +
        // 2 rational defectors)
        assert_eq!(scenarios.len(), 1 + 3 * 11 + 6);
        assert!(scenarios.iter().any(|(l, _)| l == "sore-loser@party-1"));
        assert!(scenarios
            .iter()
            .any(|(l, _)| l == "coalition(party-0+party-1)"));
        assert!(scenarios
            .iter()
            .any(|(l, _)| l == "rational-defector(token=1000)@party-2"));
        assert!(scenarios.iter().any(|(l, _)| l == "withhold-vote@party-0"));
    }

    #[test]
    fn coalition_scenario_shares_one_strategy_value() {
        let spec = broker_spec();
        let scenarios = novel_strategy_scenarios(&spec);
        let (_, coalition) = scenarios
            .iter()
            .find(|(l, _)| l.starts_with("coalition"))
            .expect("coalition scenario");
        assert_eq!(coalition.len(), 2);
        assert!(Arc::ptr_eq(&coalition[0].strategy, &coalition[1].strategy));
    }

    #[test]
    fn builtin_strategies_match_the_deviation_catalog() {
        let builtins = builtin_strategies(100);
        assert_eq!(builtins.len(), all_deviations(100).len());
        assert_eq!(builtins[0].name(), "refuse-escrow");
        assert_eq!(builtins.last().unwrap().name(), "offline-0..5000");
    }
}
