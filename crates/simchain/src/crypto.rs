//! Simulated cryptography: hashing, signatures, and the timelock protocol's
//! *path signatures*.
//!
//! The paper assumes "each party has a public key and a private key, and any
//! party's public key is known to all" (Section 3). For the reproduction we do
//! not need cryptographic strength — we need (a) contracts to be able to
//! *verify* signatures at a fixed gas cost (3000 gas per verification,
//! Section 7.1), and (b) deviating parties to be unable to forge compliant
//! parties' votes. Both are preserved by this deterministic keyed-hash scheme:
//! only the holder of a [`KeyPair`] can call [`KeyPair::sign`], and the
//! simulation only hands each party its own key pair. See DESIGN.md §1 for the
//! substitution rationale.

use std::fmt;

use crate::ids::PartyId;

/// A 64-bit hash value. All on-chain hashing in the simulator uses this type
/// (deal identifiers, startDeal hashes, HTLC hashlocks, block hashes, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash(pub u64);

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

/// A streaming FNV-1a hasher over bytes and little-endian 64-bit words,
/// finalized with a splitmix64 avalanche so that nearby inputs produce
/// well-spread outputs. Deterministic across runs and platforms.
///
/// This is the allocation-free engine behind [`hash_bytes`] and
/// [`hash_words`]: callers that used to assemble a scratch `Vec<u8>` per hash
/// (word hashing, block hashing, HTLC hashlocks, signature digests) now feed
/// the hasher directly. Feeding `write_u64(w)` is exactly equivalent to
/// feeding `write(&w.to_le_bytes())`, so streaming and buffered callers
/// produce identical hashes.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl FnvHasher {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x00000100000001b3;

    /// A hasher in its initial state.
    pub fn new() -> Self {
        FnvHasher(Self::OFFSET)
    }

    /// Feeds one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    /// Feeds a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Feeds one 64-bit word as its little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Builder-style [`FnvHasher::write_u64`], for one-liner hash chains.
    #[inline]
    #[must_use]
    pub fn chain_u64(mut self, w: u64) -> Self {
        self.write_u64(w);
        self
    }

    /// Finalizes the stream into a well-spread [`Hash`].
    #[inline]
    pub fn finish(&self) -> Hash {
        Hash(splitmix64(self.0))
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over a byte slice (see [`FnvHasher`]). Deterministic across runs.
pub fn hash_bytes(bytes: &[u8]) -> Hash {
    let mut h = FnvHasher::new();
    h.write(bytes);
    h.finish()
}

/// Hashes a sequence of 64-bit words (convenient for composing ids) without
/// materializing their byte encoding; equal to [`hash_bytes`] over the
/// words' concatenated little-endian bytes.
pub fn hash_words(words: &[u64]) -> Hash {
    let mut h = FnvHasher::new();
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// The splitmix64 finalizer; also used to derive per-party key material.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A public key. Displayed and compared by value; knowing a public key does
/// not let simulation code produce signatures (only [`KeyPair::sign`] does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PublicKey(pub u64);

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pk:{:016x}", self.0)
    }
}

/// A signing key pair. The secret component is private to this module; the
/// only way to obtain a signature is through [`KeyPair::sign`], which is the
/// structural unforgeability guarantee the protocols rely on.
#[derive(Debug, Clone)]
pub struct KeyPair {
    public: PublicKey,
    secret: u64,
}

impl KeyPair {
    /// Derives the key pair for a party from a deterministic seed. The world
    /// creates exactly one key pair per party and hands it only to that party.
    pub fn derive(party: PartyId, world_seed: u64) -> Self {
        let secret = splitmix64(world_seed ^ splitmix64(0x5eed_0000_0000_0000 ^ party.0 as u64));
        let public = PublicKey(splitmix64(secret ^ 0x7ab1_1c0d_e5a1_7000));
        KeyPair { public, secret }
    }

    /// Returns the public half of the pair.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let digest = hash_bytes(message);
        let tag = splitmix64(self.secret ^ digest.0);
        Signature {
            signer: self.public,
            tag,
        }
    }

    /// Signs a message expressed as 64-bit words.
    pub fn sign_words(&self, words: &[u64]) -> Signature {
        self.sign_digest(hash_words(words))
    }

    /// Signs a pre-computed digest. This is the streaming counterpart of
    /// [`KeyPair::sign_words`]: callers that already fed the message through a
    /// [`FnvHasher`] (certificate issuance over log records) sign the digest
    /// directly instead of materializing a words `Vec` per signature.
    pub fn sign_digest(&self, digest: Hash) -> Signature {
        let tag = splitmix64(self.secret ^ digest.0);
        Signature {
            signer: self.public,
            tag,
        }
    }
}

/// A signature over a message, attributable to a public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The claimed signer.
    pub signer: PublicKey,
    tag: u64,
}

impl Signature {
    /// Verifies the signature against a message and an expected signer.
    ///
    /// Verification recomputes the expected tag from the signer's public key.
    /// The secret is re-derived internally from the registered key material;
    /// see [`verify_with_secret_oracle`]. Contract code never calls this
    /// directly — it goes through the gas-metered
    /// [`crate::contract::CallCtx::verify_signature`].
    pub fn verify(
        &self,
        expected_signer: PublicKey,
        message: &[u8],
        oracle: &KeyDirectory,
    ) -> bool {
        if self.signer != expected_signer {
            return false;
        }
        oracle.verify(self, message)
    }
}

/// A directory mapping parties to their public keys, plus the verification
/// oracle. Every blockchain in the world holds a copy ("any party's public key
/// is known to all"). The directory stores enough material to *verify*
/// signatures but is never used by simulation code to *create* them.
#[derive(Debug, Clone, Default)]
pub struct KeyDirectory {
    entries: Vec<(PublicKey, u64)>,
    parties: Vec<(PartyId, PublicKey)>,
}

impl KeyDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a key pair's verification material and its owning party.
    pub fn register(&mut self, party: PartyId, kp: &KeyPair) {
        if !self.entries.iter().any(|(pk, _)| *pk == kp.public) {
            self.entries.push((kp.public, kp.secret));
        }
        if !self.parties.iter().any(|(p, _)| *p == party) {
            self.parties.push((party, kp.public));
        }
    }

    /// Looks up the public key registered for a party.
    pub fn public_key_of(&self, party: PartyId) -> Option<PublicKey> {
        self.parties
            .iter()
            .find(|(p, _)| *p == party)
            .map(|(_, pk)| *pk)
    }

    /// Looks up which party registered a public key.
    pub fn party_of(&self, pk: PublicKey) -> Option<PartyId> {
        self.parties.iter().find(|(_, k)| *k == pk).map(|(p, _)| *p)
    }

    /// Verifies a signature over a message. Returns false for unknown signers.
    pub fn verify(&self, sig: &Signature, message: &[u8]) -> bool {
        self.verify_digest(sig, hash_bytes(message))
    }

    /// Verifies a signature over a message expressed as 64-bit words, without
    /// materializing the byte encoding.
    pub fn verify_words(&self, sig: &Signature, words: &[u64]) -> bool {
        self.verify_digest(sig, hash_words(words))
    }

    /// The single tag check behind both message encodings.
    fn verify_digest(&self, sig: &Signature, digest: Hash) -> bool {
        let Some((_, secret)) = self.entries.iter().find(|(pk, _)| *pk == sig.signer) else {
            return false;
        };
        sig.tag == splitmix64(secret ^ digest.0)
    }

    /// Number of registered parties.
    pub fn len(&self) -> usize {
        self.parties.len()
    }

    /// True if no parties are registered.
    pub fn is_empty(&self) -> bool {
        self.parties.is_empty()
    }
}

/// A *path signature* (Section 5): a commit vote from `voter`, forwarded along
/// a chain of parties, each of which signed the (deal, voter) message in turn.
/// A contract accepts the vote only if it arrives within `|p| · ∆` of the
/// commit-phase start, where `|p|` is the number of distinct signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSignature {
    /// The party whose commit vote is being conveyed.
    pub voter: PartyId,
    /// The forwarding path: the first element is the voter's own signature,
    /// each subsequent element is the signature of a party that forwarded it.
    pub path: Vec<(PartyId, Signature)>,
}

impl PathSignature {
    /// Creates a direct (unforwarded) vote: the voter signs the message itself.
    pub fn direct(voter: PartyId, kp: &KeyPair, message: &[u64]) -> Self {
        PathSignature {
            voter,
            path: vec![(voter, kp.sign_words(message))],
        }
    }

    /// Extends the path by one forwarding hop: `forwarder` signs the same
    /// message and appends its signature.
    pub fn forwarded_by(&self, forwarder: PartyId, kp: &KeyPair, message: &[u64]) -> Self {
        let mut path = self.path.clone();
        path.push((forwarder, kp.sign_words(message)));
        PathSignature {
            voter: self.voter,
            path,
        }
    }

    /// The path length `|p|`: the number of signatures on the vote.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// True if the path carries no signatures (never produced by the protocol,
    /// but contracts must reject it).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// The parties that signed, in signing order.
    pub fn signers(&self) -> Vec<PartyId> {
        self.path.iter().map(|(p, _)| *p).collect()
    }

    /// True if all signing parties are distinct (a contract requirement,
    /// Figure 5 line 9).
    pub fn signers_unique(&self) -> bool {
        let mut seen = Vec::with_capacity(self.path.len());
        for (p, _) in &self.path {
            if seen.contains(p) {
                return false;
            }
            seen.push(*p);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir_with(parties: &[PartyId]) -> (KeyDirectory, Vec<KeyPair>) {
        let mut dir = KeyDirectory::new();
        let mut kps = Vec::new();
        for &p in parties {
            let kp = KeyPair::derive(p, 42);
            dir.register(p, &kp);
            kps.push(kp);
        }
        (dir, kps)
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash_bytes(b"alice"), hash_bytes(b"alice"));
        assert_ne!(hash_bytes(b"alice"), hash_bytes(b"alicf"));
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
    }

    #[test]
    fn streaming_hasher_matches_buffered_hashing() {
        let words = [1u64, 99, u64::MAX, 0];
        assert_eq!(hash_words(&words), hash_bytes(&words_bytes(&words)));
        let mut h = FnvHasher::new();
        h.write(&words_bytes(&words));
        assert_eq!(h.finish(), hash_words(&words));
        assert_eq!(
            FnvHasher::new().chain_u64(7).chain_u64(8).finish(),
            hash_words(&[7, 8])
        );
        assert_eq!(FnvHasher::default().finish(), hash_bytes(&[]));
    }

    #[test]
    fn sign_and_verify_roundtrip() {
        let (dir, kps) = dir_with(&[PartyId(0), PartyId(1)]);
        let sig = kps[0].sign(b"commit deal-7");
        assert!(dir.verify(&sig, b"commit deal-7"));
        assert!(!dir.verify(&sig, b"commit deal-8"));
    }

    #[test]
    fn verification_rejects_wrong_signer() {
        let (dir, kps) = dir_with(&[PartyId(0), PartyId(1)]);
        let sig = kps[0].sign(b"msg");
        assert!(!sig.verify(kps[1].public(), b"msg", &dir));
        assert!(sig.verify(kps[0].public(), b"msg", &dir));
    }

    #[test]
    fn unknown_signer_fails() {
        let (dir, _) = dir_with(&[PartyId(0)]);
        let stranger = KeyPair::derive(PartyId(9), 4242);
        let sig = stranger.sign(b"msg");
        assert!(!dir.verify(&sig, b"msg"));
    }

    #[test]
    fn directory_lookup() {
        let (dir, kps) = dir_with(&[PartyId(3), PartyId(5)]);
        assert_eq!(dir.public_key_of(PartyId(3)), Some(kps[0].public()));
        assert_eq!(dir.party_of(kps[1].public()), Some(PartyId(5)));
        assert_eq!(dir.public_key_of(PartyId(99)), None);
        assert_eq!(dir.len(), 2);
        assert!(!dir.is_empty());
    }

    #[test]
    fn path_signature_grows_by_forwarding() {
        let (dir, kps) = dir_with(&[PartyId(0), PartyId(1), PartyId(2)]);
        let msg = [7u64, 0]; // (deal id, voter)
        let direct = PathSignature::direct(PartyId(0), &kps[0], &msg);
        assert_eq!(direct.len(), 1);
        let fwd = direct.forwarded_by(PartyId(1), &kps[1], &msg);
        let fwd2 = fwd.forwarded_by(PartyId(2), &kps[2], &msg);
        assert_eq!(fwd2.len(), 3);
        assert_eq!(fwd2.voter, PartyId(0));
        assert_eq!(fwd2.signers(), vec![PartyId(0), PartyId(1), PartyId(2)]);
        assert!(fwd2.signers_unique());
        for (p, sig) in &fwd2.path {
            let pk = dir.public_key_of(*p).unwrap();
            assert!(sig.verify(pk, &words_bytes(&msg), &dir));
        }
    }

    fn words_bytes(words: &[u64]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes
    }

    #[test]
    fn duplicate_signers_detected() {
        let (_, kps) = dir_with(&[PartyId(0), PartyId(1)]);
        let msg = [1u64];
        let p = PathSignature::direct(PartyId(0), &kps[0], &msg)
            .forwarded_by(PartyId(1), &kps[1], &msg)
            .forwarded_by(PartyId(0), &kps[0], &msg);
        assert!(!p.signers_unique());
    }

    #[test]
    fn distinct_parties_have_distinct_keys() {
        let a = KeyPair::derive(PartyId(0), 1);
        let b = KeyPair::derive(PartyId(1), 1);
        let c = KeyPair::derive(PartyId(0), 2);
        assert_ne!(a.public(), b.public());
        assert_ne!(a.public(), c.public());
    }
}
