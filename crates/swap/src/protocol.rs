//! The two-party atomic swap protocol over HTLCs.
//!
//! The leader picks a secret and publishes an HTLC on its chain with timeout
//! `2∆`-ish; the follower publishes a matching HTLC locked under the same hash
//! with a shorter timeout; the leader claims the follower's asset (revealing
//! the secret), which lets the follower claim the leader's asset.

use xchain_sim::asset::Asset;
use xchain_sim::error::ChainError;
use xchain_sim::gas::GasUsage;
use xchain_sim::ids::{ChainId, Owner, PartyId};
use xchain_sim::time::Duration;
use xchain_sim::world::World;

use crate::htlc::HtlcContract;

/// A two-party swap: `leader` gives `leader_asset` (on `leader_chain`) for
/// `follower_asset` (on `follower_chain`) owned by `follower`.
#[derive(Debug, Clone)]
pub struct SwapSpec {
    /// The party that generates the secret.
    pub leader: PartyId,
    /// Its counterparty.
    pub follower: PartyId,
    /// The chain of the leader's outgoing asset.
    pub leader_chain: ChainId,
    /// The leader's outgoing asset.
    pub leader_asset: Asset,
    /// The chain of the follower's outgoing asset.
    pub follower_chain: ChainId,
    /// The follower's outgoing asset.
    pub follower_asset: Asset,
}

/// The measured result of a swap execution.
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// True if both assets changed hands.
    pub swapped: bool,
    /// Gas used across both chains.
    pub gas: GasUsage,
    /// Simulated duration of the whole swap.
    pub duration: Duration,
}

/// Runs a two-party atomic swap. If `follower_defects` is true the follower
/// never funds its side, and the leader reclaims its escrow after the timeout
/// (nobody loses assets — the HTLC analogue of the deal safety property).
pub fn run_two_party_swap(
    world: &mut World,
    spec: &SwapSpec,
    delta: Duration,
    follower_defects: bool,
) -> Result<SwapOutcome, ChainError> {
    let start = world.now();
    let gas_before = world.total_gas();
    let secret = 0xA11CE ^ world.seed();
    let hashlock = HtlcContract::hash_secret(secret);
    // Standard asymmetric timeouts: the leader's escrow lives longer than the
    // follower's so the follower always has time to claim after the reveal.
    let leader_timeout = start + delta.times(4);
    let follower_timeout = start + delta.times(2);

    let leader_htlc = world
        .chain_mut(spec.leader_chain)?
        .install(HtlcContract::new(
            spec.leader,
            spec.follower,
            hashlock,
            leader_timeout,
        ));
    let follower_htlc = world
        .chain_mut(spec.follower_chain)?
        .install(HtlcContract::new(
            spec.follower,
            spec.leader,
            hashlock,
            follower_timeout,
        ));

    // Leader funds first.
    world.call(
        spec.leader_chain,
        Owner::Party(spec.leader),
        leader_htlc,
        |h: &mut HtlcContract, ctx| h.fund(ctx, spec.leader_asset.clone()),
    )?;
    advance(world);

    if follower_defects {
        // Nothing more happens; the leader reclaims after its timeout.
        world.advance_to(leader_timeout);
        world.call(
            spec.leader_chain,
            Owner::Party(spec.leader),
            leader_htlc,
            |h: &mut HtlcContract, ctx| h.refund(ctx),
        )?;
        return Ok(SwapOutcome {
            swapped: false,
            gas: gas_before.delta_to(&world.total_gas()),
            duration: world.now() - start,
        });
    }

    // Follower funds its side after observing the leader's escrow.
    world.call(
        spec.follower_chain,
        Owner::Party(spec.follower),
        follower_htlc,
        |h: &mut HtlcContract, ctx| h.fund(ctx, spec.follower_asset.clone()),
    )?;
    advance(world);

    // Leader claims the follower's asset, revealing the secret on-chain.
    world.call(
        spec.follower_chain,
        Owner::Party(spec.leader),
        follower_htlc,
        |h: &mut HtlcContract, ctx| h.claim(ctx, secret),
    )?;
    advance(world);

    // Follower observes the revealed secret and claims the leader's asset.
    world.call(
        spec.leader_chain,
        Owner::Party(spec.follower),
        leader_htlc,
        |h: &mut HtlcContract, ctx| h.claim(ctx, secret),
    )?;

    Ok(SwapOutcome {
        swapped: true,
        gas: gas_before.delta_to(&world.total_gas()),
        duration: world.now() - start,
    })
}

fn advance(world: &mut World) {
    let now = world.now();
    let d = world.network().sample_delay(now, world.rng());
    world.advance_by(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_sim::network::NetworkModel;

    fn setup() -> (World, SwapSpec) {
        let mut world = World::with_network(5, NetworkModel::synchronous(50));
        let c0 = world.add_chain("tickets", Duration(1));
        let c1 = world.add_chain("coins", Duration(1));
        let bob = world.add_party();
        let carol = world.add_party();
        world
            .mint(c0, Owner::Party(bob), &Asset::non_fungible("ticket", [1]))
            .unwrap();
        world
            .mint(c1, Owner::Party(carol), &Asset::fungible("coin", 100))
            .unwrap();
        (
            world,
            SwapSpec {
                leader: bob,
                follower: carol,
                leader_chain: c0,
                leader_asset: Asset::non_fungible("ticket", [1]),
                follower_chain: c1,
                follower_asset: Asset::fungible("coin", 100),
            },
        )
    }

    #[test]
    fn successful_swap_moves_both_assets() {
        let (mut world, spec) = setup();
        let out = run_two_party_swap(&mut world, &spec, Duration(50), false).unwrap();
        assert!(out.swapped);
        assert!(world
            .holdings(Owner::Party(spec.follower))
            .contains(&Asset::non_fungible("ticket", [1])));
        assert_eq!(
            world
                .holdings(Owner::Party(spec.leader))
                .balance(&"coin".into()),
            100
        );
        assert!(out.gas.storage_writes > 0);
    }

    #[test]
    fn defecting_follower_costs_nobody_anything() {
        let (mut world, spec) = setup();
        let out = run_two_party_swap(&mut world, &spec, Duration(50), true).unwrap();
        assert!(!out.swapped);
        assert!(world
            .holdings(Owner::Party(spec.leader))
            .contains(&Asset::non_fungible("ticket", [1])));
        assert_eq!(
            world
                .holdings(Owner::Party(spec.follower))
                .balance(&"coin".into()),
            100
        );
    }
}
