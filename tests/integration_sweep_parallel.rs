//! Determinism of the parallel sweep executor: a fixed-seed sweep must
//! produce the *same* `SweepOutcome` — point labels, seeds, per-chain
//! resolutions, validation verdicts, and total gas — whether it runs on one
//! thread or eight, and re-running the same configuration must be
//! bit-identical. This is the contract that lets the experiments use every
//! core without giving up reproducibility.

use xchain_deals::builders::{auction_spec, broker_spec, ring_spec};
use xchain_harness::adversary::single_deviator_configs;
use xchain_harness::sweep::{standard_engines, Sweep, SweepOutcome};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

/// Builds the reference sweep: three workloads × three engines × two
/// networks × (compliant + all single-deviator) scenarios, fixed seed.
fn fixed_seed_sweep(threads: usize) -> SweepOutcome {
    Sweep::new()
        .spec("broker", broker_spec())
        .spec("ring n=3", ring_spec(DealId(3), 3))
        .spec("auction", auction_spec(DealId(4), &[30, 55]))
        .over_protocols(standard_engines(100))
        .over_networks(vec![
            ("sync".into(), NetworkModel::synchronous(100)),
            (
                "eventually sync".into(),
                NetworkModel::eventually_synchronous(300, 100, 600),
            ),
        ])
        .over_adversaries(|spec| {
            let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
            scenarios.extend(
                single_deviator_configs(spec, 100)
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (format!("deviator #{i}"), c)),
            );
            scenarios
        })
        .seed(20260729)
        .threads(threads)
        .run()
        .unwrap()
}

/// Flattens an outcome into a comparable fingerprint: every label and seed,
/// plus a debug rendering of each point's full outcome (per-chain
/// resolutions, holdings before/after, per-phase gas and durations).
fn fingerprint(outcome: &SweepOutcome) -> Vec<String> {
    outcome
        .points
        .iter()
        .map(|p| {
            format!(
                "{}|{}|{}|{}|seed={}|gas={:?}|outcome={:?}",
                p.spec,
                p.engine,
                p.network,
                p.adversary,
                p.seed,
                p.run.outcome.metrics.total_gas(),
                p.run.outcome
            )
        })
        .collect()
}

#[test]
fn parallel_sweep_is_deterministic_across_thread_counts() {
    let serial = fixed_seed_sweep(1);
    let parallel = fixed_seed_sweep(8);
    assert!(serial.points.len() > 100, "matrix should be non-trivial");
    assert_eq!(serial.skipped, parallel.skipped);
    let a = fingerprint(&serial);
    let b = fingerprint(&parallel);
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "point #{i} differs between threads(1) and threads(8)");
    }
}

#[test]
fn rerunning_the_same_seed_is_bit_identical() {
    let first = fixed_seed_sweep(8);
    let second = fixed_seed_sweep(8);
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.skipped, second.skipped);
}

#[test]
fn default_thread_count_matches_explicit_serial_run() {
    // No .threads(..) call: the sweep picks available parallelism; the
    // outcome must still match a serial run point for point.
    let auto = Sweep::new()
        .spec("broker", broker_spec())
        .over_protocols(standard_engines(100))
        .seed(5)
        .run()
        .unwrap();
    let serial = Sweep::new()
        .spec("broker", broker_spec())
        .over_protocols(standard_engines(100))
        .seed(5)
        .threads(1)
        .run()
        .unwrap();
    assert_eq!(fingerprint(&auto), fingerprint(&serial));
}
