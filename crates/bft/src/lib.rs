//! # xchain-bft
//!
//! Certified blockchain (CBC) substrates for the reproduction of *Cross-chain
//! Deals and Adversarial Commerce* (Herlihy, Liskov, Shrira, VLDB 2019).
//!
//! The CBC protocol of Section 6 replaces the classical two-phase-commit
//! coordinator with a shared, totally-ordered, certified log. This crate
//! provides two realizations:
//!
//! * [`log::CbcLog`] — a BFT-style certified log: `3f + 1` validators, blocks
//!   vouched for by `2f + 1`-signature [`certificate::Certificate`]s,
//!   validator reconfiguration, censorship modelling, and extraction of
//!   [`proof::StatusCertificate`] / [`proof::BlockProof`] evidence that escrow
//!   contracts on asset chains can check.
//! * [`pow`] — a Nakamoto-style proof-of-work chain used to reproduce the
//!   Section 6.2 discussion: PoW proofs lack finality, the private-abort-block
//!   attack, and the confirmation-depth mitigation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod certificate;
pub mod log;
pub mod pow;
pub mod proof;
pub mod validator;

pub use certificate::{CertCheck, CertFailure, Certificate};
pub use log::{CbcError, CbcLog, CbcRecord, CertifiedBlock};
pub use pow::{
    analytic_success_probability, attack_success_rate, simulate_attack_trial, Miner,
    PowAttackParams, PowAttackTrial, PowBlock, PowFork,
};
pub use proof::{BlockProof, BlockProofCheck, DealStatus, StatusCertificate};
pub use validator::{validator_party_id, ValidatorSet, ValidatorSetInfo, VALIDATOR_PARTY_OFFSET};
