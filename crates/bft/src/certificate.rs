//! Quorum certificates: the externally-checkable evidence produced by the CBC.
//!
//! A certificate over some payload carries at least `2f + 1` validator
//! signatures of that payload's hash. A certificate is *final*: unlike a
//! proof-of-work proof, it cannot be contradicted later (Section 6.2).

use xchain_sim::crypto::{hash_words, Hash, KeyDirectory, Signature};
use xchain_sim::ids::ValidatorId;

use crate::validator::{validator_party_id, ValidatorSetInfo};

/// A quorum certificate: validator signatures over a payload hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The epoch of the validator set that produced the certificate.
    pub epoch: u64,
    /// The hash of the certified payload.
    pub payload_hash: Hash,
    /// Validator signatures over the payload words.
    pub signatures: Vec<(ValidatorId, Signature)>,
}

/// The result of verifying a certificate, including how many signature
/// verifications were performed (the dominant gas cost in the CBC commit
/// phase, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertCheck {
    /// Whether the certificate is valid.
    pub valid: bool,
    /// Number of individual signature verifications performed.
    pub sig_verifications: u64,
    /// Why verification failed, if it did.
    pub failure: Option<CertFailure>,
}

/// Reasons a certificate can fail verification (Figure 6's `require` checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertFailure {
    /// A validator id appears more than once.
    DuplicateSigner,
    /// A signer is not a member of the expected validator set.
    UnknownValidator,
    /// Fewer than `2f + 1` signatures.
    InsufficientQuorum,
    /// The epoch does not match the expected validator set.
    WrongEpoch,
    /// At least one signature failed cryptographic verification.
    BadSignature,
}

impl Certificate {
    /// Builds a certificate from validator signatures over `payload`.
    pub fn new(epoch: u64, payload: &[u64], signatures: Vec<(ValidatorId, Signature)>) -> Self {
        Certificate::issue(epoch, hash_words(payload), signatures)
    }

    /// Builds a certificate from signatures over a pre-computed payload
    /// digest: the streaming issuance path used by the CBC log, which feeds
    /// each record through an `FnvHasher` instead of materializing the
    /// payload words. Equivalent to [`Certificate::new`] whenever
    /// `payload_hash == hash_words(payload)`.
    pub fn issue(
        epoch: u64,
        payload_hash: Hash,
        signatures: Vec<(ValidatorId, Signature)>,
    ) -> Self {
        Certificate {
            epoch,
            payload_hash,
            signatures,
        }
    }

    /// Number of signatures attached.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// Verifies the certificate against an expected validator set and the
    /// payload it is supposed to certify. Mirrors the checks of Figure 6:
    /// unique signers, signers are validators, at least `2f + 1` of them, and
    /// each signature verifies. Returns the number of signature verifications
    /// actually performed so callers can charge gas accordingly.
    pub fn verify(
        &self,
        expected: &ValidatorSetInfo,
        payload: &[u64],
        keys: &KeyDirectory,
    ) -> CertCheck {
        let fail = |failure, sig_verifications| CertCheck {
            valid: false,
            sig_verifications,
            failure: Some(failure),
        };
        if self.epoch != expected.epoch {
            return fail(CertFailure::WrongEpoch, 0);
        }
        if hash_words(payload) != self.payload_hash {
            return fail(CertFailure::BadSignature, 0);
        }
        // no duplicate signers (Figure 6 line 6)
        let mut seen: Vec<ValidatorId> = Vec::with_capacity(self.signatures.len());
        for (vid, _) in &self.signatures {
            if seen.contains(vid) {
                return fail(CertFailure::DuplicateSigner, 0);
            }
            seen.push(*vid);
        }
        // only validators vote (line 7)
        if !self
            .signatures
            .iter()
            .all(|(vid, _)| expected.contains(*vid))
        {
            return fail(CertFailure::UnknownValidator, 0);
        }
        // enough validators vote (line 8)
        if self.signatures.len() < expected.quorum() {
            return fail(CertFailure::InsufficientQuorum, 0);
        }
        // verify exactly 2f+1 signatures (line 9-11): verifying more than the
        // quorum buys nothing, so a careful contract stops at the quorum.
        let mut verifications = 0;
        for (vid, sig) in self.signatures.iter().take(expected.quorum()) {
            verifications += 1;
            let Some(pk) = expected.public_key_of(*vid) else {
                return fail(CertFailure::UnknownValidator, verifications);
            };
            if sig.signer != pk {
                return fail(CertFailure::BadSignature, verifications);
            }
            let party = validator_party_id(*vid);
            if keys.public_key_of(party) != Some(pk) || !keys.verify_words(sig, payload) {
                return fail(CertFailure::BadSignature, verifications);
            }
        }
        CertCheck {
            valid: true,
            sig_verifications: verifications,
            failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorSet;

    fn setup(f: usize) -> (ValidatorSet, KeyDirectory) {
        let set = ValidatorSet::new(0, f, 99);
        let mut dir = KeyDirectory::new();
        set.register_in(&mut dir);
        (set, dir)
    }

    fn certify(set: &ValidatorSet, payload: &[u64]) -> Certificate {
        Certificate::new(set.epoch(), payload, set.quorum_sign(payload).unwrap())
    }

    #[test]
    fn valid_certificate_verifies_with_quorum_cost() {
        let (set, dir) = setup(2);
        let payload = [1, 2, 3];
        let cert = certify(&set, &payload);
        let check = cert.verify(&set.info(), &payload, &dir);
        assert!(check.valid);
        assert_eq!(check.sig_verifications, 5); // 2f+1 with f = 2
        assert_eq!(check.failure, None);
    }

    #[test]
    fn wrong_payload_rejected() {
        let (set, dir) = setup(1);
        let cert = certify(&set, &[1, 2, 3]);
        let check = cert.verify(&set.info(), &[1, 2, 4], &dir);
        assert!(!check.valid);
        assert_eq!(check.failure, Some(CertFailure::BadSignature));
    }

    #[test]
    fn insufficient_quorum_rejected() {
        let (set, dir) = setup(1);
        let payload = [7];
        let mut sigs = set.quorum_sign(&payload).unwrap();
        sigs.truncate(set.quorum() - 1);
        let cert = Certificate::new(0, &payload, sigs);
        let check = cert.verify(&set.info(), &payload, &dir);
        assert!(!check.valid);
        assert_eq!(check.failure, Some(CertFailure::InsufficientQuorum));
        assert_eq!(check.sig_verifications, 0);
    }

    #[test]
    fn duplicate_signers_rejected() {
        let (set, dir) = setup(1);
        let payload = [7];
        let mut sigs = set.quorum_sign(&payload).unwrap();
        let dup = sigs[0];
        sigs.push(dup);
        let cert = Certificate::new(0, &payload, sigs);
        let check = cert.verify(&set.info(), &payload, &dir);
        assert!(!check.valid);
        assert_eq!(check.failure, Some(CertFailure::DuplicateSigner));
    }

    #[test]
    fn foreign_validator_rejected() {
        let (set, mut dir) = setup(1);
        let other = ValidatorSet::new(1, 1, 99);
        other.register_in(&mut dir);
        let payload = [7];
        let sigs = other.quorum_sign(&payload).unwrap();
        let cert = Certificate::new(0, &payload, sigs);
        let check = cert.verify(&set.info(), &payload, &dir);
        assert!(!check.valid);
        assert_eq!(check.failure, Some(CertFailure::UnknownValidator));
    }

    #[test]
    fn wrong_epoch_rejected() {
        let (set, dir) = setup(1);
        let payload = [7];
        let cert = Certificate::new(3, &payload, set.quorum_sign(&payload).unwrap());
        let check = cert.verify(&set.info(), &payload, &dir);
        assert!(!check.valid);
        assert_eq!(check.failure, Some(CertFailure::WrongEpoch));
    }

    #[test]
    fn byzantine_minority_cannot_forge() {
        let (mut set, dir) = setup(1);
        let ids = set.member_ids();
        set.set_byzantine(vec![ids[0]]);
        let forged_payload = [666];
        let sigs = set.byzantine_sign(&forged_payload);
        let cert = Certificate::new(0, &forged_payload, sigs);
        let check = cert.verify(&set.info(), &forged_payload, &dir);
        assert!(!check.valid);
        assert_eq!(check.failure, Some(CertFailure::InsufficientQuorum));
    }
}
