//! The paper's correctness properties, as executable checks over measured
//! deal outcomes.
//!
//! * **Property 1 (safety)**: for every compliant party X, if any of X's
//!   outgoing assets is transferred then all of X's incoming assets are
//!   transferred; and if any of X's incoming assets is not transferred then
//!   none of X's outgoing assets is transferred. We additionally check that a
//!   compliant party never relinquishes more than its agreed outgoing assets.
//! * **Property 2 (weak liveness)**: no asset belonging to a compliant party
//!   is locked up forever (every escrow holding a compliant party's deposit
//!   eventually resolves).
//! * **Property 3 (strong liveness)**: if all parties are compliant, all
//!   transfers happen.

use xchain_sim::asset::{Asset, AssetBag};
use xchain_sim::ids::PartyId;

use crate::outcome::{ChainResolution, DealOutcome};
use crate::party::{config_of, PartyConfig};
use crate::spec::DealSpec;

/// A violation of the safety property for one party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyViolation {
    /// The compliant party that ended up worse off.
    pub party: PartyId,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

/// The result of checking Property 1 over an outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SafetyReport {
    /// All violations found (empty means the property holds).
    pub violations: Vec<SafetyViolation>,
}

impl SafetyReport {
    /// True if no compliant party was harmed.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Everything in `a` that is not covered by `b` (component-wise saturating
/// difference over fungible balances and token sets).
pub fn bag_minus(a: &AssetBag, b: &AssetBag) -> AssetBag {
    let mut out = AssetBag::new();
    for (kind, amount) in a.fungible_holdings() {
        let other = b.balance(kind);
        if amount > other {
            out.add(&Asset::Fungible {
                kind: kind.clone(),
                amount: amount - other,
            });
        }
    }
    for (kind, tokens) in a.non_fungible_holdings() {
        let other = b.tokens(kind);
        let missing: std::collections::BTreeSet<_> = tokens.difference(&other).copied().collect();
        if !missing.is_empty() {
            out.add(&Asset::NonFungible {
                kind: kind.clone(),
                tokens: missing,
            });
        }
    }
    out
}

/// Checks Property 1 (safety) for every compliant party.
pub fn check_safety(
    spec: &DealSpec,
    configs: &[PartyConfig],
    outcome: &DealOutcome,
) -> SafetyReport {
    let mut report = SafetyReport::default();
    for &p in &spec.parties {
        if !config_of(configs, p).is_compliant() {
            continue;
        }
        let initial = outcome.initial_of(p);
        let fin = outcome.final_of(p);
        let lost = bag_minus(&initial, &fin);
        let expected_in = spec.incoming_of(p);
        let expected_out = spec.outgoing_of(p);

        // If any outgoing asset was transferred, all incoming assets must have
        // been transferred too. In holdings terms: a party that lost anything
        // must end up at least at the "full deal" floor
        // `(initial + incoming) - outgoing` (incoming may fund outgoing, so the
        // two are netted — Alice pays Bob out of Carol's coins).
        let paid_something = !lost.is_empty();
        if paid_something {
            let mut with_incoming = initial.clone();
            for (kind, amount) in expected_in.fungible_holdings() {
                with_incoming.add(&Asset::Fungible {
                    kind: kind.clone(),
                    amount,
                });
            }
            for (kind, tokens) in expected_in.non_fungible_holdings() {
                with_incoming.add(&Asset::NonFungible {
                    kind: kind.clone(),
                    tokens: tokens.clone(),
                });
            }
            let floor = bag_minus(&with_incoming, &expected_out);
            if !fin.covers(&floor) {
                report.violations.push(SafetyViolation {
                    party: p,
                    detail: format!(
                        "paid {lost} but ended with {fin}, below the full-deal floor {floor}"
                    ),
                });
            }
        }
        if !expected_out.covers(&lost) {
            report.violations.push(SafetyViolation {
                party: p,
                detail: format!(
                    "relinquished {lost}, more than the agreed outgoing assets {expected_out}"
                ),
            });
        }
    }
    report
}

/// Checks Property 2 (weak liveness): every chain where a compliant party
/// escrowed assets must have resolved (committed or aborted) by the end of
/// the run.
pub fn check_weak_liveness(
    spec: &DealSpec,
    configs: &[PartyConfig],
    outcome: &DealOutcome,
) -> bool {
    for e in &spec.escrows {
        if !config_of(configs, e.owner).is_compliant() {
            continue;
        }
        match outcome.resolutions.get(&e.chain) {
            Some(ChainResolution::Unresolved) | None => return false,
            _ => {}
        }
    }
    true
}

/// Checks Property 3 (strong liveness): meaningful only when every party is
/// compliant; in that case every party must end up with exactly
/// `initial - outgoing + incoming`.
pub fn check_strong_liveness(
    spec: &DealSpec,
    configs: &[PartyConfig],
    outcome: &DealOutcome,
) -> bool {
    let all_compliant = spec
        .parties
        .iter()
        .all(|p| config_of(configs, *p).is_compliant());
    if !all_compliant {
        return true; // vacuously true; the property only constrains all-compliant runs
    }
    for &p in &spec.parties {
        let initial = outcome.initial_of(p);
        let fin = outcome.final_of(p);
        let expected_in = spec.incoming_of(p);
        let expected_out = spec.outgoing_of(p);
        // expected final = (initial + incoming) - outgoing: incoming assets
        // may fund outgoing ones (Alice pays Bob out of Carol's coins), so
        // they are added before the outgoing assets are subtracted.
        let mut with_incoming = initial.clone();
        for (kind, amount) in expected_in.fungible_holdings() {
            with_incoming.add(&Asset::Fungible {
                kind: kind.clone(),
                amount,
            });
        }
        for (kind, tokens) in expected_in.non_fungible_holdings() {
            with_incoming.add(&Asset::NonFungible {
                kind: kind.clone(),
                tokens: tokens.clone(),
            });
        }
        let expected = bag_minus(&with_incoming, &expected_out);
        if !(fin.covers(&expected) && expected.covers(&fin)) {
            return false;
        }
    }
    true
}

/// Conservation check used by the property-based tests: the union of all
/// parties' holdings (plus anything still stuck in escrow) never changes in
/// total fungible supply per kind. Returns true if supply is conserved
/// between the initial and final snapshots for every kind mentioned in the
/// deal. Note that assets still held by an unresolved escrow contract are not
/// in any party's hands, so conservation is only required when the outcome is
/// fully resolved.
pub fn check_conservation(spec: &DealSpec, outcome: &DealOutcome) -> bool {
    if !outcome.fully_resolved() {
        return true;
    }
    let mut kinds: Vec<_> = Vec::new();
    for e in &spec.escrows {
        let k = e.asset.kind().clone();
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    }
    for kind in kinds {
        let initial: u64 = spec
            .parties
            .iter()
            .map(|p| outcome.initial_of(*p).balance(&kind))
            .sum();
        let fin: u64 = spec
            .parties
            .iter()
            .map(|p| outcome.final_of(*p).balance(&kind))
            .sum();
        if initial != fin {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::broker_spec;
    use crate::outcome::ProtocolKind;
    use crate::party::Deviation;
    use crate::phases::PhaseMetrics;
    use xchain_sim::ids::ChainId;
    use xchain_sim::time::Duration;

    fn outcome_with(
        initial: Vec<(PartyId, AssetBag)>,
        fin: Vec<(PartyId, AssetBag)>,
        resolutions: Vec<(ChainId, ChainResolution)>,
    ) -> DealOutcome {
        DealOutcome {
            protocol: ProtocolKind::Timelock,
            initial_holdings: initial.into_iter().collect(),
            final_holdings: fin.into_iter().collect(),
            resolutions: resolutions.into_iter().collect(),
            metrics: PhaseMetrics::new(),
            delta: Duration(100),
        }
    }

    fn bag(coins: u64, tickets: &[u64]) -> AssetBag {
        let mut b = AssetBag::new();
        if coins > 0 {
            b.add(&Asset::fungible("coin", coins));
        }
        if !tickets.is_empty() {
            b.add(&Asset::non_fungible("ticket", tickets.iter().copied()));
        }
        b
    }

    #[test]
    fn bag_minus_computes_losses_and_gains() {
        let a = bag(100, &[1, 2]);
        let b = bag(40, &[2]);
        let diff = bag_minus(&a, &b);
        assert_eq!(diff.balance(&"coin".into()), 60);
        assert!(diff.contains(&Asset::non_fungible("ticket", [1])));
        assert!(!diff.contains(&Asset::non_fungible("ticket", [2])));
        assert!(bag_minus(&b, &b).is_empty());
    }

    #[test]
    fn all_or_nothing_outcomes_are_safe() {
        let spec = broker_spec();
        let alice = PartyId(0);
        let bob = PartyId(1);
        let carol = PartyId(2);
        // "All" outcome.
        let all = outcome_with(
            vec![
                (alice, bag(0, &[])),
                (bob, bag(0, &[1, 2])),
                (carol, bag(101, &[])),
            ],
            vec![
                (alice, bag(1, &[])),
                (bob, bag(100, &[])),
                (carol, bag(0, &[1, 2])),
            ],
            vec![
                (ChainId(0), ChainResolution::Committed),
                (ChainId(1), ChainResolution::Committed),
            ],
        );
        assert!(check_safety(&spec, &[], &all).holds());
        assert!(check_strong_liveness(&spec, &[], &all));
        assert!(check_conservation(&spec, &all));
        // "Nothing" outcome.
        let nothing = outcome_with(
            vec![
                (alice, bag(0, &[])),
                (bob, bag(0, &[1, 2])),
                (carol, bag(101, &[])),
            ],
            vec![
                (alice, bag(0, &[])),
                (bob, bag(0, &[1, 2])),
                (carol, bag(101, &[])),
            ],
            vec![
                (ChainId(0), ChainResolution::Aborted),
                (ChainId(1), ChainResolution::Aborted),
            ],
        );
        assert!(check_safety(&spec, &[], &nothing).holds());
        assert!(!check_strong_liveness(&spec, &[], &nothing));
        assert!(check_weak_liveness(&spec, &[], &nothing));
    }

    #[test]
    fn losing_assets_without_receiving_violates_safety() {
        let spec = broker_spec();
        let bob = PartyId(1);
        // Bob loses his tickets and receives nothing.
        let bad = outcome_with(
            vec![(bob, bag(0, &[1, 2]))],
            vec![(bob, bag(0, &[]))],
            vec![
                (ChainId(0), ChainResolution::Committed),
                (ChainId(1), ChainResolution::Aborted),
            ],
        );
        let report = check_safety(&spec, &[], &bad);
        assert!(!report.holds());
        assert_eq!(report.violations[0].party, bob);
    }

    #[test]
    fn deviating_parties_are_not_protected() {
        let spec = broker_spec();
        let bob = PartyId(1);
        let configs = vec![PartyConfig::deviating(bob, Deviation::WithholdVote)];
        let bad = outcome_with(
            vec![(bob, bag(0, &[1, 2]))],
            vec![(bob, bag(0, &[]))],
            vec![
                (ChainId(0), ChainResolution::Committed),
                (ChainId(1), ChainResolution::Aborted),
            ],
        );
        assert!(check_safety(&spec, &configs, &bad).holds());
    }

    #[test]
    fn receiving_extra_from_deviating_parties_is_allowed() {
        let spec = broker_spec();
        let carol = PartyId(2);
        // Carol pays nothing (coins refunded) yet receives the tickets: the
        // paper explicitly allows this windfall outcome.
        let windfall = outcome_with(
            vec![(carol, bag(101, &[]))],
            vec![(carol, bag(101, &[1, 2]))],
            vec![
                (ChainId(0), ChainResolution::Committed),
                (ChainId(1), ChainResolution::Aborted),
            ],
        );
        assert!(check_safety(&spec, &[], &windfall).holds());
    }

    #[test]
    fn paying_more_than_agreed_violates_safety() {
        let spec = broker_spec();
        let carol = PartyId(2);
        let bad = outcome_with(
            vec![(carol, bag(150, &[]))],
            vec![(carol, bag(0, &[1, 2]))], // lost 150 coins, agreed only 101
            vec![
                (ChainId(0), ChainResolution::Committed),
                (ChainId(1), ChainResolution::Committed),
            ],
        );
        assert!(!check_safety(&spec, &[], &bad).holds());
    }

    #[test]
    fn weak_liveness_ignores_deviating_escrowers() {
        let spec = broker_spec();
        let bob = PartyId(1);
        let configs = vec![PartyConfig::deviating(bob, Deviation::WithholdVote)];
        // The ticket chain never resolves, but only Bob (deviating) escrowed there.
        let outcome = outcome_with(
            vec![],
            vec![],
            vec![
                (ChainId(0), ChainResolution::Unresolved),
                (ChainId(1), ChainResolution::Aborted),
            ],
        );
        assert!(check_weak_liveness(&spec, &configs, &outcome));
        // If Bob were compliant it would be a violation.
        assert!(!check_weak_liveness(&spec, &[], &outcome));
    }

    #[test]
    fn conservation_detects_created_coins() {
        let spec = broker_spec();
        let carol = PartyId(2);
        let bad = outcome_with(
            vec![(carol, bag(101, &[]))],
            vec![(carol, bag(300, &[]))],
            vec![
                (ChainId(0), ChainResolution::Committed),
                (ChainId(1), ChainResolution::Committed),
            ],
        );
        assert!(!check_conservation(&spec, &bad));
    }
}
