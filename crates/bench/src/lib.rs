//! Benchmark support for the workspace: a tiny, dependency-free timing
//! harness used by the `benches/` binaries (the build environment has no
//! crates.io access, so criterion is unavailable; the benches are plain
//! `harness = false` executables instead).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::hint::black_box;
use std::time::Instant;

/// Times `f` and prints a criterion-style `name ... ns/iter` line.
///
/// Runs a few warmup iterations, then measures `iters` iterations in one
/// block and reports the best of three repetitions to damp scheduler noise.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..iters.div_ceil(10).max(1) {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    println!("{name:<55} {best:>14.0} ns/iter ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut count = 0u64;
        bench("smoke", 10, || {
            count += 1;
            count
        });
        // 1 warmup + 3 × 10 measured iterations.
        assert_eq!(count, 31);
    }
}
