//! # xchain-swap
//!
//! Baseline: hashed-timelock atomic cross-chain swaps (Section 8 of the paper,
//! after Herlihy, PODC 2018). In a swap "each party transfers an asset
//! directly to another party and halts"; the paper's point is that deals are
//! strictly more expressive — the ticket-brokering example and the auction
//! cannot be expressed as swaps because Alice starts with nothing to swap.
//!
//! The crate provides a hashed-timelock contract ([`htlc::HtlcContract`]),
//! a two-party swap driver ([`protocol::run_two_party_swap`]), the
//! expressiveness check used by the comparison experiment
//! ([`limits::expressible_as_swap`]), and — most importantly — the
//! [`engine::SwapEngine`], which implements `xchain_deals`'s `DealEngine`
//! trait so the HTLC swap plugs into the same `Deal` builder and sweeps as
//! the timelock and CBC commit protocols.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod htlc;
pub mod limits;
pub mod protocol;

pub use engine::SwapEngine;
pub use htlc::{HtlcContract, HtlcState};
pub use limits::expressible_as_swap;
pub use protocol::{run_two_party_swap, SwapOutcome, SwapSpec};
