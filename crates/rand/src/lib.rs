//! A workspace-local, dependency-free stand-in for the subset of the `rand`
//! 0.8 API used by this repository (`StdRng`, `SeedableRng`, `Rng::gen_range`,
//! `Rng::gen_bool`, and `seq::SliceRandom::choose`).
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate the workspace provides this shim under the same package name.
//! The generator is a deterministic xoshiro256++ seeded via splitmix64 — more
//! than adequate for a discrete-event simulation, and stable across platforms
//! so seeded runs stay reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range. Panics if the range is
    /// empty, matching `rand`'s behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open integer range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`. Panics if `low >= high`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low + (uniform_u64_below(span, rng) as Self)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                low + (uniform_u64_below(span + 1, rng) as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Unbiased uniform sample from `[0, bound)` via rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    if bound == 0 {
        return 0;
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
    /// Deterministic and portable; not cryptographically secure (nothing in
    /// the simulation needs it to be).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(1..=50u64);
            assert!((1..=50).contains(&x));
            let y = rng.gen_range(3..9u32);
            assert!((3..9).contains(&y));
            let z = rng.gen_range(0..1usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
