//! Newtype identifiers used throughout the simulator.
//!
//! Every domain object (chain, party, contract, deal, …) is identified by a
//! small copyable id. Using dedicated newtypes rather than bare integers keeps
//! the APIs self-documenting and prevents accidentally mixing, say, a party id
//! with a chain id.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Identifies one blockchain (ledger) in the multi-chain world.
    ChainId,
    "chain-",
    u32
);

define_id!(
    /// Identifies an autonomous party (a person, organisation, or off-chain agent).
    PartyId,
    "party-",
    u32
);

define_id!(
    /// Identifies a contract instance installed on some blockchain.
    ContractId,
    "contract-",
    u64
);

define_id!(
    /// Identifies a cross-chain deal. The paper treats `D` as a nonce, so deal
    /// ids are never reused within a simulation.
    DealId,
    "deal-",
    u64
);

define_id!(
    /// Identifies a non-fungible token instance (e.g. one theatre ticket seat).
    TokenId,
    "token-",
    u64
);

define_id!(
    /// Identifies a CBC validator.
    ValidatorId,
    "validator-",
    u32
);

/// The owner of an asset on a blockchain: either an external party or a
/// contract (the paper's escrow contracts *become* the owner of escrowed
/// assets, which is exactly how double spending is prevented).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Owner {
    /// An autonomous party.
    Party(PartyId),
    /// A contract instance (typically an escrow manager).
    Contract(ContractId),
}

impl Owner {
    /// Returns the party id if this owner is a party.
    pub fn as_party(self) -> Option<PartyId> {
        match self {
            Owner::Party(p) => Some(p),
            Owner::Contract(_) => None,
        }
    }

    /// Returns the contract id if this owner is a contract.
    pub fn as_contract(self) -> Option<ContractId> {
        match self {
            Owner::Party(_) => None,
            Owner::Contract(c) => Some(c),
        }
    }

    /// True if this owner is a party (not a contract).
    pub fn is_party(self) -> bool {
        matches!(self, Owner::Party(_))
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Party(p) => write!(f, "{p}"),
            Owner::Contract(c) => write!(f, "{c}"),
        }
    }
}

impl From<PartyId> for Owner {
    fn from(p: PartyId) -> Self {
        Owner::Party(p)
    }
}

impl From<ContractId> for Owner {
    fn from(c: ContractId) -> Self {
        Owner::Contract(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_use_prefixes() {
        assert_eq!(ChainId(3).to_string(), "chain-3");
        assert_eq!(PartyId(0).to_string(), "party-0");
        assert_eq!(ContractId(7).to_string(), "contract-7");
        assert_eq!(DealId(42).to_string(), "deal-42");
        assert_eq!(TokenId(9).to_string(), "token-9");
        assert_eq!(ValidatorId(2).to_string(), "validator-2");
    }

    #[test]
    fn owner_projections() {
        let p = Owner::Party(PartyId(1));
        let c = Owner::Contract(ContractId(2));
        assert_eq!(p.as_party(), Some(PartyId(1)));
        assert_eq!(p.as_contract(), None);
        assert_eq!(c.as_contract(), Some(ContractId(2)));
        assert_eq!(c.as_party(), None);
        assert!(p.is_party());
        assert!(!c.is_party());
    }

    #[test]
    fn owner_from_impls() {
        assert_eq!(Owner::from(PartyId(5)), Owner::Party(PartyId(5)));
        assert_eq!(Owner::from(ContractId(5)), Owner::Contract(ContractId(5)));
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ChainId(1) < ChainId(2));
        assert!(PartyId(3) > PartyId(0));
        assert_eq!(DealId::from(10).raw(), 10);
    }
}
