//! The timelock commit protocol engine (Section 5).
//!
//! This module drives a complete deal execution over the simulated world:
//! clearing, escrow, tentative transfers, validation, and the vote /
//! vote-forwarding commit phase with path-signature timeouts. The engine
//! executes from a pre-resolved [`DealPlan`] (interned assets, fixed transfer
//! order, per-party chain tables), so no kind-name `String` is looked up
//! after planning. Party behaviour is controlled by each [`PartyConfig`]'s
//! [`crate::strategy::Strategy`]: at every decision point the engine consults
//! the deal's shared [`ObservationHub`] (one label-filtered log ingest pass
//! per chain, fanned out to every party's view) and asks the strategy, so
//! both the all-compliant executions of Theorem 5.3 and arbitrary adversarial
//! executions (Theorem 5.1) are produced by the same engine.

use std::collections::{BTreeMap, BTreeSet};

use xchain_contracts::timelock::{TimelockDealInfo, TimelockManager};
use xchain_sim::asset::AssetBag;
use xchain_sim::crypto::PathSignature;
use xchain_sim::gas::GasUsage;
use xchain_sim::ids::{ChainId, ContractId, Owner, PartyId};
use xchain_sim::time::{Duration, Time};
use xchain_sim::world::World;

use crate::error::DealError;
use crate::outcome::{ChainResolution, DealOutcome, ProtocolKind};
use crate::party::{config_of, PartyConfig};
use crate::phases::{Phase, PhaseMetrics};
use crate::plan::DealPlan;
use crate::setup::advance_one_observation;
use crate::spec::DealSpec;
use crate::strategy::{ObservationHub, Vote};
use crate::{setup, validation};

/// Tunable options for the timelock protocol engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelockOptions {
    /// The synchrony bound ∆ used for all timeouts.
    pub delta: Duration,
    /// If true, parties altruistically send their commit votes to every
    /// escrow contract instead of only their incoming-asset chains; the
    /// commit phase then completes in O(1)·∆ instead of O(n)·∆ (Section 7.2).
    pub altruistic_broadcast: bool,
    /// If true, independent tentative transfers are submitted concurrently
    /// (transfer phase ≈ ∆); otherwise they are performed sequentially
    /// (transfer phase ≈ t·∆), matching the two columns of Figure 7.
    pub concurrent_transfers: bool,
}

impl Default for TimelockOptions {
    fn default() -> Self {
        TimelockOptions {
            delta: Duration(100),
            altruistic_broadcast: false,
            concurrent_transfers: false,
        }
    }
}

/// A commit vote visible on some chain, tracked engine-side so other parties
/// can observe and forward it.
#[derive(Debug, Clone)]
struct PublishedVote {
    chain: ChainId,
    voter: PartyId,
    path: PathSignature,
    published_at: Time,
}

/// The result of a timelock deal execution: the measured outcome plus the
/// per-chain contract ids (useful for post-mortem inspection in tests).
#[derive(Debug)]
pub struct TimelockRun {
    /// The measured outcome.
    pub outcome: DealOutcome,
    /// The timelock escrow contract installed on each involved chain.
    pub contracts: BTreeMap<ChainId, ContractId>,
    /// Which parties passed validation (compliant parties vote only if true).
    pub validated: BTreeMap<PartyId, bool>,
}

/// The timelock protocol driver behind [`crate::Protocol::Timelock`]: installs
/// the escrow contracts, schedules every party action according to its
/// [`PartyConfig`], and returns the measured [`DealOutcome`] plus the
/// per-chain contracts and validation verdicts.
pub(crate) fn drive(
    world: &mut World,
    plan: &DealPlan,
    configs: &[PartyConfig],
    opts: &TimelockOptions,
) -> Result<TimelockRun, DealError> {
    let spec = plan.spec();
    setup::check_parties_exist(world, spec)?;
    setup::check_chains_exist(world, spec)?;
    setup::apply_offline_windows(world, configs);

    let mut metrics = PhaseMetrics::new();
    let initial_holdings = holdings_by_party(world, spec);
    // One shared hub for the whole deal: a single filtered log ingest pass
    // per chain, fanned out to every party's private view (identical to the
    // per-party DealObserver views, at a fraction of the cost).
    let mut hub = ObservationHub::new(plan);

    // ------------------------------------------------------------------
    // Clearing phase: broadcast (D, plist, t0, ∆) and install the escrow
    // contract on every involved chain.
    // ------------------------------------------------------------------
    let clearing_started = world.now();
    let gas_before = world.total_gas();
    // t0 must be far enough in the future for escrow, transfers and
    // validation to complete (Section 5: "The choice of t0 should be far
    // enough in the future to take into account the time needed to perform
    // the deal's tentative transfers").
    let t0 = world.now() + opts.delta.times(spec.n_transfers() as u64 + 6);
    let info = TimelockDealInfo {
        deal: spec.deal,
        plist: spec.parties.clone(),
        t0,
        delta: opts.delta,
    };
    let mut contracts: BTreeMap<ChainId, ContractId> = BTreeMap::new();
    for &chain in plan.chains() {
        let id = world
            .chain_mut(chain)
            .map_err(DealError::Chain)?
            .install(TimelockManager::new(info.clone()));
        contracts.insert(chain, id);
    }
    metrics.add_gas(Phase::Clearing, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Clearing, world.now() - clearing_started);

    // ------------------------------------------------------------------
    // Escrow phase: every participating party escrows its outgoing assets in
    // parallel; the phase costs at most one observation delay.
    // ------------------------------------------------------------------
    let escrow_started = world.now();
    let gas_before = world.total_gas();
    for e in plan.escrows() {
        let cfg = config_of(configs, e.owner);
        let willing = {
            let ctx = hub.ctx(world, spec, e.owner, Phase::Escrow, None);
            cfg.strategy.is_online(ctx.now) && cfg.strategy.on_escrow(&ctx)
        };
        if !willing {
            continue;
        }
        let contract = contracts[&e.chain];
        let result = world.call(
            e.chain,
            Owner::Party(e.owner),
            contract,
            |m: &mut TimelockManager, ctx| m.escrow_interned(ctx, e.asset.clone()),
        );
        match result {
            Ok(()) => {}
            Err(err) if cfg.is_compliant() && !world.is_offline(e.owner, world.now()) => {
                return Err(DealError::Chain(err))
            }
            Err(_) => {} // deviating or offline parties simply fail to escrow
        }
    }
    advance_one_observation(world);
    metrics.add_gas(Phase::Escrow, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Escrow, world.now() - escrow_started);

    // ------------------------------------------------------------------
    // Transfer phase: tentative transfers in a dependency-respecting order.
    // ------------------------------------------------------------------
    let transfer_started = world.now();
    let gas_before = world.total_gas();
    let order = plan.transfer_order();
    for (step, idx) in order.iter().enumerate() {
        let t = &plan.transfers()[*idx];
        let cfg = config_of(configs, t.from);
        let willing = {
            let ctx = hub.ctx(world, spec, t.from, Phase::Transfer, None);
            cfg.strategy.is_online(ctx.now) && cfg.strategy.on_transfer(&ctx)
        };
        if willing {
            let contract = contracts[&t.chain];
            let _ = world.call(
                t.chain,
                Owner::Party(t.from),
                contract,
                |m: &mut TimelockManager, ctx| m.transfer_interned(ctx, &t.asset, t.to),
            );
        }
        // Sequential transfers: the next sender must observe this one first.
        if !opts.concurrent_transfers && step + 1 < order.len() {
            advance_one_observation(world);
        }
    }
    advance_one_observation(world);
    metrics.add_gas(Phase::Transfer, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Transfer, world.now() - transfer_started);

    // ------------------------------------------------------------------
    // Validation phase: each party inspects its escrowed incoming assets.
    // ------------------------------------------------------------------
    let validation_started = world.now();
    let gas_before = world.total_gas();
    let mut validated: BTreeMap<PartyId, bool> = BTreeMap::new();
    for pp in plan.parties() {
        let p = pp.id;
        let cfg = config_of(configs, p);
        // The mechanical verdict (escrows present, deal info consistent)
        // rides in the context; the strategy decides whether to accept it.
        let mechanical = validation::validate_timelock_plan(world, pp, &info, &contracts);
        let ok = {
            let ctx = hub.ctx(world, spec, p, Phase::Validation, Some(mechanical));
            cfg.strategy.on_validate(&ctx)
        };
        validated.insert(p, ok);
    }
    advance_one_observation(world);
    metrics.add_gas(Phase::Validation, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Validation, world.now() - validation_started);

    // ------------------------------------------------------------------
    // Commit phase: direct votes at t0, then forwarding rounds, then timeout.
    // ------------------------------------------------------------------
    world.advance_to(t0);
    let commit_started = world.now();
    let gas_before = world.total_gas();
    let mut published: Vec<PublishedVote> = Vec::new();

    // Direct votes: each willing party votes on its incoming-asset chains
    // (or on every chain when broadcasting altruistically).
    for pp in plan.parties() {
        let p = pp.id;
        let cfg = config_of(configs, p);
        let verdict = validated.get(&p).copied().unwrap_or(false);
        let votes_commit = {
            let ctx = hub.ctx(world, spec, p, Phase::Commit, Some(verdict));
            cfg.strategy.is_online(ctx.now) && cfg.strategy.on_vote(&ctx) == Vote::Commit
        };
        if !votes_commit {
            continue;
        }
        let target_chains: &[ChainId] = if opts.altruistic_broadcast {
            plan.chains()
        } else {
            &pp.incoming_chains
        };
        let message = info.vote_message(p);
        let key = world.key_pair(p).map_err(DealError::Chain)?.clone();
        let vote = PathSignature::direct(p, &key, &message);
        for &chain in target_chains {
            let contract = contracts[&chain];
            let result = world.call(
                chain,
                Owner::Party(p),
                contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
            );
            if result.is_ok() {
                published.push(PublishedVote {
                    chain,
                    voter: p,
                    path: vote.clone(),
                    published_at: world.now(),
                });
            }
        }
    }

    // Forwarding rounds: each round, every willing party forwards the votes it
    // observes on its outgoing-asset chains to its incoming-asset chains.
    // Strong connectivity guarantees every vote reaches every contract within
    // n rounds; each round costs at most ∆. `accepted` mirrors the contracts'
    // acceptance state exactly (every vote in `published` was an `Ok` commit),
    // so the duplicate check never re-reads a contract.
    let mut accepted: BTreeSet<(ChainId, PartyId)> =
        published.iter().map(|v| (v.chain, v.voter)).collect();
    let n_rounds = spec.n_parties();
    for _round in 0..n_rounds {
        if all_resolved(world, &contracts) {
            break;
        }
        advance_one_observation(world);
        // Votes observable this round are exactly those published in earlier
        // rounds: everything pushed below carries `published_at == now` and
        // fails the `< round_now` filter, so a prefix index replaces the
        // cloned snapshot of every path signature.
        let visible = published.len();
        for pp in plan.parties() {
            let p = pp.id;
            let cfg = config_of(configs, p);
            let verdict = validated.get(&p).copied().unwrap_or(false);
            let forwards = {
                let ctx = hub.ctx(world, spec, p, Phase::Commit, Some(verdict));
                cfg.strategy.is_online(ctx.now) && cfg.strategy.on_forward(&ctx)
            };
            if !forwards {
                continue;
            }
            let outgoing = &pp.outgoing_chains;
            let incoming = &pp.incoming_chains;
            let key = world.key_pair(p).map_err(DealError::Chain)?.clone();
            let round_now = world.now();
            let observable: Vec<usize> = (0..visible)
                .filter(|&i| {
                    let v = &published[i];
                    outgoing.contains(&v.chain) && v.published_at < round_now
                })
                .collect();
            for i in observable {
                let voter = published[i].voter;
                let from_chain = published[i].chain;
                // The forwarded signature does not depend on the target
                // chain, so it is built at most once per observed vote — and
                // not at all when every target already accepted the voter
                // (the common case once a vote has circulated).
                let mut forwarded: Option<PathSignature> = None;
                for &target in incoming {
                    if target == from_chain {
                        continue;
                    }
                    // Skip if the target contract already accepted this voter.
                    if accepted.contains(&(target, voter)) {
                        continue;
                    }
                    if forwarded.is_none() {
                        let message = info.vote_message(voter);
                        forwarded = Some(published[i].path.forwarded_by(p, &key, &message));
                    }
                    let fwd = forwarded.as_ref().expect("built above");
                    let contract = contracts[&target];
                    let result = world.call(
                        target,
                        Owner::Party(p),
                        contract,
                        |m: &mut TimelockManager, ctx| m.commit(ctx, fwd),
                    );
                    if result.is_ok() {
                        accepted.insert((target, voter));
                        published.push(PublishedVote {
                            chain: target,
                            voter,
                            path: fwd.clone(),
                            published_at: world.now(),
                        });
                    }
                }
            }
        }
    }

    // Timeout: refund any unresolved escrow once t0 + N·∆ has passed.
    if !all_resolved(world, &contracts) {
        world.advance_to(info.refund_time() + Duration(1));
        for (&chain, &contract) in &contracts {
            let unresolved = world
                .chain(chain)
                .ok()
                .and_then(|c| {
                    c.view(contract, |m: &TimelockManager| m.resolution().is_none())
                        .ok()
                })
                .unwrap_or(false);
            if !unresolved {
                continue;
            }
            if let Some(caller) = setup::pick_online_party(world, spec, configs) {
                let _ = world.call(
                    chain,
                    Owner::Party(caller),
                    contract,
                    |m: &mut TimelockManager, ctx| m.claim_timeout(ctx),
                );
            }
        }
    }
    metrics.add_gas(Phase::Commit, gas_before.delta_to(&world.total_gas()));
    metrics.add_duration(Phase::Commit, world.now() - commit_started);

    // ------------------------------------------------------------------
    // Collect the outcome.
    // ------------------------------------------------------------------
    let final_holdings = holdings_by_party(world, spec);
    let mut resolutions = BTreeMap::new();
    for (&chain, &contract) in &contracts {
        let res = world
            .chain(chain)
            .ok()
            .and_then(|c| c.view(contract, |m: &TimelockManager| m.resolution()).ok())
            .flatten();
        resolutions.insert(
            chain,
            match res {
                Some(xchain_contracts::escrow::EscrowResolution::Committed) => {
                    ChainResolution::Committed
                }
                Some(xchain_contracts::escrow::EscrowResolution::Aborted) => {
                    ChainResolution::Aborted
                }
                None => ChainResolution::Unresolved,
            },
        );
    }

    Ok(TimelockRun {
        outcome: DealOutcome {
            protocol: ProtocolKind::Timelock,
            initial_holdings,
            final_holdings,
            resolutions,
            metrics,
            delta: opts.delta,
        },
        contracts,
        validated,
    })
}

/// True if every escrow contract has resolved (committed or refunded).
fn all_resolved(world: &World, contracts: &BTreeMap<ChainId, ContractId>) -> bool {
    contracts.iter().all(|(&chain, &contract)| {
        world
            .chain(chain)
            .ok()
            .and_then(|c| {
                c.view(contract, |m: &TimelockManager| m.resolution().is_some())
                    .ok()
            })
            .unwrap_or(false)
    })
}

/// Snapshot of every deal party's holdings across all chains.
pub(crate) fn holdings_by_party(world: &World, spec: &DealSpec) -> BTreeMap<PartyId, AssetBag> {
    spec.parties
        .iter()
        .map(|&p| (p, world.holdings(Owner::Party(p))))
        .collect()
}

/// The gas usage attributable to the deal so far (convenience used by tests).
pub fn total_gas(world: &World) -> GasUsage {
    world.total_gas()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::broker_spec;
    use crate::deal::{Deal, DealRun};
    use crate::engine::Protocol;
    use crate::party::Deviation;
    use xchain_sim::asset::Asset;
    use xchain_sim::network::NetworkModel;

    fn run_broker(
        configs: &[PartyConfig],
        opts: &TimelockOptions,
        seed: u64,
    ) -> (DealRun, DealSpec) {
        let spec = broker_spec();
        let run = Deal::new(spec.clone())
            .network(NetworkModel::synchronous(opts.delta.ticks()))
            .parties(configs)
            .seed(seed)
            .run(Protocol::Timelock(*opts))
            .unwrap();
        (run, spec)
    }

    #[test]
    fn all_compliant_broker_deal_commits_everywhere() {
        let (run, spec) = run_broker(&[], &TimelockOptions::default(), 1);
        assert!(run.outcome.committed_everywhere());
        // Carol ends with the tickets, Bob with 100 coins, Alice with 1 coin.
        let alice = spec.parties[0];
        let bob = spec.parties[1];
        let carol = spec.parties[2];
        assert!(run
            .world
            .holdings(Owner::Party(carol))
            .contains(&Asset::non_fungible("ticket", [1, 2])));
        assert_eq!(
            run.world
                .holdings(Owner::Party(bob))
                .balance(&"coin".into()),
            100
        );
        assert_eq!(
            run.world
                .holdings(Owner::Party(alice))
                .balance(&"coin".into()),
            1
        );
    }

    #[test]
    fn withheld_vote_times_out_and_refunds() {
        let configs = vec![PartyConfig::deviating(PartyId(2), Deviation::WithholdVote)];
        let (run, spec) = run_broker(&configs, &TimelockOptions::default(), 2);
        assert!(run.outcome.aborted_everywhere());
        let bob = spec.parties[1];
        let carol = spec.parties[2];
        // Original owners got their escrows back.
        assert!(run
            .world
            .holdings(Owner::Party(bob))
            .contains(&Asset::non_fungible("ticket", [1, 2])));
        assert_eq!(
            run.world
                .holdings(Owner::Party(carol))
                .balance(&"coin".into()),
            101
        );
    }

    #[test]
    fn crash_before_escrow_leaves_no_compliant_party_worse_off() {
        let configs = vec![PartyConfig::deviating(PartyId(1), Deviation::RefuseEscrow)];
        let (run, spec) = run_broker(&configs, &TimelockOptions::default(), 3);
        // Bob never escrowed his tickets, so validation fails for Carol/Alice
        // and the deal aborts everywhere.
        assert!(!run.outcome.committed_everywhere());
        assert!(run.outcome.fully_resolved());
        let carol = spec.parties[2];
        assert_eq!(
            run.world
                .holdings(Owner::Party(carol))
                .balance(&"coin".into()),
            101
        );
    }

    #[test]
    fn altruistic_broadcast_still_commits() {
        let opts = TimelockOptions {
            altruistic_broadcast: true,
            ..TimelockOptions::default()
        };
        let (run, _) = run_broker(&[], &opts, 4);
        assert!(run.outcome.committed_everywhere());
        // Broadcast should not need forwarding rounds: commit duration is a
        // small constant number of ∆.
        let commit = run.outcome.metrics.duration(Phase::Commit);
        assert!(commit.in_units_of(run.outcome.delta) <= 2.0 + 1e-9);
    }

    #[test]
    fn metrics_capture_gas_and_time_per_phase() {
        let (run, spec) = run_broker(&[], &TimelockOptions::default(), 5);
        let m = &run.outcome.metrics;
        // Escrow: 4 writes per escrowed asset (Figure 3).
        assert_eq!(
            m.gas(Phase::Escrow).storage_writes,
            4 * spec.n_assets() as u64
        );
        // Transfer: 2 writes per tentative transfer.
        assert_eq!(
            m.gas(Phase::Transfer).storage_writes,
            2 * spec.n_transfers() as u64
        );
        // Validation costs no gas.
        assert_eq!(m.gas(Phase::Validation).total(), 0);
        // Commit performs signature verifications.
        assert!(m.gas(Phase::Commit).sig_verifications > 0);
        assert!(m.duration(Phase::Commit) > Duration(0));
    }

    #[test]
    fn validated_map_is_carried_in_the_extension() {
        let (run, spec) = run_broker(&[], &TimelockOptions::default(), 6);
        let validated = run.ext.validated().unwrap();
        assert!(spec.parties.iter().all(|p| validated[p]));
    }

    #[test]
    fn deterministic_given_seed() {
        let (run_a, _) = run_broker(&[], &TimelockOptions::default(), 9);
        let (run_b, _) = run_broker(&[], &TimelockOptions::default(), 9);
        assert_eq!(
            run_a.outcome.metrics.total_gas(),
            run_b.outcome.metrics.total_gas()
        );
        assert_eq!(
            run_a.outcome.metrics.total_duration(),
            run_b.outcome.metrics.total_duration()
        );
    }
}
