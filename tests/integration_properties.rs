//! Property-based integration tests: randomly generated well-formed deals,
//! random deviation assignments and random network seeds must never violate
//! safety, weak liveness, or asset conservation.

use proptest::prelude::*;
use xchain_deals::cbc::{run_cbc, CbcOptions};
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::properties::{
    check_conservation, check_safety, check_strong_liveness, check_weak_liveness,
};
use xchain_deals::setup::world_for_spec;
use xchain_deals::timelock::{run_timelock, TimelockOptions};
use xchain_harness::workload::{random_well_formed_deal, RandomDealParams};
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::network::NetworkModel;

fn deviation_strategy() -> impl Strategy<Value = Deviation> {
    prop_oneof![
        Just(Deviation::None),
        Just(Deviation::RefuseEscrow),
        Just(Deviation::SkipTransfers),
        Just(Deviation::WithholdVote),
        Just(Deviation::NeverForward),
        Just(Deviation::VoteAbort),
        Just(Deviation::RejectValidation),
        Just(Deviation::CrashAfter(Phase::Escrow)),
        Just(Deviation::CrashAfter(Phase::Transfer)),
        Just(Deviation::CrashAfter(Phase::Validation)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn timelock_safety_holds_for_random_deals_and_deviations(
        parties in 2u32..6,
        extra in 0u32..3,
        seed in 0u64..10_000,
        deviations in proptest::collection::vec(deviation_strategy(), 0..6),
    ) {
        let spec = random_well_formed_deal(
            DealId(seed),
            &RandomDealParams { parties, extra_transfers: extra, amount: 60 },
            seed,
        );
        let configs: Vec<PartyConfig> = deviations
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u32) < parties)
            .map(|(i, d)| PartyConfig { id: PartyId(i as u32), deviation: *d })
            .collect();
        let mut world = world_for_spec(&spec, NetworkModel::synchronous(100), seed).unwrap();
        let run = run_timelock(&mut world, &spec, &configs, &TimelockOptions::default()).unwrap();
        let report = check_safety(&spec, &configs, &run.outcome);
        prop_assert!(report.holds(), "violations: {:?}", report.violations);
        prop_assert!(check_weak_liveness(&spec, &configs, &run.outcome));
        prop_assert!(check_conservation(&spec, &run.outcome));
    }

    #[test]
    fn cbc_safety_and_atomicity_hold_for_random_deals_and_deviations(
        parties in 2u32..6,
        extra in 0u32..3,
        seed in 0u64..10_000,
        f in 1usize..4,
        deviations in proptest::collection::vec(deviation_strategy(), 0..6),
    ) {
        let spec = random_well_formed_deal(
            DealId(seed),
            &RandomDealParams { parties, extra_transfers: extra, amount: 60 },
            seed,
        );
        let configs: Vec<PartyConfig> = deviations
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u32) < parties)
            .map(|(i, d)| PartyConfig { id: PartyId(i as u32), deviation: *d })
            .collect();
        let mut world = world_for_spec(&spec, NetworkModel::synchronous(100), seed).unwrap();
        let run = run_cbc(&mut world, &spec, &configs, &CbcOptions { f, ..CbcOptions::default() }).unwrap();
        prop_assert!(check_safety(&spec, &configs, &run.outcome).holds());
        prop_assert!(check_weak_liveness(&spec, &configs, &run.outcome));
        prop_assert!(check_conservation(&spec, &run.outcome));
        // CBC atomicity: there is never a mixed outcome where one chain
        // commits and another aborts. (If every party deviates by walking
        // away, the deal may simply remain undecided — nobody is harmed.)
        let any_committed = run
            .outcome
            .resolutions
            .values()
            .any(|r| *r == xchain_deals::outcome::ChainResolution::Committed);
        let any_aborted = run
            .outcome
            .resolutions
            .values()
            .any(|r| *r == xchain_deals::outcome::ChainResolution::Aborted);
        prop_assert!(!(any_committed && any_aborted));
    }

    #[test]
    fn all_compliant_random_deals_always_commit(
        parties in 2u32..7,
        extra in 0u32..4,
        seed in 0u64..10_000,
    ) {
        let spec = random_well_formed_deal(
            DealId(seed),
            &RandomDealParams { parties, extra_transfers: extra, amount: 80 },
            seed,
        );
        let mut world = world_for_spec(&spec, NetworkModel::synchronous(100), seed).unwrap();
        let run = run_timelock(&mut world, &spec, &[], &TimelockOptions::default()).unwrap();
        prop_assert!(run.outcome.committed_everywhere());
        prop_assert!(check_strong_liveness(&spec, &[], &run.outcome));
    }
}
