//! The deal digraph and well-formedness (Section 5.1, Figure 2).
//!
//! "We can think of a deal as a directed graph, where each vertex represents a
//! party, and each arc represents a transfer. If the deal digraph is not
//! strongly connected … it must include one or more free riders that
//! collectively take assets but do not return any." The protocols assume
//! well-formed (strongly connected) deals; the check here is the one a party
//! would run before agreeing to participate.

use std::collections::BTreeMap;

use xchain_sim::ids::PartyId;

use crate::spec::DealSpec;

/// The deal digraph: vertices are parties, arcs are transfers.
#[derive(Debug, Clone)]
pub struct DealDigraph {
    vertices: Vec<PartyId>,
    /// Adjacency: for each vertex index, the indices it has arcs to.
    adjacency: Vec<Vec<usize>>,
}

impl DealDigraph {
    /// Builds the digraph of a deal specification.
    pub fn from_spec(spec: &DealSpec) -> Self {
        let vertices = spec.parties.clone();
        let index: BTreeMap<PartyId, usize> =
            vertices.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut adjacency = vec![Vec::new(); vertices.len()];
        for t in &spec.transfers {
            let (Some(&from), Some(&to)) = (index.get(&t.from), index.get(&t.to)) else {
                continue;
            };
            if !adjacency[from].contains(&to) {
                adjacency[from].push(to);
            }
        }
        DealDigraph {
            vertices,
            adjacency,
        }
    }

    /// Number of vertices (parties).
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of distinct arcs.
    pub fn n_arcs(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum()
    }

    /// The strongly connected components (Tarjan's algorithm, iterative),
    /// each a list of parties. Components are returned in reverse topological
    /// order of the condensation.
    pub fn strongly_connected_components(&self) -> Vec<Vec<PartyId>> {
        let n = self.vertices.len();
        let mut index_counter = 0usize;
        let mut indices = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut components: Vec<Vec<PartyId>> = Vec::new();

        // Iterative Tarjan: each frame is (vertex, next neighbour position).
        for start in 0..n {
            if indices[start] != usize::MAX {
                continue;
            }
            let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ni)) = call_stack.last_mut() {
                if *ni == 0 {
                    indices[v] = index_counter;
                    lowlink[v] = index_counter;
                    index_counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ni < self.adjacency[v].len() {
                    let w = self.adjacency[v][*ni];
                    *ni += 1;
                    if indices[w] == usize::MAX {
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(indices[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&mut (parent, _)) = call_stack.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == indices[v] {
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            component.push(self.vertices[w]);
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
        components
    }

    /// True if the digraph is strongly connected (one SCC containing every
    /// party) — the paper's well-formedness condition.
    pub fn is_strongly_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        let sccs = self.strongly_connected_components();
        sccs.len() == 1 && sccs[0].len() == self.vertices.len()
    }

    /// Parties that receive assets but relinquish nothing — "free riders".
    /// A well-formed deal has none.
    pub fn free_riders(&self) -> Vec<PartyId> {
        let n = self.vertices.len();
        let mut has_outgoing = vec![false; n];
        let mut has_incoming = vec![false; n];
        for (from, tos) in self.adjacency.iter().enumerate() {
            for &to in tos {
                has_outgoing[from] = true;
                has_incoming[to] = true;
            }
        }
        (0..n)
            .filter(|&i| has_incoming[i] && !has_outgoing[i])
            .map(|i| self.vertices[i])
            .collect()
    }
}

/// Convenience: well-formedness of a deal specification.
pub fn is_well_formed(spec: &DealSpec) -> bool {
    DealDigraph::from_spec(spec).is_strongly_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EscrowSpec, TransferSpec};
    use xchain_sim::asset::Asset;
    use xchain_sim::ids::{ChainId, DealId};

    fn spec_with_arcs(n: u32, arcs: &[(u32, u32)]) -> DealSpec {
        DealSpec::new(
            DealId(1),
            (0..n).map(PartyId).collect(),
            arcs.iter()
                .map(|(from, _)| EscrowSpec {
                    owner: PartyId(*from),
                    chain: ChainId(*from),
                    asset: Asset::fungible("coin", 1),
                })
                .collect(),
            arcs.iter()
                .map(|(from, to)| TransferSpec {
                    from: PartyId(*from),
                    to: PartyId(*to),
                    chain: ChainId(*from),
                    asset: Asset::fungible("coin", 1),
                })
                .collect(),
        )
    }

    #[test]
    fn broker_digraph_is_strongly_connected() {
        // Figure 2: Bob -> Alice -> Carol -> Alice -> Bob (tickets one way,
        // coins the other).
        let spec = spec_with_arcs(3, &[(1, 0), (0, 2), (2, 0), (0, 1)]);
        let g = DealDigraph::from_spec(&spec);
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_arcs(), 4);
        assert!(g.is_strongly_connected());
        assert!(g.free_riders().is_empty());
        assert!(is_well_formed(&spec));
    }

    #[test]
    fn ring_deals_are_well_formed() {
        for n in 2..8 {
            let arcs: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let spec = spec_with_arcs(n, &arcs);
            assert!(is_well_formed(&spec), "ring of {n} should be well-formed");
        }
    }

    #[test]
    fn free_rider_breaks_well_formedness() {
        // Party 2 receives from 0 and 1 but gives nothing back.
        let spec = spec_with_arcs(3, &[(0, 1), (1, 0), (0, 2), (1, 2)]);
        let g = DealDigraph::from_spec(&spec);
        assert!(!g.is_strongly_connected());
        assert_eq!(g.free_riders(), vec![PartyId(2)]);
        assert!(!is_well_formed(&spec));
    }

    #[test]
    fn disconnected_pairs_are_not_well_formed() {
        let spec = spec_with_arcs(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let g = DealDigraph::from_spec(&spec);
        assert!(!g.is_strongly_connected());
        assert_eq!(g.strongly_connected_components().len(), 2);
        assert!(g.free_riders().is_empty(), "no free riders, yet ill-formed");
    }

    #[test]
    fn isolated_party_detected() {
        let spec = spec_with_arcs(3, &[(0, 1), (1, 0)]);
        let g = DealDigraph::from_spec(&spec);
        assert!(!g.is_strongly_connected());
        assert_eq!(g.strongly_connected_components().len(), 2);
    }

    #[test]
    fn scc_partition_covers_all_vertices() {
        let spec = spec_with_arcs(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let g = DealDigraph::from_spec(&spec);
        let sccs = g.strongly_connected_components();
        let total: usize = sccs.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
        assert!(sccs.iter().any(|c| c.len() == 3));
    }

    #[test]
    fn empty_digraph_not_well_formed() {
        let spec = DealSpec::new(DealId(1), vec![], vec![], vec![]);
        assert!(!is_well_formed(&spec));
    }

    #[test]
    fn single_party_no_arcs() {
        let spec = DealSpec::new(DealId(1), vec![PartyId(0)], vec![], vec![]);
        let g = DealDigraph::from_spec(&spec);
        // One SCC containing the single party: trivially strongly connected.
        assert!(g.is_strongly_connected());
    }
}
