//! A deal executed over the certified blockchain (CBC) while the network is
//! still asynchronous (before the global stabilization time), including the
//! block-proof resolution path and a censorship scenario — all through the
//! unified `Deal` builder.
//!
//! Run with: `cargo run -p xchain-harness --example cbc_deal`

use xchain_deals::builders::ring_spec;
use xchain_deals::cbc::CbcOptions;
use xchain_deals::properties::{check_safety, check_weak_liveness};
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::network::NetworkModel;

fn main() {
    // GST far in the future: every observation before it may take up to 3000
    // ticks even though ∆ = 100. The CBC protocol still commits safely.
    let network = NetworkModel::eventually_synchronous(1_000_000, 100, 3_000);
    let deal = Deal::new(ring_spec(DealId(21), 5)).network(network).seed(5);

    let run = deal
        .run(Protocol::Cbc(CbcOptions {
            f: 2,
            ..CbcOptions::default()
        }))
        .unwrap();
    println!(
        "pre-GST run:   status={:?} committed={}",
        run.ext.cbc_status().unwrap(),
        run.outcome.committed_everywhere()
    );
    println!(
        "  CBC log has {} certified blocks (f = 2, validators = 7)",
        run.ext.cbc_log().unwrap().len()
    );

    // Same deal, resolved with full block-range proofs instead of status
    // certificates: same outcome, more signature verifications.
    let opts = CbcOptions {
        f: 2,
        use_block_proofs: true,
        ..CbcOptions::default()
    };
    let run_proofs = deal.seed(6).run(Protocol::Cbc(opts)).unwrap();
    println!(
        "block proofs:  committed={} commit-phase signature verifications={}",
        run_proofs.outcome.committed_everywhere(),
        run_proofs
            .outcome
            .metrics
            .gas(xchain_deals::phases::Phase::Commit)
            .sig_verifications
    );

    // Censorship: the validators ignore party 3's submissions. The deal can no
    // longer commit, but it aborts everywhere and nobody loses assets.
    let deal = Deal::new(ring_spec(DealId(21), 5)).network(network).seed(7);
    let opts = CbcOptions {
        f: 2,
        censored_parties: vec![PartyId(3)],
        ..CbcOptions::default()
    };
    let censored = deal.run(Protocol::Cbc(opts)).unwrap();
    println!(
        "censorship:    aborted={} safety={} weak-liveness={}",
        censored.outcome.aborted_everywhere(),
        check_safety(deal.spec(), &[], &censored.outcome).holds(),
        check_weak_liveness(deal.spec(), &[], &censored.outcome),
    );
}
