//! The validation phase: each party checks that its incoming assets are
//! properly escrowed and that the deal information the contracts carry is the
//! deal it agreed to (Section 4.1).

use std::collections::BTreeMap;

use xchain_contracts::cbc_manager::{CbcDealInfo, CbcManager};
use xchain_contracts::timelock::{TimelockDealInfo, TimelockManager};
use xchain_sim::asset::{Asset, AssetBag};
use xchain_sim::ids::{ChainId, ContractId, PartyId};
use xchain_sim::world::World;

use crate::plan::PartyPlan;
use crate::spec::DealSpec;

/// The assets `party` expects to receive on `chain` according to the deal
/// matrix, minus what it sends onward on the same chain (its net incoming
/// position there is what must be tentatively owned by it at validation time).
pub fn expected_on_chain(spec: &DealSpec, party: PartyId, chain: ChainId) -> AssetBag {
    let mut bag = AssetBag::new();
    for t in spec
        .transfers
        .iter()
        .filter(|t| t.to == party && t.chain == chain)
    {
        bag.add(&t.asset);
    }
    for t in spec
        .transfers
        .iter()
        .filter(|t| t.from == party && t.chain == chain)
    {
        bag.remove(&t.asset);
    }
    bag
}

fn assets_of_bag(bag: &AssetBag) -> Vec<Asset> {
    let mut assets = Vec::new();
    for (kind, amount) in bag.fungible_holdings() {
        if amount > 0 {
            assets.push(Asset::Fungible {
                kind: kind.clone(),
                amount,
            });
        }
    }
    for (kind, tokens) in bag.non_fungible_holdings() {
        if !tokens.is_empty() {
            assets.push(Asset::NonFungible {
                kind: kind.clone(),
                tokens: tokens.clone(),
            });
        }
    }
    assets
}

/// Validation under the timelock protocol: on every chain where the party has
/// incoming assets, the escrow contract must carry the agreed deal information
/// and the party's C-map entry must cover its expected net incoming assets.
pub fn validate_timelock(
    world: &World,
    spec: &DealSpec,
    info: &TimelockDealInfo,
    contracts: &BTreeMap<ChainId, ContractId>,
    party: PartyId,
) -> bool {
    for chain in spec.incoming_chains_of(party) {
        let Some(&contract) = contracts.get(&chain) else {
            return false;
        };
        let Ok(chain_ref) = world.chain(chain) else {
            return false;
        };
        let ok = chain_ref
            .view(contract, |m: &TimelockManager| {
                if m.info() != info {
                    return false;
                }
                let expected = expected_on_chain(spec, party, chain);
                let tentative = m.core().on_commit_of(party);
                assets_of_bag(&expected)
                    .iter()
                    .all(|a| tentative.contains(a))
            })
            .unwrap_or(false);
        if !ok {
            return false;
        }
    }
    true
}

/// The shared shape of plan-based validation: for every chain the party has
/// incoming assets on, look up the escrow contract and ask `check` whether
/// its state satisfies the party's pre-interned expectation. The per-chain
/// expected bags were interned once at planning time, so `check` compares
/// interned bags directly
/// ([`xchain_contracts::escrow::EscrowCore::on_commit_covers`]) — no kind
/// name is resolved and no [`AssetBag`] is allocated.
fn validate_plan_with<M, F>(
    world: &World,
    party: &PartyPlan,
    contracts: &BTreeMap<ChainId, ContractId>,
    check: F,
) -> bool
where
    M: xchain_sim::contract::Contract,
    F: Fn(&M, &xchain_sim::intern::InternedBag) -> bool,
{
    party
        .incoming_chains
        .iter()
        .zip(&party.expected)
        .all(|(&chain, expected)| {
            let Some(&contract) = contracts.get(&chain) else {
                return false;
            };
            let Ok(chain_ref) = world.chain(chain) else {
                return false;
            };
            chain_ref
                .view(contract, |m: &M| check(m, expected))
                .unwrap_or(false)
        })
}

/// [`validate_timelock`] driven by a pre-resolved [`PartyPlan`] (see
/// [`validate_plan_with`]).
pub fn validate_timelock_plan(
    world: &World,
    party: &PartyPlan,
    info: &TimelockDealInfo,
    contracts: &BTreeMap<ChainId, ContractId>,
) -> bool {
    validate_plan_with(world, party, contracts, |m: &TimelockManager, expected| {
        m.info() == info && m.core().on_commit_covers(party.id, expected)
    })
}

/// Validation under the CBC protocol: same checks against the CBC escrow
/// contracts (deal id, plist, startDeal hash, validator set, and tentative
/// ownership of the expected incoming assets).
pub fn validate_cbc(
    world: &World,
    spec: &DealSpec,
    info: &CbcDealInfo,
    contracts: &BTreeMap<ChainId, ContractId>,
    party: PartyId,
) -> bool {
    for chain in spec.incoming_chains_of(party) {
        let Some(&contract) = contracts.get(&chain) else {
            return false;
        };
        let Ok(chain_ref) = world.chain(chain) else {
            return false;
        };
        let ok = chain_ref
            .view(contract, |m: &CbcManager| {
                if m.info() != info {
                    return false;
                }
                let expected = expected_on_chain(spec, party, chain);
                let tentative = m.core().on_commit_of(party);
                assets_of_bag(&expected)
                    .iter()
                    .all(|a| tentative.contains(a))
            })
            .unwrap_or(false);
        if !ok {
            return false;
        }
    }
    true
}

/// [`validate_cbc`] driven by a pre-resolved [`PartyPlan`] (see
/// [`validate_plan_with`]).
pub fn validate_cbc_plan(
    world: &World,
    party: &PartyPlan,
    info: &CbcDealInfo,
    contracts: &BTreeMap<ChainId, ContractId>,
) -> bool {
    validate_plan_with(world, party, contracts, |m: &CbcManager, expected| {
        m.info() == info && m.core().on_commit_covers(party.id, expected)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::broker_spec;

    #[test]
    fn expected_on_chain_accounts_for_onward_transfers() {
        let spec = broker_spec();
        let alice = PartyId(0);
        // On the coin chain Alice receives 101 and sends 100 onward: net 1.
        let bag = expected_on_chain(&spec, alice, ChainId(1));
        assert_eq!(bag.balance(&"coin".into()), 1);
        // On the ticket chain Alice receives the tickets but forwards them all.
        let bag = expected_on_chain(&spec, alice, ChainId(0));
        assert!(bag.is_empty());
        // Carol expects the two tickets on the ticket chain.
        let bag = expected_on_chain(&spec, PartyId(2), ChainId(0));
        assert!(bag.contains(&Asset::non_fungible("ticket", [1, 2])));
    }
}
