//! Quickstart: run the paper's Figure 1 broker deal end-to-end under the
//! timelock commit protocol and check the safety property.
//!
//! Run with: `cargo run -p xchain-harness --example quickstart`

use std::collections::BTreeMap;

use xchain_deals::builders::broker_spec;
use xchain_deals::properties::{check_safety, check_strong_liveness};
use xchain_deals::setup::world_for_spec;
use xchain_deals::timelock::{run_timelock, TimelockOptions};
use xchain_sim::ids::{Owner, PartyId};
use xchain_sim::network::NetworkModel;

fn main() {
    // Alice (party 0) brokers Bob's (1) tickets to Carol (2) for 101 coins.
    let spec = broker_spec();
    let mut names = BTreeMap::new();
    names.insert(PartyId(0), "Alice".to_string());
    names.insert(PartyId(1), "Bob".to_string());
    names.insert(PartyId(2), "Carol".to_string());
    println!("The deal matrix (Figure 1):\n{}", spec.matrix_string(&names));

    // A synchronous network with bound ∆ = 100 ticks.
    let mut world = world_for_spec(&spec, NetworkModel::synchronous(100), 42).unwrap();
    let run = run_timelock(&mut world, &spec, &[], &TimelockOptions::default()).unwrap();

    println!("committed everywhere: {}", run.outcome.committed_everywhere());
    println!("safety holds:         {}", check_safety(&spec, &[], &run.outcome).holds());
    println!("strong liveness:      {}", check_strong_liveness(&spec, &[], &run.outcome));
    for (name, p) in [("Alice", PartyId(0)), ("Bob", PartyId(1)), ("Carol", PartyId(2))] {
        println!("{name:>6} now holds: {}", world.holdings(Owner::Party(p)));
    }
    println!(
        "total gas: {} ({} storage writes, {} signature verifications)",
        run.outcome.metrics.total_gas().total(),
        run.outcome.metrics.total_gas().storage_writes,
        run.outcome.metrics.total_gas().sig_verifications,
    );
}
