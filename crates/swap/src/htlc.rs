//! A hashed-timelock contract (HTLC): the building block of atomic swaps and
//! off-chain payment networks (Section 8).
//!
//! The depositor escrows an asset locked under the hash of a secret. Whoever
//! presents the preimage before the timeout receives the asset; after the
//! timeout the depositor can reclaim it.

use std::any::Any;

use xchain_sim::asset::Asset;
use xchain_sim::contract::{CallCtx, Contract};
use xchain_sim::crypto::{FnvHasher, Hash};
use xchain_sim::error::ChainResult;
use xchain_sim::ids::PartyId;
use xchain_sim::intern::InternedAsset;
use xchain_sim::time::Time;

/// The lifecycle state of an HTLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtlcState {
    /// Waiting for a deposit.
    Created,
    /// Funded and locked under the hashlock.
    Funded,
    /// The counterparty claimed the asset with the preimage.
    Claimed,
    /// The depositor reclaimed the asset after the timeout.
    Refunded,
}

/// A hashed-timelock escrow for a single asset. The locked asset is stored
/// interned, so claim and refund payouts never touch a kind-name `String`.
#[derive(Debug, Clone)]
pub struct HtlcContract {
    depositor: PartyId,
    beneficiary: PartyId,
    hashlock: Hash,
    timeout: Time,
    asset: Option<InternedAsset>,
    state: HtlcState,
}

impl HtlcContract {
    /// Creates an HTLC paying `beneficiary` if it reveals the preimage of
    /// `hashlock` before `timeout`, refunding `depositor` afterwards.
    pub fn new(depositor: PartyId, beneficiary: PartyId, hashlock: Hash, timeout: Time) -> Self {
        HtlcContract {
            depositor,
            beneficiary,
            hashlock,
            timeout,
            asset: None,
            state: HtlcState::Created,
        }
    }

    /// Hashes a secret the way the contract expects (a streamed, allocation-
    /// free domain-separated hash).
    pub fn hash_secret(secret: u64) -> Hash {
        FnvHasher::new()
            .chain_u64(0x5ec2e7)
            .chain_u64(secret)
            .finish()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> HtlcState {
        self.state
    }

    /// The configured timeout.
    pub fn timeout(&self) -> Time {
        self.timeout
    }

    /// The depositor funds the contract.
    pub fn fund(&mut self, ctx: &mut CallCtx<'_>, asset: Asset) -> ChainResult<()> {
        let asset = ctx.intern_asset(&asset);
        self.fund_interned(ctx, asset)
    }

    /// [`HtlcContract::fund`] for a pre-interned asset (plan-based engines;
    /// same checks, gas, and log entry as the named path).
    pub fn fund_interned(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: InternedAsset,
    ) -> ChainResult<()> {
        ctx.require(
            self.state == HtlcState::Created,
            "already funded or resolved",
        )?;
        ctx.require(
            ctx.caller_party()? == self.depositor,
            "only the depositor can fund",
        )?;
        ctx.require(!asset.is_empty(), "cannot fund with an empty asset")?;
        ctx.deposit_interned_from_caller(&asset)?;
        ctx.charge_storage_write()?;
        self.asset = Some(asset);
        self.state = HtlcState::Funded;
        ctx.emit("htlc-funded", vec![self.hashlock.0])?;
        Ok(())
    }

    /// The beneficiary claims with the secret preimage before the timeout.
    pub fn claim(&mut self, ctx: &mut CallCtx<'_>, secret: u64) -> ChainResult<()> {
        ctx.require(self.state == HtlcState::Funded, "not funded")?;
        ctx.require(ctx.now() < self.timeout, "timed out")?;
        ctx.require(
            ctx.caller_party()? == self.beneficiary,
            "only the beneficiary can claim",
        )?;
        ctx.require(Self::hash_secret(secret) == self.hashlock, "wrong preimage")?;
        ctx.charge_storage_write()?;
        self.state = HtlcState::Claimed;
        let asset = self.asset.as_ref().expect("funded");
        ctx.pay_out_interned(self.beneficiary.into(), asset)?;
        ctx.emit("htlc-claimed", vec![secret])?;
        Ok(())
    }

    /// The depositor reclaims after the timeout.
    pub fn refund(&mut self, ctx: &mut CallCtx<'_>) -> ChainResult<()> {
        ctx.require(self.state == HtlcState::Funded, "not funded")?;
        ctx.require(ctx.now() >= self.timeout, "not timed out yet")?;
        ctx.charge_storage_write()?;
        self.state = HtlcState::Refunded;
        let asset = self.asset.as_ref().expect("funded");
        ctx.pay_out_interned(self.depositor.into(), asset)?;
        ctx.emit("htlc-refunded", vec![self.hashlock.0])?;
        Ok(())
    }
}

impl Contract for HtlcContract {
    fn type_name(&self) -> &'static str {
        "htlc"
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_sim::error::ChainError;
    use xchain_sim::ids::{ChainId, Owner};
    use xchain_sim::ledger::Blockchain;
    use xchain_sim::time::Duration;

    fn chain_with_coins(owner: PartyId) -> Blockchain {
        let mut chain = Blockchain::new(ChainId(0), "coins", Duration(1));
        chain
            .mint(Owner::Party(owner), &Asset::fungible("coin", 50))
            .unwrap();
        chain
    }

    #[test]
    fn fund_claim_flow() {
        let alice = PartyId(0);
        let bob = PartyId(1);
        let mut chain = chain_with_coins(alice);
        let secret = 777;
        let id = chain.install(HtlcContract::new(
            alice,
            bob,
            HtlcContract::hash_secret(secret),
            Time(100),
        ));
        chain
            .call(
                Time(0),
                Owner::Party(alice),
                id,
                |h: &mut HtlcContract, ctx| h.fund(ctx, Asset::fungible("coin", 50)),
            )
            .unwrap();
        // Wrong secret and wrong caller are rejected.
        assert!(chain
            .call(
                Time(10),
                Owner::Party(bob),
                id,
                |h: &mut HtlcContract, ctx| h.claim(ctx, 1)
            )
            .is_err());
        assert!(chain
            .call(
                Time(10),
                Owner::Party(alice),
                id,
                |h: &mut HtlcContract, ctx| h.claim(ctx, secret)
            )
            .is_err());
        chain
            .call(
                Time(10),
                Owner::Party(bob),
                id,
                |h: &mut HtlcContract, ctx| h.claim(ctx, secret),
            )
            .unwrap();
        assert_eq!(
            chain.assets().balance(Owner::Party(bob), &"coin".into()),
            50
        );
        assert_eq!(
            chain.view(id, |h: &HtlcContract| h.state()).unwrap(),
            HtlcState::Claimed
        );
    }

    #[test]
    fn refund_after_timeout() {
        let alice = PartyId(0);
        let bob = PartyId(1);
        let mut chain = chain_with_coins(alice);
        let id = chain.install(HtlcContract::new(
            alice,
            bob,
            HtlcContract::hash_secret(9),
            Time(100),
        ));
        chain
            .call(
                Time(0),
                Owner::Party(alice),
                id,
                |h: &mut HtlcContract, ctx| h.fund(ctx, Asset::fungible("coin", 50)),
            )
            .unwrap();
        // Too early to refund; too late to claim after the timeout.
        assert!(matches!(
            chain.call(
                Time(50),
                Owner::Party(alice),
                id,
                |h: &mut HtlcContract, ctx| h.refund(ctx)
            ),
            Err(ChainError::Require(_))
        ));
        assert!(chain
            .call(
                Time(100),
                Owner::Party(bob),
                id,
                |h: &mut HtlcContract, ctx| h.claim(ctx, 9)
            )
            .is_err());
        chain
            .call(
                Time(100),
                Owner::Party(alice),
                id,
                |h: &mut HtlcContract, ctx| h.refund(ctx),
            )
            .unwrap();
        assert_eq!(
            chain.assets().balance(Owner::Party(alice), &"coin".into()),
            50
        );
    }
}
