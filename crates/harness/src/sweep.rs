//! The engine-driven sweep API: one declarative cross-product over
//! specifications × protocols × networks × adversary configurations,
//! replacing the copy-pasted per-protocol experiment loops.
//!
//! ```
//! use xchain_harness::sweep::{standard_engines, Sweep};
//! use xchain_deals::builders::{broker_spec, ring_spec};
//! use xchain_sim::ids::DealId;
//! use xchain_sim::network::NetworkModel;
//!
//! let outcome = Sweep::new()
//!     .spec("broker", broker_spec())
//!     .spec("ring n=2", ring_spec(DealId(2), 2))
//!     .over_protocols(standard_engines(100))
//!     .over_networks(vec![
//!         ("synchronous".into(), NetworkModel::synchronous(100)),
//!         ("eventually synchronous".into(), NetworkModel::eventually_synchronous(500, 100, 1_000)),
//!     ])
//!     .seed(42)
//!     .run()
//!     .unwrap();
//! // Engines skip specifications they cannot express (the swap engine only
//! // handles two-party exchanges), so every produced point actually ran.
//! assert!(outcome.points.iter().all(|p| p.run.outcome.fully_resolved()));
//! ```

use xchain_deals::engine::{DealEngine, Protocol};
use xchain_deals::error::DealError;
use xchain_deals::party::PartyConfig;
use xchain_deals::spec::DealSpec;
use xchain_deals::{Deal, DealRun};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;
use xchain_swap::SwapEngine;

/// A labelled set of party behaviour configurations for one sweep cell.
pub type AdversaryScenario = (String, Vec<PartyConfig>);

/// Generates the adversary scenarios to run against one specification.
pub type AdversaryGen = Box<dyn Fn(&DealSpec) -> Vec<AdversaryScenario>>;

/// The three standard engines — timelock, CBC, and the HTLC swap — with
/// default options and the given synchrony bound ∆ (in ticks) for the swap's
/// HTLC timeouts.
pub fn standard_engines(delta: u64) -> Vec<(String, Box<dyn DealEngine>)> {
    vec![
        (
            "timelock".into(),
            Box::new(Protocol::timelock()) as Box<dyn DealEngine>,
        ),
        ("CBC".into(), Box::new(Protocol::cbc())),
        (
            "HTLC swap".into(),
            Box::new(SwapEngine::new(Duration(delta))),
        ),
    ]
}

/// The two commit-protocol engines (timelock and CBC) with default options.
pub fn protocol_engines() -> Vec<(String, Box<dyn DealEngine>)> {
    vec![
        (
            "timelock".into(),
            Box::new(Protocol::timelock()) as Box<dyn DealEngine>,
        ),
        ("CBC".into(), Box::new(Protocol::cbc())),
    ]
}

/// One executed cell of a sweep.
pub struct SweepPoint {
    /// Label of the deal specification.
    pub spec: String,
    /// Label of the engine that ran.
    pub engine: String,
    /// Label of the network model.
    pub network: String,
    /// Label of the adversary scenario.
    pub adversary: String,
    /// The specification that ran (for property checks over the point).
    pub deal: DealSpec,
    /// The party configurations that were in force.
    pub configs: Vec<PartyConfig>,
    /// The seed the cell ran with.
    pub seed: u64,
    /// The unified result.
    pub run: DealRun,
}

/// The result of a sweep: every executed point, plus how many cells were
/// skipped because an engine could not express a specification.
pub struct SweepOutcome {
    /// The executed cells, in deterministic iteration order.
    pub points: Vec<SweepPoint>,
    /// Cells skipped via [`DealEngine::supports`].
    pub skipped: usize,
}

impl SweepOutcome {
    /// The points produced by the given engine label.
    pub fn by_engine(&self, engine: &str) -> Vec<&SweepPoint> {
        self.points.iter().filter(|p| p.engine == engine).collect()
    }
}

/// A declarative sweep over specifications × engines × networks × adversary
/// scenarios. Every cell is executed through the [`Deal`] builder with a
/// deterministic per-cell seed, so sweeps are reproducible end to end.
pub struct Sweep {
    specs: Vec<(String, DealSpec)>,
    engines: Vec<(String, Box<dyn DealEngine>)>,
    networks: Vec<(String, NetworkModel)>,
    adversaries: AdversaryGen,
    base_seed: u64,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::new()
    }
}

impl Sweep {
    /// An empty sweep: no specifications yet, the two commit-protocol
    /// engines, a synchronous ∆ = 100 network, and the all-compliant
    /// scenario.
    pub fn new() -> Self {
        Sweep {
            specs: Vec::new(),
            engines: protocol_engines(),
            networks: vec![("synchronous ∆=100".into(), NetworkModel::synchronous(100))],
            adversaries: Box::new(|_| vec![("all compliant".into(), Vec::new())]),
            base_seed: 0,
        }
    }

    /// Adds one labelled specification.
    pub fn spec(mut self, label: impl Into<String>, spec: DealSpec) -> Self {
        self.specs.push((label.into(), spec));
        self
    }

    /// Replaces the specifications with the given labelled set.
    pub fn over_specs(mut self, specs: Vec<(String, DealSpec)>) -> Self {
        self.specs = specs;
        self
    }

    /// Replaces the engines with the given labelled set (see
    /// [`standard_engines`] and [`protocol_engines`]).
    pub fn over_protocols(mut self, engines: Vec<(String, Box<dyn DealEngine>)>) -> Self {
        self.engines = engines;
        self
    }

    /// Replaces the network models with the given labelled set.
    pub fn over_networks(mut self, networks: Vec<(String, NetworkModel)>) -> Self {
        self.networks = networks;
        self
    }

    /// Replaces the adversary generator: for each specification it yields the
    /// labelled behaviour configurations to run (see
    /// [`crate::adversary::single_deviator_configs`] and friends).
    pub fn over_adversaries<F>(mut self, gen: F) -> Self
    where
        F: Fn(&DealSpec) -> Vec<AdversaryScenario> + 'static,
    {
        self.adversaries = Box::new(gen);
        self
    }

    /// Sets the base seed; each executed cell derives its own seed from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Executes the full cross-product and collects every point.
    pub fn run(&self) -> Result<SweepOutcome, DealError> {
        let mut points = Vec::new();
        let mut skipped = 0;
        let mut cell = 0u64;
        for (spec_label, spec) in &self.specs {
            let scenarios = (self.adversaries)(spec);
            for (engine_label, engine) in &self.engines {
                if !engine.supports(spec) {
                    skipped += self.networks.len() * scenarios.len();
                    continue;
                }
                for (net_label, network) in &self.networks {
                    for (adv_label, configs) in &scenarios {
                        let seed = self.base_seed.wrapping_add(cell);
                        cell += 1;
                        let run = Deal::new(spec.clone())
                            .network(*network)
                            .parties(configs)
                            .seed(seed)
                            .run(engine.as_ref())?;
                        points.push(SweepPoint {
                            spec: spec_label.clone(),
                            engine: engine_label.clone(),
                            network: net_label.clone(),
                            adversary: adv_label.clone(),
                            deal: spec.clone(),
                            configs: configs.clone(),
                            seed,
                            run,
                        });
                    }
                }
            }
        }
        Ok(SweepOutcome { points, skipped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::single_deviator_configs;
    use xchain_deals::builders::{broker_spec, ring_spec};
    use xchain_deals::properties::check_safety;
    use xchain_sim::ids::DealId;

    #[test]
    fn sweep_covers_the_cross_product_and_skips_unsupported_cells() {
        let outcome = Sweep::new()
            .spec("broker", broker_spec())
            .spec("two-party ring", ring_spec(DealId(9), 2))
            .over_protocols(standard_engines(100))
            .over_networks(vec![
                ("sync".into(), NetworkModel::synchronous(100)),
                (
                    "eventually sync".into(),
                    NetworkModel::eventually_synchronous(0, 100, 100),
                ),
            ])
            .seed(11)
            .run()
            .unwrap();
        // 2 specs × 3 engines × 2 networks × 1 scenario, minus the swap
        // engine's skipped broker cells (2 networks × 1 scenario).
        assert_eq!(outcome.points.len(), 10);
        assert_eq!(outcome.skipped, 2);
        assert_eq!(outcome.by_engine("HTLC swap").len(), 2);
        for p in &outcome.points {
            assert!(
                p.run.outcome.committed_everywhere(),
                "{} / {} / {} should commit",
                p.spec,
                p.engine,
                p.network
            );
        }
    }

    #[test]
    fn adversary_generator_runs_per_spec() {
        let outcome = Sweep::new()
            .spec("broker", broker_spec())
            .over_adversaries(|spec| {
                let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
                scenarios.extend(
                    single_deviator_configs(spec, 100)
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| (format!("deviator #{i}"), c)),
                );
                scenarios
            })
            .seed(23)
            .run()
            .unwrap();
        // 1 spec × 2 engines × 1 network × (1 + 3 parties × 11 deviations).
        assert_eq!(outcome.points.len(), 2 * (1 + 33));
        for p in &outcome.points {
            assert!(
                check_safety(&p.deal, &p.configs, &p.run.outcome).holds(),
                "{} / {} violated safety",
                p.engine,
                p.adversary
            );
        }
    }
}
