//! Logical simulation time.
//!
//! The paper's protocols reason about time only through the bound `∆` (Delta):
//! the maximum time needed to change a blockchain's state in a way observable
//! by all parties (Section 5). We therefore model time as a logical tick
//! counter. Blockchains "measure time imprecisely, usually by multiplying the
//! current block height by the average block rate"; the simulator exposes both
//! a precise tick clock and a per-chain block-derived clock so that the
//! imprecision can be exercised in tests.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, measured in abstract ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, measured in abstract ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// Returns the raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Returns the raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Multiplies the duration by an integer factor (used for the paper's
    /// `|p| · ∆` path-length timeouts and `N · ∆` deal timeout).
    pub fn times(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Expresses this duration as a (possibly fractional) multiple of `delta`.
    /// Used by the Figure 7 delay experiments, which report delays in ∆ units.
    pub fn in_units_of(self, delta: Duration) -> f64 {
        if delta.0 == 0 {
            return 0.0;
        }
        self.0 as f64 / delta.0 as f64
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_saturating() {
        let t = Time(u64::MAX);
        assert_eq!(t + Duration(10), Time(u64::MAX));
        assert_eq!(Time(3) - Time(10), Duration(0));
        assert_eq!(Time(10) - Time(3), Duration(7));
    }

    #[test]
    fn path_length_timeout_arithmetic() {
        // The timelock contract accepts a vote with path signature p only if it
        // arrives before t0 + |p| * delta.
        let t0 = Time(1_000);
        let delta = Duration(100);
        assert_eq!(t0 + delta.times(1), Time(1_100));
        assert_eq!(t0 + delta.times(3), Time(1_300));
    }

    #[test]
    fn delta_units() {
        let delta = Duration(200);
        assert!((Duration(500).in_units_of(delta) - 2.5).abs() < 1e-9);
        assert_eq!(Duration(500).in_units_of(Duration(0)), 0.0);
    }

    #[test]
    fn min_max_and_since() {
        assert_eq!(Time(5).max(Time(9)), Time(9));
        assert_eq!(Time(5).min(Time(9)), Time(5));
        assert_eq!(Time(9).saturating_since(Time(4)), Duration(5));
        assert_eq!(Time(4).saturating_since(Time(9)), Duration(0));
    }
}
