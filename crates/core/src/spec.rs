//! Deal specification: the transfer matrix of Section 2.1 (Figure 1).
//!
//! A deal is "captured by a matrix (or table), where each row and column is
//! labeled with a party, and the entry at row i and column j shows the assets
//! to be transferred from party i to party j". A party's column is its
//! incoming assets, its row its outgoing assets.
//!
//! The specification also records which party escrows which asset on which
//! chain (the original owners), so the protocol engines can set up escrow and
//! find a valid order for the tentative transfers.

use std::collections::BTreeMap;
use std::fmt;

use xchain_sim::asset::{Asset, AssetBag};
use xchain_sim::ids::{ChainId, DealId, PartyId};

use crate::error::DealError;

/// One matrix entry: `from` transfers `asset` (living on `chain`) to `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferSpec {
    /// The sending party (the row).
    pub from: PartyId,
    /// The receiving party (the column).
    pub to: PartyId,
    /// The chain the asset lives on.
    pub chain: ChainId,
    /// The asset to transfer.
    pub asset: Asset,
}

/// One escrow obligation: `owner` must place `asset` (on `chain`) in escrow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscrowSpec {
    /// The original owner of the asset.
    pub owner: PartyId,
    /// The chain the asset lives on.
    pub chain: ChainId,
    /// The asset to escrow.
    pub asset: Asset,
}

/// A complete cross-chain deal specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DealSpec {
    /// The deal identifier (a nonce).
    pub deal: DealId,
    /// The participating parties (`plist`).
    pub parties: Vec<PartyId>,
    /// The escrow obligations (who owns what at the start).
    pub escrows: Vec<EscrowSpec>,
    /// The matrix entries (tentative transfers to perform).
    pub transfers: Vec<TransferSpec>,
}

impl DealSpec {
    /// Creates a deal specification.
    pub fn new(
        deal: DealId,
        parties: Vec<PartyId>,
        escrows: Vec<EscrowSpec>,
        transfers: Vec<TransferSpec>,
    ) -> Self {
        DealSpec {
            deal,
            parties,
            escrows,
            transfers,
        }
    }

    /// Number of parties `n`.
    pub fn n_parties(&self) -> usize {
        self.parties.len()
    }

    /// Number of escrowed assets `m`.
    pub fn n_assets(&self) -> usize {
        self.escrows.len()
    }

    /// Number of tentative transfers `t`.
    pub fn n_transfers(&self) -> usize {
        self.transfers.len()
    }

    /// The chains involved in the deal.
    pub fn chains(&self) -> Vec<ChainId> {
        let mut chains: Vec<ChainId> = self
            .escrows
            .iter()
            .map(|e| e.chain)
            .chain(self.transfers.iter().map(|t| t.chain))
            .collect();
        chains.sort();
        chains.dedup();
        chains
    }

    /// What `party` expects to relinquish (its row of the matrix), across all
    /// chains.
    pub fn outgoing_of(&self, party: PartyId) -> AssetBag {
        let mut bag = AssetBag::new();
        for t in self.transfers.iter().filter(|t| t.from == party) {
            bag.add(&t.asset);
        }
        bag
    }

    /// What `party` expects to acquire (its column of the matrix), across all
    /// chains.
    pub fn incoming_of(&self, party: PartyId) -> AssetBag {
        let mut bag = AssetBag::new();
        for t in self.transfers.iter().filter(|t| t.to == party) {
            bag.add(&t.asset);
        }
        bag
    }

    /// The escrow obligations of `party`.
    pub fn escrows_of(&self, party: PartyId) -> Vec<&EscrowSpec> {
        self.escrows.iter().filter(|e| e.owner == party).collect()
    }

    /// Chains on which `party` has incoming assets (where it sends its commit
    /// votes in the timelock protocol).
    pub fn incoming_chains_of(&self, party: PartyId) -> Vec<ChainId> {
        let mut chains: Vec<ChainId> = self
            .transfers
            .iter()
            .filter(|t| t.to == party)
            .map(|t| t.chain)
            .collect();
        chains.sort();
        chains.dedup();
        chains
    }

    /// Chains on which `party` has outgoing assets (which it monitors for
    /// other parties' votes).
    pub fn outgoing_chains_of(&self, party: PartyId) -> Vec<ChainId> {
        let mut chains: Vec<ChainId> = self
            .transfers
            .iter()
            .filter(|t| t.from == party)
            .map(|t| t.chain)
            .collect();
        chains.sort();
        chains.dedup();
        chains
    }

    /// Validates the specification: parties are distinct and non-empty, every
    /// transfer and escrow references listed parties, and the tentative
    /// transfers can actually be ordered so that every sender tentatively owns
    /// what it sends (see [`DealSpec::transfer_order`]).
    pub fn validate(&self) -> Result<(), DealError> {
        if self.parties.is_empty() {
            return Err(DealError::InvalidSpec("deal has no parties".into()));
        }
        let mut seen = Vec::new();
        for p in &self.parties {
            if seen.contains(p) {
                return Err(DealError::InvalidSpec(format!("duplicate party {p}")));
            }
            seen.push(*p);
        }
        for e in &self.escrows {
            if !self.parties.contains(&e.owner) {
                return Err(DealError::InvalidSpec(format!(
                    "escrow owner {} not in plist",
                    e.owner
                )));
            }
            if e.asset.is_empty() {
                return Err(DealError::InvalidSpec("empty escrow asset".into()));
            }
        }
        for t in &self.transfers {
            if !self.parties.contains(&t.from) || !self.parties.contains(&t.to) {
                return Err(DealError::InvalidSpec(format!(
                    "transfer {} -> {} involves a non-party",
                    t.from, t.to
                )));
            }
            if t.from == t.to {
                return Err(DealError::InvalidSpec(format!(
                    "self-transfer by {}",
                    t.from
                )));
            }
            if t.asset.is_empty() {
                return Err(DealError::InvalidSpec("empty transfer asset".into()));
            }
        }
        // A valid ordering must exist.
        self.transfer_order()?;
        Ok(())
    }

    /// Computes an order in which the tentative transfers can be performed
    /// such that each sender tentatively owns the asset at that point,
    /// starting from the escrowed state. Returns indices into
    /// [`Self::transfers`]. Fails if no such order exists (e.g. a party is
    /// supposed to forward assets it never receives).
    pub fn transfer_order(&self) -> Result<Vec<usize>, DealError> {
        // Tentative ownership per (chain, party), starting from the escrows.
        let mut owned: BTreeMap<(ChainId, PartyId), AssetBag> = BTreeMap::new();
        for e in &self.escrows {
            owned.entry((e.chain, e.owner)).or_default().add(&e.asset);
        }
        let mut remaining: Vec<usize> = (0..self.transfers.len()).collect();
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut progressed = false;
            let mut i = 0;
            while i < remaining.len() {
                let idx = remaining[i];
                let t = &self.transfers[idx];
                let sender_has = owned
                    .get(&(t.chain, t.from))
                    .map(|b| b.contains(&t.asset))
                    .unwrap_or(false);
                if sender_has {
                    let bag = owned.entry((t.chain, t.from)).or_default();
                    bag.remove(&t.asset);
                    owned.entry((t.chain, t.to)).or_default().add(&t.asset);
                    order.push(idx);
                    remaining.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                return Err(DealError::InvalidSpec(
                    "transfers cannot be ordered: some sender never owns what it sends".into(),
                ));
            }
        }
        Ok(order)
    }

    /// Renders the deal as the matrix of Figure 1 (rows = outgoing, columns =
    /// incoming), for reports and examples.
    pub fn matrix_string(&self, names: &BTreeMap<PartyId, String>) -> String {
        let name = |p: PartyId| names.get(&p).cloned().unwrap_or_else(|| p.to_string());
        let mut out = String::new();
        out.push_str(&format!("{:>12} |", ""));
        for p in &self.parties {
            out.push_str(&format!(" {:>18} |", name(*p)));
        }
        out.push('\n');
        for from in &self.parties {
            out.push_str(&format!("{:>12} |", name(*from)));
            for to in &self.parties {
                let mut cell = String::new();
                for t in self
                    .transfers
                    .iter()
                    .filter(|t| t.from == *from && t.to == *to)
                {
                    if !cell.is_empty() {
                        cell.push_str(", ");
                    }
                    cell.push_str(&t.asset.to_string());
                }
                out.push_str(&format!(" {cell:>18} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for DealSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} parties, {} assets, {} transfers",
            self.deal,
            self.n_parties(),
            self.n_assets(),
            self.n_transfers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker_spec() -> DealSpec {
        // Figure 1: Alice (0) brokers between Bob (1, tickets) and Carol (2, coins).
        let alice = PartyId(0);
        let bob = PartyId(1);
        let carol = PartyId(2);
        let tickets_chain = ChainId(0);
        let coins_chain = ChainId(1);
        DealSpec::new(
            DealId(1),
            vec![alice, bob, carol],
            vec![
                EscrowSpec {
                    owner: bob,
                    chain: tickets_chain,
                    asset: Asset::non_fungible("ticket", [1, 2]),
                },
                EscrowSpec {
                    owner: carol,
                    chain: coins_chain,
                    asset: Asset::fungible("coin", 101),
                },
            ],
            vec![
                TransferSpec {
                    from: bob,
                    to: alice,
                    chain: tickets_chain,
                    asset: Asset::non_fungible("ticket", [1, 2]),
                },
                TransferSpec {
                    from: alice,
                    to: carol,
                    chain: tickets_chain,
                    asset: Asset::non_fungible("ticket", [1, 2]),
                },
                TransferSpec {
                    from: carol,
                    to: alice,
                    chain: coins_chain,
                    asset: Asset::fungible("coin", 101),
                },
                TransferSpec {
                    from: alice,
                    to: bob,
                    chain: coins_chain,
                    asset: Asset::fungible("coin", 100),
                },
            ],
        )
    }

    #[test]
    fn broker_deal_validates_and_orders() {
        let spec = broker_spec();
        spec.validate().unwrap();
        let order = spec.transfer_order().unwrap();
        assert_eq!(order.len(), 4);
        // Bob's ticket transfer must precede Alice's forward of the tickets.
        let pos = |idx: usize| order.iter().position(|i| *i == idx).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn incoming_outgoing_match_the_matrix() {
        let spec = broker_spec();
        let alice = PartyId(0);
        let bob = PartyId(1);
        let carol = PartyId(2);
        // Alice nets +1 coin: receives 101 coins and the tickets, gives 100
        // coins and the tickets.
        let inc = spec.incoming_of(alice);
        assert_eq!(inc.balance(&"coin".into()), 101);
        assert!(inc.contains(&Asset::non_fungible("ticket", [1, 2])));
        let out = spec.outgoing_of(alice);
        assert_eq!(out.balance(&"coin".into()), 100);
        assert!(out.contains(&Asset::non_fungible("ticket", [1, 2])));
        // Bob gives tickets, receives 100 coins.
        assert_eq!(spec.incoming_of(bob).balance(&"coin".into()), 100);
        assert!(spec
            .outgoing_of(bob)
            .contains(&Asset::non_fungible("ticket", [1, 2])));
        // Carol gives 101 coins, receives tickets.
        assert_eq!(spec.outgoing_of(carol).balance(&"coin".into()), 101);
        assert!(spec
            .incoming_of(carol)
            .contains(&Asset::non_fungible("ticket", [1, 2])));
    }

    #[test]
    fn chain_sets_per_party() {
        let spec = broker_spec();
        let alice = PartyId(0);
        let bob = PartyId(1);
        assert_eq!(spec.chains(), vec![ChainId(0), ChainId(1)]);
        assert_eq!(spec.incoming_chains_of(bob), vec![ChainId(1)]);
        assert_eq!(spec.outgoing_chains_of(bob), vec![ChainId(0)]);
        assert_eq!(spec.incoming_chains_of(alice), vec![ChainId(0), ChainId(1)]);
        assert_eq!(spec.outgoing_chains_of(alice), vec![ChainId(0), ChainId(1)]);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut spec = broker_spec();
        spec.parties = vec![];
        assert!(spec.validate().is_err());

        let mut spec = broker_spec();
        spec.parties.push(PartyId(0));
        assert!(spec.validate().is_err());

        let mut spec = broker_spec();
        spec.transfers.push(TransferSpec {
            from: PartyId(9),
            to: PartyId(0),
            chain: ChainId(0),
            asset: Asset::fungible("coin", 1),
        });
        assert!(spec.validate().is_err());

        let mut spec = broker_spec();
        spec.transfers[0].to = PartyId(1);
        assert!(spec.validate().is_err(), "self transfer rejected");
    }

    #[test]
    fn unorderable_transfers_rejected() {
        // Alice is supposed to send coins she never receives or escrows.
        let spec = DealSpec::new(
            DealId(2),
            vec![PartyId(0), PartyId(1)],
            vec![],
            vec![TransferSpec {
                from: PartyId(0),
                to: PartyId(1),
                chain: ChainId(0),
                asset: Asset::fungible("coin", 5),
            }],
        );
        assert!(matches!(
            spec.transfer_order(),
            Err(DealError::InvalidSpec(_))
        ));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn matrix_rendering_mentions_all_assets() {
        let spec = broker_spec();
        let mut names = BTreeMap::new();
        names.insert(PartyId(0), "Alice".to_string());
        names.insert(PartyId(1), "Bob".to_string());
        names.insert(PartyId(2), "Carol".to_string());
        let s = spec.matrix_string(&names);
        assert!(s.contains("Alice"));
        assert!(s.contains("101 coin"));
        assert!(s.contains("100 coin"));
        assert!(s.contains("ticket{1,2}"));
    }
}
