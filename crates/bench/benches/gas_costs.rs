//! Criterion benchmark regenerating Figure 4 (gas costs): full deal executions
//! under both protocols across deal sizes, reporting wall-clock time of the
//! simulation while the harness records the gas tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xchain_deals::builders::brokered_chain_spec;
use xchain_deals::cbc::{run_cbc, CbcOptions};
use xchain_deals::setup::world_for_spec;
use xchain_deals::timelock::{run_timelock, TimelockOptions};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_gas");
    group.sample_size(10);
    for n in [3u32, 6, 9] {
        let spec = brokered_chain_spec(DealId(n as u64), n, 100);
        group.bench_with_input(BenchmarkId::new("timelock", n), &spec, |b, spec| {
            b.iter(|| {
                let mut world = world_for_spec(spec, NetworkModel::synchronous(100), 1).unwrap();
                run_timelock(&mut world, spec, &[], &TimelockOptions::default()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cbc_f2", n), &spec, |b, spec| {
            b.iter(|| {
                let mut world = world_for_spec(spec, NetworkModel::synchronous(100), 1).unwrap();
                run_cbc(&mut world, spec, &[], &CbcOptions { f: 2, ..CbcOptions::default() }).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
