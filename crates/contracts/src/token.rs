//! A fungible-token issuance contract (the "coin blockchain"'s native asset).
//!
//! The simulator's ledger already tracks balances authoritatively; this
//! contract is the issuance authority for one [`AssetKind`]: it mints supply
//! (with gas charged like any other contract call), records metadata, and
//! tracks total supply, mirroring the ERC-20 token the paper's Figure 3
//! escrow manager wraps.

use std::any::Any;

use xchain_sim::asset::AssetKind;
use xchain_sim::contract::{CallCtx, Contract};
use xchain_sim::error::ChainResult;
use xchain_sim::ids::PartyId;
use xchain_sim::intern::{InternedAsset, KindId, KindTable};

/// The fungible-token contract.
#[derive(Debug, Clone)]
pub struct TokenContract {
    kind: AssetKind,
    /// Interned id of `kind` on the hosting chain (set on install).
    kind_id: Option<KindId>,
    symbol: String,
    total_supply: u64,
    issuer: PartyId,
}

impl TokenContract {
    /// Creates the token contract; `issuer` is the only party allowed to mint.
    pub fn new(kind: impl Into<AssetKind>, symbol: impl Into<String>, issuer: PartyId) -> Self {
        TokenContract {
            kind: kind.into(),
            kind_id: None,
            symbol: symbol.into(),
            total_supply: 0,
            issuer,
        }
    }

    /// The asset kind this contract issues.
    pub fn kind(&self) -> &AssetKind {
        &self.kind
    }

    /// The token's display symbol.
    pub fn symbol(&self) -> &str {
        &self.symbol
    }

    /// Total units ever minted.
    pub fn total_supply(&self) -> u64 {
        self.total_supply
    }

    /// Mints `amount` units to `to`. Only the issuer may mint.
    pub fn mint(&mut self, ctx: &mut CallCtx<'_>, to: PartyId, amount: u64) -> ChainResult<()> {
        let caller = ctx.caller_party()?;
        ctx.require(caller == self.issuer, "only the issuer can mint")?;
        ctx.require(amount > 0, "mint amount must be positive")?;
        ctx.charge_storage_write()?; // supply counter
        self.total_supply += amount;
        // Direct ledger credit: minting creates the units out of thin air, so
        // it is modelled as a ledger mint rather than a transfer.
        ctx.charge_storage_write()?;
        let kind = self.kind_id(ctx);
        let asset = InternedAsset::Fungible { kind, amount };
        mint_via_ctx(ctx, to, &asset)?;
        ctx.emit("mint", vec![to.0 as u64, amount])?;
        Ok(())
    }

    /// The interned id of this contract's kind, resolving (and caching at
    /// install) through the hosting chain's table.
    fn kind_id(&self, ctx: &CallCtx<'_>) -> KindId {
        self.kind_id
            .unwrap_or_else(|| ctx.kinds().intern(self.kind.name()))
    }
}

/// Internal helper: the contract runtime does not expose arbitrary minting to
/// contracts (contracts may only move assets they own), so the token contract
/// first receives the newly created units and immediately pays them out.
fn mint_via_ctx(ctx: &mut CallCtx<'_>, to: PartyId, asset: &InternedAsset) -> ChainResult<()> {
    // The escrow-free path: credit the recipient directly through the payout
    // API after granting the units to the contract.
    ctx.mint_interned_to_self(asset)?;
    ctx.pay_out_interned(to.into(), asset)
}

impl Contract for TokenContract {
    fn type_name(&self) -> &'static str {
        "token"
    }
    fn on_install(&mut self, kinds: &KindTable) {
        self.kind_id = Some(kinds.intern(self.kind.name()));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_sim::error::ChainError;
    use xchain_sim::ids::{ChainId, Owner};
    use xchain_sim::ledger::Blockchain;
    use xchain_sim::time::{Duration, Time};

    #[test]
    fn issuer_mints_and_supply_tracks() {
        let mut chain = Blockchain::new(ChainId(0), "coins", Duration(1));
        let issuer = PartyId(0);
        let carol = PartyId(2);
        let id = chain.install(TokenContract::new("coin", "XCN", issuer));
        chain
            .call(
                Time(0),
                Owner::Party(issuer),
                id,
                |t: &mut TokenContract, ctx| t.mint(ctx, carol, 101),
            )
            .unwrap();
        assert_eq!(
            chain.assets().balance(Owner::Party(carol), &"coin".into()),
            101
        );
        assert_eq!(
            chain
                .view(id, |t: &TokenContract| t.total_supply())
                .unwrap(),
            101
        );
        assert_eq!(
            chain
                .view(id, |t: &TokenContract| t.symbol().to_string())
                .unwrap(),
            "XCN"
        );
    }

    #[test]
    fn non_issuer_cannot_mint() {
        let mut chain = Blockchain::new(ChainId(0), "coins", Duration(1));
        let id = chain.install(TokenContract::new("coin", "XCN", PartyId(0)));
        let err = chain
            .call(
                Time(0),
                Owner::Party(PartyId(1)),
                id,
                |t: &mut TokenContract, ctx| t.mint(ctx, PartyId(1), 5),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
        let err = chain
            .call(
                Time(0),
                Owner::Party(PartyId(0)),
                id,
                |t: &mut TokenContract, ctx| t.mint(ctx, PartyId(1), 0),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }
}
