//! The contract runtime: how blockchain-resident programs execute.
//!
//! The paper's contracts (Section 3) are deterministic, passive programs that
//! can access data on their own blockchain, hold assets (escrow), and verify
//! signatures/proofs. They cannot reach other blockchains — the only way a
//! contract learns about a remote chain is when a party presents evidence to
//! it. The runtime mirrors those rules:
//!
//! * Contracts are plain Rust values implementing [`Contract`]; they are
//!   installed on one [`crate::ledger::Blockchain`] and invoked through the
//!   chain, never directly.
//! * During a call the contract receives a [`CallCtx`] that exposes *only*
//!   local facilities: its own chain's asset ledger, the key directory, the
//!   chain's (quantized) clock, gas charging, and the chain log.
//! * Every externally-submitted call pays the intrinsic gas cost; storage
//!   writes and signature verifications pay the Section 7.1 costs.

use std::any::Any;

use crate::asset::Asset;
use crate::crypto::{KeyDirectory, PublicKey, Signature};
use crate::error::{ChainError, ChainResult};
use crate::gas::GasMeter;
use crate::ids::{ChainId, ContractId, Owner, PartyId, TokenId};
use crate::intern::{InternedAsset, KindId, KindTable};
use crate::ledger::{AssetLedger, LogEntry};
use crate::time::Time;

/// A blockchain-resident program.
///
/// Concrete contracts (escrow managers, token registries, the CBC vote log,
/// …) live in the `xchain-contracts` crate; the runtime only needs to store
/// them type-erased and hand them back by concrete type at call time.
pub trait Contract: Any + Send {
    /// A short, stable name used in the chain log.
    fn type_name(&self) -> &'static str;

    /// Called once when the contract is installed on a chain, handing it the
    /// chain's shared [`KindTable`]. Contracts that keep asset state override
    /// this to intern their kinds up front so their per-call paths work on
    /// `Copy` [`KindId`]s instead of names. The default does nothing.
    fn on_install(&mut self, _kinds: &KindTable) {}

    /// Upcast for downcasting to the concrete contract type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting to the concrete contract type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The execution context handed to a contract for the duration of one call.
///
/// All side effects a contract can have (moving assets it owns, pulling assets
/// from the caller, writing storage, emitting log entries) go through this
/// context so that gas is charged uniformly and the ledger stays consistent.
pub struct CallCtx<'a> {
    pub(crate) chain: ChainId,
    pub(crate) contract: ContractId,
    pub(crate) caller: Owner,
    pub(crate) now: Time,
    pub(crate) gas: &'a mut GasMeter,
    pub(crate) assets: &'a mut AssetLedger,
    pub(crate) keys: &'a KeyDirectory,
    pub(crate) log: &'a mut Vec<LogEntry>,
    pub(crate) log_seq: &'a mut u64,
}

impl<'a> CallCtx<'a> {
    /// The chain this contract lives on.
    pub fn chain_id(&self) -> ChainId {
        self.chain
    }

    /// The id of the executing contract.
    pub fn self_id(&self) -> ContractId {
        self.contract
    }

    /// The owner form of the executing contract (for asset ownership checks).
    pub fn self_owner(&self) -> Owner {
        Owner::Contract(self.contract)
    }

    /// Who submitted this call.
    pub fn caller(&self) -> Owner {
        self.caller
    }

    /// The caller as a party, or an error if a contract called (the deal
    /// contracts only accept calls from parties).
    pub fn caller_party(&self) -> ChainResult<PartyId> {
        self.caller
            .as_party()
            .ok_or_else(|| ChainError::require("caller must be a party"))
    }

    /// The chain's current (block-quantized) time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The public-key directory ("any party's public key is known to all").
    pub fn keys(&self) -> &KeyDirectory {
        self.keys
    }

    /// Solidity-style `require`: fails the call with a message when `cond` is
    /// false. Charges one compute step.
    pub fn require(&mut self, cond: bool, msg: &str) -> ChainResult<()> {
        self.charge_compute(1)?;
        if cond {
            Ok(())
        } else {
            Err(ChainError::require(msg))
        }
    }

    /// Charges one write to long-lived storage (5000 gas).
    pub fn charge_storage_write(&mut self) -> ChainResult<()> {
        self.gas
            .charge_storage_write()
            .map_err(|(used, limit)| ChainError::OutOfGas { used, limit })
    }

    /// Charges `n` writes to long-lived storage.
    pub fn charge_storage_writes(&mut self, n: u64) -> ChainResult<()> {
        self.gas
            .charge_storage_writes(n)
            .map_err(|(used, limit)| ChainError::OutOfGas { used, limit })
    }

    /// Charges one read from long-lived storage (200 gas).
    pub fn charge_storage_read(&mut self) -> ChainResult<()> {
        self.gas
            .charge_storage_read()
            .map_err(|(used, limit)| ChainError::OutOfGas { used, limit })
    }

    /// Charges `n` miscellaneous compute steps.
    pub fn charge_compute(&mut self, n: u64) -> ChainResult<()> {
        self.gas
            .charge_compute(n)
            .map_err(|(used, limit)| ChainError::OutOfGas { used, limit })
    }

    /// Charges the 3000-gas cost of one signature verification without
    /// performing it. Used by contracts that verify signatures against key
    /// material they store themselves (e.g. CBC validator certificates).
    pub fn charge_sig_verification(&mut self) -> ChainResult<()> {
        self.gas
            .charge_sig_verify()
            .map_err(|(used, limit)| ChainError::OutOfGas { used, limit })
    }

    /// Verifies a signature over a message of 64-bit words, charging the
    /// 3000-gas signature-verification cost regardless of the outcome
    /// (verification work is done before validity is known).
    pub fn verify_signature(
        &mut self,
        sig: &Signature,
        expected_signer: PublicKey,
        message: &[u64],
    ) -> ChainResult<bool> {
        self.gas
            .charge_sig_verify()
            .map_err(|(used, limit)| ChainError::OutOfGas { used, limit })?;
        if sig.signer != expected_signer {
            return Ok(false);
        }
        Ok(self.keys.verify_words(sig, message))
    }

    /// The chain's shared kind table.
    pub fn kinds(&self) -> &KindTable {
        self.assets.kinds()
    }

    /// Interns an asset's kind, returning the id-keyed counterpart contracts
    /// store so their later ledger calls skip name resolution entirely.
    pub fn intern_asset(&self, asset: &Asset) -> InternedAsset {
        self.assets.intern_asset(asset)
    }

    /// Moves an asset from the *caller* into the contract's custody. This is
    /// the escrow deposit path (Figure 3 line 8, `transferFrom(msg.sender,
    /// this, amount)`); it costs two storage writes like the ERC-20 call it
    /// models, in addition to whatever bookkeeping the contract itself writes.
    pub fn deposit_from_caller(&mut self, asset: &Asset) -> ChainResult<()> {
        self.charge_storage_writes(2)?;
        self.assets
            .transfer(self.caller, Owner::Contract(self.contract), asset)
    }

    /// [`CallCtx::deposit_from_caller`] for a pre-interned asset.
    pub fn deposit_interned_from_caller(&mut self, asset: &InternedAsset) -> ChainResult<()> {
        self.charge_storage_writes(2)?;
        self.assets
            .transfer_interned(self.caller, Owner::Contract(self.contract), asset)
    }

    /// Creates new units of an asset owned by the executing contract. Used by
    /// issuance contracts (token / ticket registries) that act as the minting
    /// authority for their asset kind. Costs one storage write.
    pub fn mint_to_self(&mut self, asset: &Asset) -> ChainResult<()> {
        self.charge_storage_write()?;
        self.assets.mint(Owner::Contract(self.contract), asset)
    }

    /// [`CallCtx::mint_to_self`] for a pre-interned asset.
    pub fn mint_interned_to_self(&mut self, asset: &InternedAsset) -> ChainResult<()> {
        self.charge_storage_write()?;
        self.assets
            .mint_interned(Owner::Contract(self.contract), asset)
    }

    /// Pays an asset out of the contract's custody to `to`. Costs two storage
    /// writes (debit + credit).
    pub fn pay_out(&mut self, to: Owner, asset: &Asset) -> ChainResult<()> {
        self.charge_storage_writes(2)?;
        self.assets
            .transfer(Owner::Contract(self.contract), to, asset)
    }

    /// [`CallCtx::pay_out`] for a pre-interned asset: the zero-string escrow
    /// release path.
    pub fn pay_out_interned(&mut self, to: Owner, asset: &InternedAsset) -> ChainResult<()> {
        self.charge_storage_writes(2)?;
        self.assets
            .transfer_interned(Owner::Contract(self.contract), to, asset)
    }

    /// Pays `amount` units of an interned fungible kind out of custody.
    pub fn pay_out_fungible(&mut self, to: Owner, kind: KindId, amount: u64) -> ChainResult<()> {
        self.charge_storage_writes(2)?;
        self.assets
            .transfer_fungible(Owner::Contract(self.contract), to, kind, amount)
    }

    /// Pays specific tokens of an interned non-fungible kind out of custody.
    pub fn pay_out_tokens(
        &mut self,
        to: Owner,
        kind: KindId,
        tokens: &std::collections::BTreeSet<TokenId>,
    ) -> ChainResult<()> {
        self.charge_storage_writes(2)?;
        self.assets
            .transfer_tokens(Owner::Contract(self.contract), to, kind, tokens)
    }

    /// True if the contract currently holds at least `asset`.
    pub fn holds(&self, asset: &Asset) -> bool {
        self.assets.holds(Owner::Contract(self.contract), asset)
    }

    /// True if the contract currently holds at least the pre-interned `asset`.
    pub fn holds_interned(&self, asset: &InternedAsset) -> bool {
        self.assets
            .holds_interned(Owner::Contract(self.contract), asset)
    }

    /// True if `owner` currently holds at least `asset` (public chain state).
    pub fn owner_holds(&self, owner: Owner, asset: &Asset) -> bool {
        self.assets.holds(owner, asset)
    }

    /// Appends an entry to the chain log (an "event"), charging log gas.
    /// Parties monitor chains by reading this log, subject to the network
    /// model's observation delay.
    pub fn emit(&mut self, label: &str, data: Vec<u64>) -> ChainResult<()> {
        self.gas
            .charge_log_entry()
            .map_err(|(used, limit)| ChainError::OutOfGas { used, limit })?;
        *self.log_seq += 1;
        self.log.push(LogEntry {
            seq: *self.log_seq,
            time: self.now,
            contract: Some(self.contract),
            caller: self.caller,
            tag: crate::ledger::EventTag::parse(label),
            label: label.to_string(),
            data,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::AssetKind;
    use crate::crypto::KeyPair;
    use crate::gas::GasUsage;

    struct Dummy;
    impl Contract for Dummy {
        fn type_name(&self) -> &'static str {
            "dummy"
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn make_ctx_parts() -> (GasMeter, AssetLedger, KeyDirectory, Vec<LogEntry>, u64) {
        (
            GasMeter::unlimited(),
            AssetLedger::new(),
            KeyDirectory::new(),
            Vec::new(),
            0,
        )
    }

    #[test]
    fn require_charges_and_checks() {
        let (mut gas, mut assets, keys, mut log, mut seq) = make_ctx_parts();
        let mut ctx = CallCtx {
            chain: ChainId(0),
            contract: ContractId(1),
            caller: Owner::Party(PartyId(0)),
            now: Time(5),
            gas: &mut gas,
            assets: &mut assets,
            keys: &keys,
            log: &mut log,
            log_seq: &mut seq,
        };
        assert!(ctx.require(true, "ok").is_ok());
        let err = ctx.require(false, "nope").unwrap_err();
        assert_eq!(err, ChainError::Require("nope".to_string()));
        assert_eq!(gas.usage().compute_steps, 2);
    }

    #[test]
    fn deposit_and_payout_move_assets_and_charge_writes() {
        let (mut gas, mut assets, keys, mut log, mut seq) = make_ctx_parts();
        let alice = Owner::Party(PartyId(0));
        let coin = AssetKind::new("coin");
        assets
            .mint(alice, &Asset::fungible(coin.clone(), 100))
            .unwrap();
        let mut ctx = CallCtx {
            chain: ChainId(0),
            contract: ContractId(1),
            caller: alice,
            now: Time(0),
            gas: &mut gas,
            assets: &mut assets,
            keys: &keys,
            log: &mut log,
            log_seq: &mut seq,
        };
        ctx.deposit_from_caller(&Asset::fungible(coin.clone(), 60))
            .unwrap();
        assert!(ctx.holds(&Asset::fungible(coin.clone(), 60)));
        ctx.pay_out(Owner::Party(PartyId(1)), &Asset::fungible(coin.clone(), 60))
            .unwrap();
        assert!(!ctx.holds(&Asset::fungible(coin.clone(), 1)));
        assert_eq!(gas.usage().storage_writes, 4);
        assert!(assets.holds(Owner::Party(PartyId(1)), &Asset::fungible(coin, 60)));
    }

    #[test]
    fn deposit_fails_without_balance() {
        let (mut gas, mut assets, keys, mut log, mut seq) = make_ctx_parts();
        let mut ctx = CallCtx {
            chain: ChainId(0),
            contract: ContractId(1),
            caller: Owner::Party(PartyId(0)),
            now: Time(0),
            gas: &mut gas,
            assets: &mut assets,
            keys: &keys,
            log: &mut log,
            log_seq: &mut seq,
        };
        let err = ctx
            .deposit_from_caller(&Asset::fungible("coin", 10))
            .unwrap_err();
        assert!(matches!(err, ChainError::InsufficientBalance { .. }));
    }

    #[test]
    fn signature_verification_charges_gas_even_when_invalid() {
        let (mut gas, mut assets, mut keys, mut log, mut seq) = make_ctx_parts();
        let kp = KeyPair::derive(PartyId(0), 7);
        let other = KeyPair::derive(PartyId(1), 7);
        keys.register(PartyId(0), &kp);
        keys.register(PartyId(1), &other);
        let sig = kp.sign_words(&[1, 2, 3]);
        let mut ctx = CallCtx {
            chain: ChainId(0),
            contract: ContractId(1),
            caller: Owner::Party(PartyId(0)),
            now: Time(0),
            gas: &mut gas,
            assets: &mut assets,
            keys: &keys,
            log: &mut log,
            log_seq: &mut seq,
        };
        assert!(ctx.verify_signature(&sig, kp.public(), &[1, 2, 3]).unwrap());
        assert!(!ctx
            .verify_signature(&sig, other.public(), &[1, 2, 3])
            .unwrap());
        assert!(!ctx.verify_signature(&sig, kp.public(), &[9]).unwrap());
        assert_eq!(gas.usage().sig_verifications, 3);
        assert_eq!(gas.usage(), {
            let mut u = GasUsage::ZERO;
            u.sig_verifications = 3;
            u
        });
    }

    #[test]
    fn emit_appends_to_log() {
        let (mut gas, mut assets, keys, mut log, mut seq) = make_ctx_parts();
        {
            let mut ctx = CallCtx {
                chain: ChainId(0),
                contract: ContractId(1),
                caller: Owner::Party(PartyId(2)),
                now: Time(9),
                gas: &mut gas,
                assets: &mut assets,
                keys: &keys,
                log: &mut log,
                log_seq: &mut seq,
            };
            ctx.emit("escrow", vec![42]).unwrap();
        }
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].label, "escrow");
        assert_eq!(log[0].data, vec![42]);
        assert_eq!(log[0].time, Time(9));
        assert_eq!(gas.usage().log_entries, 1);
    }

    #[test]
    fn dummy_contract_downcasts() {
        let mut c: Box<dyn Contract> = Box::new(Dummy);
        assert_eq!(c.type_name(), "dummy");
        assert!(c.as_any().downcast_ref::<Dummy>().is_some());
        assert!(c.as_any_mut().downcast_mut::<Dummy>().is_some());
    }
}
