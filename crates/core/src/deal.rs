//! The fluent deal session builder: the one entry point for executing a deal
//! under any [`DealEngine`].
//!
//! A [`Deal`] bundles everything that used to be hand-threaded through
//! `world_for_spec` + `run_timelock` / `run_cbc`: the specification, the
//! network timing model, the parties' behaviour configurations and the world
//! seed. Calling [`Deal::run`] builds the world (chains, parties, minted
//! escrow assets) and executes the chosen engine, returning a unified
//! [`DealRun`].
//!
//! ```
//! use xchain_deals::builders::broker_spec;
//! use xchain_deals::party::{Deviation, PartyConfig};
//! use xchain_deals::{Deal, Protocol};
//! use xchain_sim::ids::PartyId;
//! use xchain_sim::network::NetworkModel;
//!
//! let deal = Deal::new(broker_spec())
//!     .network(NetworkModel::synchronous(100))
//!     .parties(&[PartyConfig::deviating(PartyId(2), Deviation::WithholdVote)])
//!     .seed(42);
//! let run = deal.run(Protocol::timelock()).unwrap();
//! assert!(run.outcome.aborted_everywhere());
//! ```

use std::collections::BTreeMap;

use xchain_sim::ids::{ChainId, ContractId};
use xchain_sim::network::NetworkModel;
use xchain_sim::world::World;

use crate::engine::{DealEngine, EngineRun, ProtocolExt};
use crate::error::DealError;
use crate::outcome::DealOutcome;
use crate::party::PartyConfig;
use crate::plan::DealPlan;
use crate::setup;
use crate::spec::DealSpec;

/// A configured deal session: specification + network + behaviours + seed.
///
/// The builder is reusable: `run` borrows it, so the same session can be
/// executed under several engines (as the sweeps in `xchain-harness` do).
/// The specification is fixed at [`Deal::new`], so the session resolves its
/// [`DealPlan`] exactly once and every subsequent [`Deal::run`] reuses it.
#[derive(Debug, Clone)]
pub struct Deal {
    spec: DealSpec,
    network: NetworkModel,
    configs: Vec<PartyConfig>,
    seed: u64,
    /// The session's resolved plan, filled on first use. Only the spec feeds
    /// the plan and the spec never changes after `new`, so the cache can
    /// never go stale. Cloning a session shares the resolved plan.
    plan: std::sync::OnceLock<std::sync::Arc<DealPlan>>,
}

impl Deal {
    /// Starts a session for the given specification with a synchronous
    /// ∆ = 100 network, all parties compliant, and seed 0.
    pub fn new(spec: DealSpec) -> Self {
        Deal {
            spec,
            network: NetworkModel::default(),
            configs: Vec::new(),
            seed: 0,
            plan: std::sync::OnceLock::new(),
        }
    }

    /// Sets the network timing model the world will use.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Sets the parties' behaviour configurations (replacing any previously
    /// set). Parties without a configuration behave compliantly.
    pub fn parties(mut self, configs: &[PartyConfig]) -> Self {
        self.configs = configs.to_vec();
        self
    }

    /// Adds a single party behaviour configuration.
    pub fn party(mut self, config: PartyConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Sets the deterministic world seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The deal specification this session executes.
    pub fn spec(&self) -> &DealSpec {
        &self.spec
    }

    /// The configured party behaviours.
    pub fn configs(&self) -> &[PartyConfig] {
        &self.configs
    }

    /// Builds the world this session would run in: every referenced chain and
    /// party exists and every escrow owner holds its asset. Exposed for
    /// callers that need to inspect or enrich the world before running
    /// ([`Deal::run_in`] executes against a caller-supplied world).
    pub fn build_world(&self) -> Result<World, DealError> {
        setup::world_for_spec(&self.spec, self.network, self.seed)
    }

    /// The session's resolved [`DealPlan`] (validation, transfer order,
    /// asset interning, per-party tables — all computed once per session and
    /// cached; planning errors are not cached). Callers that share one spec
    /// across *sessions* (the sweeps in `xchain-harness`, workload loops)
    /// can also pass the returned plan to [`Deal::run_planned`] explicitly.
    pub fn plan(&self) -> Result<std::sync::Arc<DealPlan>, DealError> {
        if let Some(p) = self.plan.get() {
            return Ok(p.clone());
        }
        let fresh = std::sync::Arc::new(DealPlan::new(&self.spec)?);
        Ok(self.plan.get_or_init(|| fresh).clone())
    }

    /// Builds the world and executes the deal under `engine`, returning the
    /// unified [`DealRun`]. Stateful strategies get a clean interior state
    /// for each execution ([`crate::party::fresh_configs`]), so re-running
    /// one session is deterministic and concurrent sweep cells are isolated.
    pub fn run<E: DealEngine>(&self, engine: E) -> Result<DealRun, DealError> {
        let plan = self.plan()?;
        self.run_planned(&plan, engine)
    }

    /// [`Deal::run`] with a caller-resolved plan: the world is built from the
    /// plan's kind table and the engine executes straight from the plan. The
    /// plan must come from [`Deal::plan`] on a session with this same
    /// specification (one plan can serve many sessions that differ only in
    /// network, parties, or seed).
    pub fn run_planned<E: DealEngine>(
        &self,
        plan: &DealPlan,
        engine: E,
    ) -> Result<DealRun, DealError> {
        if plan.spec() != &self.spec {
            return Err(DealError::Config(
                "run_planned called with a plan resolved from a different specification".into(),
            ));
        }
        if !engine.supports(&self.spec) {
            return Err(DealError::Config(format!(
                "the {} engine does not support this deal specification",
                engine.label()
            )));
        }
        let mut world = setup::world_for_plan(plan, self.network, self.seed)?;
        let configs = crate::party::fresh_configs(&self.configs);
        let run = engine.execute(&mut world, plan, &configs)?;
        Ok(DealRun {
            world,
            outcome: run.outcome,
            contracts: run.contracts,
            ext: run.ext,
        })
    }

    /// Executes the deal in a caller-supplied world (which must already
    /// contain the referenced chains, parties and escrowed assets). Most
    /// callers want [`Deal::run`]; this exists for scripted scenarios that
    /// share one world across several deals. The plan is resolved against
    /// the *world's* kind table ([`DealPlan::for_table`]), so the interned
    /// ids are valid whatever table the caller's world uses.
    pub fn run_in<E: DealEngine>(
        &self,
        world: &mut World,
        engine: E,
    ) -> Result<EngineRun, DealError> {
        if !engine.supports(&self.spec) {
            return Err(DealError::Config(format!(
                "the {} engine does not support this deal specification",
                engine.label()
            )));
        }
        let plan = DealPlan::for_table(&self.spec, world.kinds())?;
        let configs = crate::party::fresh_configs(&self.configs);
        engine.execute(world, &plan, &configs)
    }
}

/// The unified result of a deal session: the world after the run, the
/// measured protocol-agnostic outcome (resolutions, holdings, per-phase gas
/// and durations), the escrow contracts, and the protocol-specific extension.
#[derive(Debug)]
pub struct DealRun {
    /// The world after the run (and all timeouts), for post-mortem holdings
    /// and contract-state inspection.
    pub world: World,
    /// The measured outcome: per-chain resolutions, per-party holdings
    /// before/after, and per-phase gas/duration metrics.
    pub outcome: DealOutcome,
    /// The escrow contract installed on each involved chain.
    pub contracts: BTreeMap<ChainId, ContractId>,
    /// Protocol-specific evidence (validated map for timelock, certified log
    /// and status for CBC, swap completion for HTLC).
    pub ext: ProtocolExt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{broker_spec, ring_spec};
    use crate::engine::Protocol;
    use crate::party::{Deviation, PartyConfig};
    use xchain_sim::asset::Asset;
    use xchain_sim::ids::{DealId, Owner, PartyId};

    #[test]
    fn builder_runs_both_protocols_on_one_session() {
        let deal = Deal::new(broker_spec())
            .network(NetworkModel::synchronous(100))
            .seed(42);
        let tl = deal.run(Protocol::timelock()).unwrap();
        let cbc = deal.run(Protocol::cbc()).unwrap();
        assert!(tl.outcome.committed_everywhere());
        assert!(cbc.outcome.committed_everywhere());
        // The world travels with the run: Carol holds the tickets either way.
        for run in [&tl, &cbc] {
            assert!(run
                .world
                .holdings(Owner::Party(PartyId(2)))
                .contains(&Asset::non_fungible("ticket", [1, 2])));
        }
    }

    #[test]
    fn party_configs_flow_through() {
        let run = Deal::new(broker_spec())
            .party(PartyConfig::deviating(PartyId(1), Deviation::WithholdVote))
            .seed(3)
            .run(Protocol::timelock())
            .unwrap();
        assert!(run.outcome.aborted_everywhere());
    }

    #[test]
    fn same_seed_is_deterministic() {
        let deal = Deal::new(ring_spec(DealId(5), 5)).seed(9);
        let a = deal.run(Protocol::timelock()).unwrap();
        let b = deal.run(Protocol::timelock()).unwrap();
        assert_eq!(a.outcome.metrics.total_gas(), b.outcome.metrics.total_gas());
        assert_eq!(
            a.outcome.metrics.total_duration(),
            b.outcome.metrics.total_duration()
        );
    }

    #[test]
    fn run_in_uses_the_supplied_world() {
        let deal = Deal::new(broker_spec()).seed(7);
        let mut world = deal.build_world().unwrap();
        let run = deal.run_in(&mut world, Protocol::timelock()).unwrap();
        assert!(run.outcome.committed_everywhere());
        // Effects landed in the caller's world.
        assert!(world
            .holdings(Owner::Party(PartyId(2)))
            .contains(&Asset::non_fungible("ticket", [1, 2])));
    }
}
