//! Command-line entry point that regenerates the paper's tables and figures.
//!
//! Usage: `cargo run -p xchain-harness --bin experiments -- [all|fig1|fig3|fig4|fig7|safety|liveness|matrix|pow|crossover|swap]`

use xchain_harness::experiments;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "all" => print!("{}", experiments::full_report()),
        "fig1" | "fig2" => {
            for t in experiments::fig1_fig2_example() {
                println!("{}", t.render());
            }
        }
        "fig3" => println!("{}", experiments::fig3_escrow_costs().render()),
        "fig4" => println!("{}", experiments::fig4_gas(&[3, 5, 7, 9, 12], 2).1.render()),
        "fig5" | "fig6" => {
            // The Figure 5 / Figure 6 contract behaviours are unit-level; the
            // relevant measured evidence is the commit columns of Figure 4.
            println!("{}", experiments::fig4_gas(&[3, 5, 7], 2).1.render());
        }
        "fig7" => println!("{}", experiments::fig7_delays(&[3, 5, 7, 9]).1.render()),
        "safety" => println!("{}", experiments::safety_sweep().1.render()),
        "liveness" => println!("{}", experiments::liveness_experiment().render()),
        "matrix" => println!("{}", experiments::protocol_matrix_experiment().1.render()),
        "pow" => println!("{}", experiments::pow_attack_experiment(500).render()),
        "crossover" => println!(
            "{}",
            experiments::crossover_experiment(&[3, 4, 6, 8, 10, 12], 2).render()
        ),
        "swap" => {
            for t in experiments::swap_baseline_experiment() {
                println!("{}", t.render());
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "known: all fig1 fig3 fig4 fig5 fig7 safety liveness matrix pow crossover swap"
            );
            std::process::exit(2);
        }
    }
}
