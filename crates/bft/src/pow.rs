//! A proof-of-work (Nakamoto) certified blockchain and the private-abort-block
//! attack of Section 6.2.
//!
//! The paper observes that a CBC can be built over proof-of-work consensus,
//! but such chains "lack finality: any proof might be contradicted by a later
//! proof". The concrete attack: as soon as a deal starts, Alice privately
//! mines a block containing her abort vote while publicly voting commit. If
//! she manages to assemble a private chain with enough confirmations she can
//! show escrow contracts on *her outgoing* chains a proof of abort, and
//! contracts on *her incoming* chains the legitimate proof of commit. The
//! mitigation is to require `k` confirmation blocks beyond the decisive vote,
//! with `k` scaled to the deal's value.
//!
//! This module provides a lightweight PoW chain model plus Monte-Carlo and
//! analytic estimates of the attack's success probability as a function of the
//! attacker's hash-power share `alpha` and the confirmation depth `k`.

use rand::Rng;
use xchain_sim::crypto::{hash_words, Hash};

/// Who mined a block in the simulated race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Miner {
    /// The honest majority of the network.
    Honest,
    /// The attacker (Alice and her "partners in crime").
    Attacker,
}

/// A block in the simulated proof-of-work chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowBlock {
    /// Height above genesis.
    pub height: u64,
    /// This block's hash.
    pub hash: Hash,
    /// The parent block's hash.
    pub parent: Hash,
    /// Who mined it.
    pub miner: Miner,
    /// Opaque payload (e.g. an encoded vote record).
    pub payload: Vec<u64>,
}

/// A fork of the proof-of-work chain (public or private).
#[derive(Debug, Clone, Default)]
pub struct PowFork {
    blocks: Vec<PowBlock>,
}

impl PowFork {
    /// A fork starting from genesis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a block mined by `miner` carrying `payload`.
    pub fn mine(&mut self, miner: Miner, payload: Vec<u64>) -> &PowBlock {
        let height = self.blocks.len() as u64 + 1;
        let parent = self.tip_hash();
        let mut words = vec![
            height,
            parent.0,
            match miner {
                Miner::Honest => 0,
                Miner::Attacker => 1,
            },
        ];
        words.extend_from_slice(&payload);
        let hash = hash_words(&words);
        self.blocks.push(PowBlock {
            height,
            hash,
            parent,
            miner,
            payload,
        });
        self.blocks.last().expect("just pushed")
    }

    /// The hash of the tip (or a genesis constant for the empty fork).
    pub fn tip_hash(&self) -> Hash {
        self.blocks
            .last()
            .map(|b| b.hash)
            .unwrap_or(Hash(0x6e0e_5150))
    }

    /// Chain length in blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks have been mined.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of blocks above (not counting) height `h` — the number of
    /// confirmations a block at height `h` has accumulated.
    pub fn confirmations_of(&self, height: u64) -> u64 {
        (self.blocks.len() as u64).saturating_sub(height)
    }

    /// The blocks.
    pub fn blocks(&self) -> &[PowBlock] {
        &self.blocks
    }

    /// Nakamoto fork choice between two forks: the longer chain wins; ties go
    /// to `self` (the first-seen chain).
    pub fn wins_against(&self, other: &PowFork) -> bool {
        self.len() >= other.len()
    }
}

/// Parameters of the private-abort-block attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowAttackParams {
    /// Attacker's share of total hash power, in (0, 1).
    pub alpha: f64,
    /// Confirmation blocks required beyond the decisive vote.
    pub confirmations: u64,
    /// Bound on total blocks mined in one trial (keeps trials finite; the
    /// attacker gives up once the honest chain is this far ahead).
    pub max_blocks: u64,
}

impl Default for PowAttackParams {
    fn default() -> Self {
        PowAttackParams {
            alpha: 0.25,
            confirmations: 6,
            max_blocks: 200,
        }
    }
}

/// Outcome of one simulated attack trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowAttackTrial {
    /// Whether the attacker assembled a private proof-of-abort with the
    /// required confirmations before the honest proof-of-commit did.
    pub success: bool,
    /// Blocks the attacker mined.
    pub attacker_blocks: u64,
    /// Blocks the honest network mined.
    pub honest_blocks: u64,
}

/// Simulates one trial of the attack: starting at the moment the deal's votes
/// are complete on the public chain, the attacker privately extends a fork
/// containing its abort vote while the honest network extends the public
/// chain containing the commit votes. The attacker wins if its private fork
/// reaches `confirmations + 1` blocks (abort vote block plus confirmations)
/// before the public chain accumulates `confirmations` blocks on top of the
/// decisive commit vote.
pub fn simulate_attack_trial<R: Rng + ?Sized>(
    params: &PowAttackParams,
    rng: &mut R,
) -> PowAttackTrial {
    let mut private = PowFork::new();
    let mut public = PowFork::new();
    // The attacker needs its abort block plus `confirmations` on top.
    let attacker_goal = params.confirmations + 1;
    let honest_goal = params.confirmations;

    let mut mined = 0u64;
    loop {
        if mined >= params.max_blocks {
            return PowAttackTrial {
                success: false,
                attacker_blocks: private.len() as u64,
                honest_blocks: public.len() as u64,
            };
        }
        mined += 1;
        if rng.gen_bool(params.alpha.clamp(0.0, 1.0)) {
            private.mine(Miner::Attacker, vec![0xAB087]);
            if private.len() as u64 >= attacker_goal {
                return PowAttackTrial {
                    success: true,
                    attacker_blocks: private.len() as u64,
                    honest_blocks: public.len() as u64,
                };
            }
        } else {
            public.mine(Miner::Honest, vec![0xC0_3317]);
            if public.len() as u64 >= honest_goal {
                return PowAttackTrial {
                    success: false,
                    attacker_blocks: private.len() as u64,
                    honest_blocks: public.len() as u64,
                };
            }
        }
    }
}

/// Monte-Carlo estimate of the attack success probability over `trials` runs.
pub fn attack_success_rate<R: Rng + ?Sized>(
    params: &PowAttackParams,
    trials: u64,
    rng: &mut R,
) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let mut successes = 0u64;
    for _ in 0..trials {
        if simulate_attack_trial(params, rng).success {
            successes += 1;
        }
    }
    successes as f64 / trials as f64
}

/// Analytic approximation of the attack success probability: the attacker must
/// win a race to `k + 1` blocks before the honest network mines `k`; with
/// per-block win probability `alpha` the dominant term behaves like
/// `(alpha / (1 - alpha))^(k+1)`, matching the exponential decay Nakamoto
/// derives for double-spend attacks. Values are clamped to `[0, 1]`.
pub fn analytic_success_probability(alpha: f64, confirmations: u64) -> f64 {
    if alpha >= 0.5 {
        return 1.0;
    }
    if alpha <= 0.0 {
        return 0.0;
    }
    let ratio = alpha / (1.0 - alpha);
    ratio.powi(confirmations as i32 + 1).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fork_linkage_and_confirmations() {
        let mut fork = PowFork::new();
        assert!(fork.is_empty());
        let genesis_tip = fork.tip_hash();
        fork.mine(Miner::Honest, vec![1]);
        fork.mine(Miner::Honest, vec![2]);
        fork.mine(Miner::Attacker, vec![3]);
        assert_eq!(fork.len(), 3);
        assert_eq!(fork.blocks()[0].parent, genesis_tip);
        assert_eq!(fork.blocks()[1].parent, fork.blocks()[0].hash);
        assert_eq!(fork.confirmations_of(1), 2);
        assert_eq!(fork.confirmations_of(3), 0);
    }

    #[test]
    fn fork_choice_prefers_longer_chain() {
        let mut a = PowFork::new();
        let mut b = PowFork::new();
        a.mine(Miner::Honest, vec![]);
        a.mine(Miner::Honest, vec![]);
        b.mine(Miner::Attacker, vec![]);
        assert!(a.wins_against(&b));
        assert!(!b.wins_against(&a));
        b.mine(Miner::Attacker, vec![]);
        // tie goes to first-seen
        assert!(a.wins_against(&b));
        assert!(b.wins_against(&a));
    }

    #[test]
    fn minority_attacker_rarely_wins_with_deep_confirmations() {
        let mut rng = StdRng::seed_from_u64(42);
        let weak = attack_success_rate(
            &PowAttackParams {
                alpha: 0.2,
                confirmations: 8,
                max_blocks: 400,
            },
            400,
            &mut rng,
        );
        assert!(weak < 0.05, "weak attacker with deep confirmations: {weak}");
    }

    #[test]
    fn success_rate_decreases_with_confirmations() {
        let mut rng = StdRng::seed_from_u64(7);
        let shallow = attack_success_rate(
            &PowAttackParams {
                alpha: 0.35,
                confirmations: 1,
                max_blocks: 200,
            },
            600,
            &mut rng,
        );
        let deep = attack_success_rate(
            &PowAttackParams {
                alpha: 0.35,
                confirmations: 10,
                max_blocks: 400,
            },
            600,
            &mut rng,
        );
        assert!(
            shallow > deep,
            "shallow {shallow} should exceed deep {deep}"
        );
    }

    #[test]
    fn success_rate_increases_with_hash_power() {
        let mut rng = StdRng::seed_from_u64(11);
        let weak = attack_success_rate(
            &PowAttackParams {
                alpha: 0.15,
                confirmations: 4,
                max_blocks: 200,
            },
            600,
            &mut rng,
        );
        let strong = attack_success_rate(
            &PowAttackParams {
                alpha: 0.45,
                confirmations: 4,
                max_blocks: 200,
            },
            600,
            &mut rng,
        );
        assert!(strong > weak, "strong {strong} should exceed weak {weak}");
    }

    #[test]
    fn analytic_probability_behaves() {
        assert_eq!(analytic_success_probability(0.0, 6), 0.0);
        assert_eq!(analytic_success_probability(0.6, 6), 1.0);
        let p1 = analytic_success_probability(0.3, 1);
        let p6 = analytic_success_probability(0.3, 6);
        assert!(p1 > p6);
        assert!(p6 > 0.0 && p6 < 1.0);
    }

    #[test]
    fn majority_attacker_usually_wins_the_race() {
        // With majority hash power the attacker out-mines the honest network
        // most of the time despite the one-block handicap (it needs k+1 blocks
        // before the honest chain reaches k confirmations).
        let mut rng = StdRng::seed_from_u64(3);
        let rate = attack_success_rate(
            &PowAttackParams {
                alpha: 0.7,
                confirmations: 3,
                max_blocks: 500,
            },
            200,
            &mut rng,
        );
        assert!(rate > 0.55, "majority attacker should usually win: {rate}");
    }
}
