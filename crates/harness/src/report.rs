//! Plain-text table rendering for experiment results.

/// A simple ASCII table with a title, column headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// The table's title, printed above it.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["n", "gas"]);
        t.push_row(vec!["3".into(), "123456".into()]);
        t.push_row(vec!["10".into(), "9".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| 123456 |"));
        assert_eq!(s.lines().count(), 5);
    }
}
