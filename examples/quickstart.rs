//! Quickstart: run the paper's Figure 1 broker deal end-to-end through the
//! unified `Deal` builder, under both commit protocols, and check the safety
//! property.
//!
//! Run with: `cargo run -p xchain-harness --example quickstart`

use std::collections::BTreeMap;

use xchain_deals::builders::broker_spec;
use xchain_deals::properties::{check_safety, check_strong_liveness};
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::{Owner, PartyId};
use xchain_sim::network::NetworkModel;

fn main() {
    // Alice (party 0) brokers Bob's (1) tickets to Carol (2) for 101 coins.
    let mut names = BTreeMap::new();
    names.insert(PartyId(0), "Alice".to_string());
    names.insert(PartyId(1), "Bob".to_string());
    names.insert(PartyId(2), "Carol".to_string());

    // One session: spec + network + seed. The builder creates the chains,
    // parties and escrowed assets; `run` executes any engine.
    let deal = Deal::new(broker_spec())
        .network(NetworkModel::synchronous(100))
        .seed(42);
    println!(
        "The deal matrix (Figure 1):\n{}",
        deal.spec().matrix_string(&names)
    );

    let run = deal.run(Protocol::timelock()).unwrap();
    println!(
        "committed everywhere: {}",
        run.outcome.committed_everywhere()
    );
    println!(
        "safety holds:         {}",
        check_safety(deal.spec(), &[], &run.outcome).holds()
    );
    println!(
        "strong liveness:      {}",
        check_strong_liveness(deal.spec(), &[], &run.outcome)
    );
    for (name, p) in [
        ("Alice", PartyId(0)),
        ("Bob", PartyId(1)),
        ("Carol", PartyId(2)),
    ] {
        println!(
            "{name:>6} now holds: {}",
            run.world.holdings(Owner::Party(p))
        );
    }
    println!(
        "total gas: {} ({} storage writes, {} signature verifications)",
        run.outcome.metrics.total_gas().total(),
        run.outcome.metrics.total_gas().storage_writes,
        run.outcome.metrics.total_gas().sig_verifications,
    );

    // The same session runs unchanged under the CBC protocol — protocols are
    // pluggable engines over the same deal graph.
    let cbc = deal.run(Protocol::cbc()).unwrap();
    println!(
        "same deal under CBC:  committed={} status={:?}",
        cbc.outcome.committed_everywhere(),
        cbc.ext.cbc_status().unwrap()
    );
}
