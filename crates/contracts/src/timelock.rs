//! The timelock escrow manager (Section 5, Figure 5).
//!
//! Escrowed assets are released when the contract has accepted a commit vote
//! from *every* party in the deal. Parties do not vote to abort; instead,
//! path-length-dependent timeouts guarantee that assets are not locked up
//! forever. A vote from party `X` arriving with path signature `p` is accepted
//! only if it arrives within `|p| · ∆` of the commit-phase start `t0`; if some
//! vote is still missing at `t0 + N · ∆` (N = number of parties) the contract
//! refunds the escrowed assets to their original owners.

use std::any::Any;
use std::collections::BTreeSet;

use xchain_sim::asset::Asset;
use xchain_sim::contract::{CallCtx, Contract};
use xchain_sim::crypto::PathSignature;
use xchain_sim::error::ChainResult;
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::intern::InternedAsset;
use xchain_sim::time::{Duration, Time};

use crate::escrow::{EscrowCore, EscrowResolution};

/// Deal information broadcast by the market-clearing service and checked by
/// every escrow contract in the timelock protocol: `Dinfo` in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelockDealInfo {
    /// The deal identifier `D`.
    pub deal: DealId,
    /// The participating parties.
    pub plist: Vec<PartyId>,
    /// Commit-phase starting time `t0`, used only to compute timeouts.
    pub t0: Time,
    /// The synchrony bound `∆`.
    pub delta: Duration,
}

impl TimelockDealInfo {
    /// The canonical vote message for voter `v` in this deal: what every
    /// signature in a path signature must attest to. A fixed-size array —
    /// it is built on every vote submission, forward, and verification, so
    /// it must not allocate.
    pub fn vote_message(&self, voter: PartyId) -> [u64; 3] {
        [0xC0717u64, self.deal.0, voter.0 as u64]
    }

    /// The final timeout `t0 + N · ∆` after which a refund is allowed.
    pub fn refund_time(&self) -> Time {
        self.t0 + self.delta.times(self.plist.len() as u64)
    }
}

/// The timelock escrow manager contract.
#[derive(Debug, Clone)]
pub struct TimelockManager {
    core: EscrowCore,
    info: TimelockDealInfo,
    voted: BTreeSet<PartyId>,
}

impl TimelockManager {
    /// Creates the manager for one deal on one asset chain.
    pub fn new(info: TimelockDealInfo) -> Self {
        TimelockManager {
            core: EscrowCore::new(info.deal, info.plist.clone()),
            info,
            voted: BTreeSet::new(),
        }
    }

    /// The deal information this contract was configured with (parties check
    /// it during validation).
    pub fn info(&self) -> &TimelockDealInfo {
        &self.info
    }

    /// Read access to the escrow state.
    pub fn core(&self) -> &EscrowCore {
        &self.core
    }

    /// Parties whose commit votes have been accepted so far.
    pub fn voted(&self) -> &BTreeSet<PartyId> {
        &self.voted
    }

    /// True if a vote from every party has been accepted.
    pub fn all_voted(&self) -> bool {
        self.info.plist.iter().all(|p| self.voted.contains(p))
    }

    /// How the escrow resolved, if it has.
    pub fn resolution(&self) -> Option<EscrowResolution> {
        self.core.resolution()
    }

    /// Escrow phase: `escrow(D, Dinfo, a)`.
    pub fn escrow(&mut self, ctx: &mut CallCtx<'_>, asset: Asset) -> ChainResult<()> {
        self.core.escrow(ctx, asset)
    }

    /// Escrow phase with a pre-interned asset (plan-based engines).
    pub fn escrow_interned(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: InternedAsset,
    ) -> ChainResult<()> {
        self.core.escrow_interned(ctx, asset)
    }

    /// Transfer phase: `transfer(D, a, a', Q)`.
    pub fn transfer(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: Asset,
        to: PartyId,
    ) -> ChainResult<()> {
        self.core.transfer(ctx, asset, to)
    }

    /// Transfer phase with a pre-interned asset (plan-based engines).
    pub fn transfer_interned(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: &InternedAsset,
        to: PartyId,
    ) -> ChainResult<()> {
        self.core.transfer_interned(ctx, asset, to)
    }

    /// Commit phase: `commit(D, v, p)` — accept a (possibly forwarded) commit
    /// vote, following Figure 5:
    ///
    /// 1. not timed out: `now < t0 + |p| · ∆`;
    /// 2. the voter is a legitimate participant;
    /// 3. no duplicate vote from this voter;
    /// 4. no duplicate signers on the path, and every signer is in the plist;
    /// 5. every signature on the path verifies and attests to a vote from the
    ///    voter (the expensive step: one 3000-gas verification per signer);
    /// 6. record the voter (storage write).
    ///
    /// When votes from all parties have been accepted, the escrowed assets are
    /// released to their C-map owners.
    pub fn commit(&mut self, ctx: &mut CallCtx<'_>, vote: &PathSignature) -> ChainResult<()> {
        ctx.require(self.core.is_active(), "deal already resolved")?;
        // Figure 5 line 6: require(now < start + path.length() * DELTA)
        let deadline = self.info.t0 + self.info.delta.times(vote.len() as u64);
        ctx.require(
            ctx.now() < deadline,
            "commit vote arrived after its path timeout",
        )?;
        // line 7: legit voters only
        ctx.require(self.info.plist.contains(&vote.voter), "voter not in plist")?;
        // line 8: no duplicate votes
        ctx.require(!self.voted.contains(&vote.voter), "duplicate vote")?;
        // line 9: no duplicate signers; signers must be participants
        ctx.require(vote.signers_unique(), "duplicate signers on path")?;
        ctx.require(!vote.is_empty(), "empty signature path")?;
        ctx.require(
            vote.signers().iter().all(|s| self.info.plist.contains(s)),
            "path signer not in plist",
        )?;
        // The path must start with the voter's own signature: otherwise the
        // "vote" was fabricated by forwarders without the voter ever signing.
        ctx.require(
            vote.path.first().map(|(p, _)| *p) == Some(vote.voter),
            "path does not start with the voter's signature",
        )?;
        // lines 10-12: verify each signature (expensive)
        let message = self.info.vote_message(vote.voter);
        for (signer, sig) in &vote.path {
            let Some(pk) = ctx.keys().public_key_of(*signer) else {
                return ctx.require(false, "unknown signer key").map(|_| ());
            };
            let ok = ctx.verify_signature(sig, pk, &message)?;
            ctx.require(ok, "invalid signature on vote path")?;
        }
        // line 13: remember who voted
        ctx.charge_storage_write()?;
        self.voted.insert(vote.voter);
        ctx.emit(
            "commit-vote",
            vec![self.info.deal.0, vote.voter.0 as u64, vote.len() as u64],
        )?;
        // Release once every party's vote has been accepted.
        if self.all_voted() {
            self.core.distribute_commit(ctx)?;
        }
        Ok(())
    }

    /// Refund path: anyone may trigger the timeout once `t0 + N · ∆` has
    /// passed without a full set of votes; escrowed assets revert to their
    /// original owners. (In the paper the contract "times out"; on gas-metered
    /// chains someone must submit the transaction that runs the refund.)
    pub fn claim_timeout(&mut self, ctx: &mut CallCtx<'_>) -> ChainResult<()> {
        ctx.require(self.core.is_active(), "deal already resolved")?;
        ctx.require(
            ctx.now() >= self.info.refund_time(),
            "deal has not timed out yet",
        )?;
        ctx.require(!self.all_voted(), "all votes accepted; deal committed")?;
        self.core.distribute_abort(ctx)?;
        Ok(())
    }
}

impl Contract for TimelockManager {
    fn type_name(&self) -> &'static str {
        "timelock-manager"
    }
    fn on_install(&mut self, kinds: &xchain_sim::intern::KindTable) {
        self.core.install(kinds);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_sim::crypto::KeyPair;
    use xchain_sim::error::ChainError;
    use xchain_sim::ids::{ChainId, ContractId, Owner};
    use xchain_sim::ledger::Blockchain;

    const DELTA: u64 = 100;
    const T0: u64 = 1_000;

    struct Fixture {
        chain: Blockchain,
        contract: ContractId,
        info: TimelockDealInfo,
        keys: Vec<KeyPair>,
    }

    fn fixture() -> Fixture {
        let mut chain = Blockchain::new(ChainId(0), "tickets", Duration(1));
        let parties: Vec<PartyId> = (0..3).map(PartyId).collect();
        let keys: Vec<KeyPair> = parties
            .iter()
            .map(|p| {
                let kp = KeyPair::derive(*p, 77);
                chain.register_key(*p, &kp);
                kp
            })
            .collect();
        chain
            .mint(
                Owner::Party(parties[1]),
                &Asset::non_fungible("ticket", [1, 2]),
            )
            .unwrap();
        let info = TimelockDealInfo {
            deal: DealId(7),
            plist: parties,
            t0: Time(T0),
            delta: Duration(DELTA),
        };
        let contract = chain.install(TimelockManager::new(info.clone()));
        Fixture {
            chain,
            contract,
            info,
            keys,
        }
    }

    fn escrow_and_transfer_to_carol(fx: &mut Fixture) {
        let bob = fx.info.plist[1];
        let alice = fx.info.plist[0];
        let carol = fx.info.plist[2];
        fx.chain
            .call(
                Time(0),
                Owner::Party(bob),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.escrow(ctx, Asset::non_fungible("ticket", [1, 2])),
            )
            .unwrap();
        fx.chain
            .call(
                Time(1),
                Owner::Party(bob),
                fx.contract,
                |m: &mut TimelockManager, ctx| {
                    m.transfer(ctx, Asset::non_fungible("ticket", [1, 2]), alice)
                },
            )
            .unwrap();
        fx.chain
            .call(
                Time(2),
                Owner::Party(alice),
                fx.contract,
                |m: &mut TimelockManager, ctx| {
                    m.transfer(ctx, Asset::non_fungible("ticket", [1, 2]), carol)
                },
            )
            .unwrap();
    }

    fn direct_vote(fx: &Fixture, voter_idx: usize) -> PathSignature {
        let voter = fx.info.plist[voter_idx];
        PathSignature::direct(voter, &fx.keys[voter_idx], &fx.info.vote_message(voter))
    }

    #[test]
    fn all_votes_release_assets_to_c_map_owners() {
        let mut fx = fixture();
        escrow_and_transfer_to_carol(&mut fx);
        let carol = fx.info.plist[2];
        for i in 0..3 {
            let vote = direct_vote(&fx, i);
            fx.chain
                .call(
                    Time(T0 + 10 + i as u64),
                    Owner::Party(fx.info.plist[i]),
                    fx.contract,
                    |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
                )
                .unwrap();
        }
        assert!(fx
            .chain
            .assets()
            .holds(Owner::Party(carol), &Asset::non_fungible("ticket", [1, 2])));
        assert_eq!(
            fx.chain
                .view(fx.contract, |m: &TimelockManager| m.resolution())
                .unwrap(),
            Some(EscrowResolution::Committed)
        );
    }

    #[test]
    fn direct_vote_must_arrive_within_one_delta() {
        let mut fx = fixture();
        escrow_and_transfer_to_carol(&mut fx);
        let vote = direct_vote(&fx, 0);
        let err = fx
            .chain
            .call(
                Time(T0 + DELTA), // exactly at the deadline: too late (strict <)
                Owner::Party(fx.info.plist[0]),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }

    #[test]
    fn forwarded_vote_gets_extra_delta_per_hop() {
        let mut fx = fixture();
        escrow_and_transfer_to_carol(&mut fx);
        let bob = fx.info.plist[1];
        let carol = fx.info.plist[2];
        let msg = fx.info.vote_message(bob);
        // Bob's vote forwarded by Carol: |p| = 2, deadline t0 + 2∆.
        let vote =
            PathSignature::direct(bob, &fx.keys[1], &msg).forwarded_by(carol, &fx.keys[2], &msg);
        fx.chain
            .call(
                Time(T0 + DELTA + 10),
                Owner::Party(carol),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
            )
            .unwrap();
        // But a three-hop forward after 3∆ is too late.
        let alice = fx.info.plist[0];
        let msg_a = fx.info.vote_message(alice);
        let vote3 = PathSignature::direct(alice, &fx.keys[0], &msg_a)
            .forwarded_by(bob, &fx.keys[1], &msg_a)
            .forwarded_by(carol, &fx.keys[2], &msg_a);
        let err = fx
            .chain
            .call(
                Time(T0 + 3 * DELTA),
                Owner::Party(carol),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote3),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }

    #[test]
    fn forged_or_malformed_votes_rejected() {
        let mut fx = fixture();
        escrow_and_transfer_to_carol(&mut fx);
        let alice = fx.info.plist[0];
        let bob = fx.info.plist[1];
        let msg_bob = fx.info.vote_message(bob);

        // Alice signs a "vote from Bob" without Bob's signature: rejected.
        let forged = PathSignature {
            voter: bob,
            path: vec![(alice, fx.keys[0].sign_words(&msg_bob))],
        };
        let err = fx
            .chain
            .call(
                Time(T0 + 10),
                Owner::Party(alice),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &forged),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));

        // A signature over the wrong message is rejected.
        let wrong_msg = PathSignature {
            voter: bob,
            path: vec![(bob, fx.keys[1].sign_words(&[1, 2, 3]))],
        };
        let err = fx
            .chain
            .call(
                Time(T0 + 10),
                Owner::Party(bob),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &wrong_msg),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));

        // A non-participant voter is rejected.
        let outsider = PartyId(9);
        let kp9 = KeyPair::derive(outsider, 77);
        let v = PathSignature::direct(outsider, &kp9, &fx.info.vote_message(outsider));
        let err = fx
            .chain
            .call(
                Time(T0 + 10),
                Owner::Party(bob),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &v),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }

    #[test]
    fn duplicate_votes_rejected() {
        let mut fx = fixture();
        escrow_and_transfer_to_carol(&mut fx);
        let vote = direct_vote(&fx, 0);
        fx.chain
            .call(
                Time(T0 + 5),
                Owner::Party(fx.info.plist[0]),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
            )
            .unwrap();
        let err = fx
            .chain
            .call(
                Time(T0 + 6),
                Owner::Party(fx.info.plist[0]),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }

    #[test]
    fn timeout_refunds_original_owner() {
        let mut fx = fixture();
        escrow_and_transfer_to_carol(&mut fx);
        let bob = fx.info.plist[1];
        // Only Alice votes; Bob and Carol never do.
        let vote = direct_vote(&fx, 0);
        fx.chain
            .call(
                Time(T0 + 5),
                Owner::Party(fx.info.plist[0]),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
            )
            .unwrap();
        // Too early to refund.
        let err = fx
            .chain
            .call(
                Time(T0 + 2 * DELTA),
                Owner::Party(bob),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.claim_timeout(ctx),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
        // After t0 + N*delta the refund goes through, back to Bob.
        fx.chain
            .call(
                Time(T0 + 3 * DELTA),
                Owner::Party(bob),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.claim_timeout(ctx),
            )
            .unwrap();
        assert!(fx
            .chain
            .assets()
            .holds(Owner::Party(bob), &Asset::non_fungible("ticket", [1, 2])));
        assert_eq!(
            fx.chain
                .view(fx.contract, |m: &TimelockManager| m.resolution())
                .unwrap(),
            Some(EscrowResolution::Aborted)
        );
    }

    #[test]
    fn commit_gas_is_dominated_by_path_signature_verifications() {
        let mut fx = fixture();
        escrow_and_transfer_to_carol(&mut fx);
        let bob = fx.info.plist[1];
        let carol = fx.info.plist[2];
        let msg = fx.info.vote_message(bob);
        let vote =
            PathSignature::direct(bob, &fx.keys[1], &msg).forwarded_by(carol, &fx.keys[2], &msg);
        let before = fx.chain.gas_usage();
        fx.chain
            .call(
                Time(T0 + 50),
                Owner::Party(carol),
                fx.contract,
                |m: &mut TimelockManager, ctx| m.commit(ctx, &vote),
            )
            .unwrap();
        let delta = before.delta_to(&fx.chain.gas_usage());
        assert_eq!(delta.sig_verifications, 2); // one per signer on the path
        assert_eq!(delta.storage_writes, 1); // remember who voted
    }
}
