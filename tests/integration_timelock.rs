//! Integration tests: the timelock commit protocol end-to-end across the
//! simulator, contracts and deal engine crates.

use xchain_deals::builders::{broker_spec, brokered_chain_spec, ring_spec};
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::properties::{check_safety, check_strong_liveness, check_weak_liveness};
use xchain_deals::setup::world_for_spec;
use xchain_deals::timelock::{run_timelock, TimelockOptions};
use xchain_sim::asset::Asset;
use xchain_sim::ids::{DealId, Owner, PartyId};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;

const DELTA: u64 = 100;

fn net() -> NetworkModel {
    NetworkModel::synchronous(DELTA)
}

#[test]
fn broker_deal_commits_and_routes_assets_correctly() {
    let spec = broker_spec();
    let mut world = world_for_spec(&spec, net(), 1).unwrap();
    let run = run_timelock(&mut world, &spec, &[], &TimelockOptions::default()).unwrap();
    assert!(run.outcome.committed_everywhere());
    assert!(check_strong_liveness(&spec, &[], &run.outcome));
    // Alice nets exactly her 1-coin commission.
    assert_eq!(world.holdings(Owner::Party(PartyId(0))).balance(&"coin".into()), 1);
    assert!(world
        .holdings(Owner::Party(PartyId(2)))
        .contains(&Asset::non_fungible("ticket", [1, 2])));
}

#[test]
fn rings_of_many_parties_commit() {
    for n in [2u32, 4, 8, 12] {
        let spec = ring_spec(DealId(n as u64), n);
        let mut world = world_for_spec(&spec, net(), n as u64).unwrap();
        let run = run_timelock(&mut world, &spec, &[], &TimelockOptions::default()).unwrap();
        assert!(run.outcome.committed_everywhere(), "ring n={n}");
        assert!(check_strong_liveness(&spec, &[], &run.outcome), "ring n={n}");
    }
}

#[test]
fn every_single_deviator_scenario_is_safe() {
    let spec = broker_spec();
    let deviations = [
        Deviation::RefuseEscrow,
        Deviation::SkipTransfers,
        Deviation::WithholdVote,
        Deviation::NeverForward,
        Deviation::RejectValidation,
        Deviation::CrashAfter(Phase::Escrow),
        Deviation::CrashAfter(Phase::Transfer),
        Deviation::CrashAfter(Phase::Validation),
    ];
    for &p in &spec.parties {
        for (i, d) in deviations.iter().enumerate() {
            let configs = vec![PartyConfig::deviating(p, *d)];
            let mut world = world_for_spec(&spec, net(), 50 + i as u64).unwrap();
            let run = run_timelock(&mut world, &spec, &configs, &TimelockOptions::default()).unwrap();
            let report = check_safety(&spec, &configs, &run.outcome);
            assert!(report.holds(), "party {p} deviation {d:?}: {:?}", report.violations);
            assert!(check_weak_liveness(&spec, &configs, &run.outcome), "party {p} deviation {d:?}");
        }
    }
}

#[test]
fn never_forward_deviator_harms_only_itself() {
    // In a ring, party i+1 is the only party positioned to forward votes to
    // chain i. If it refuses, that chain times out while the others commit —
    // the timelock protocol does not guarantee commit-everywhere — but every
    // compliant party is still safe and nothing stays locked up; only the
    // deviator can end up worse off.
    let spec = ring_spec(DealId(5), 5);
    let configs = vec![PartyConfig::deviating(PartyId(2), Deviation::NeverForward)];
    let mut world = world_for_spec(&spec, net(), 3).unwrap();
    let run = run_timelock(&mut world, &spec, &configs, &TimelockOptions::default()).unwrap();
    assert!(run.outcome.fully_resolved());
    let report = check_safety(&spec, &configs, &run.outcome);
    assert!(report.holds(), "{:?}", report.violations);
    assert!(check_weak_liveness(&spec, &configs, &run.outcome));

    // With altruistic broadcast the same deviation cannot even prevent commit,
    // because votes no longer rely on forwarding at all.
    let opts = TimelockOptions { altruistic_broadcast: true, ..TimelockOptions::default() };
    let mut world = world_for_spec(&spec, net(), 3).unwrap();
    let run = run_timelock(&mut world, &spec, &configs, &opts).unwrap();
    assert!(run.outcome.committed_everywhere());
}

#[test]
fn offline_compliant_party_is_protected_by_timeouts() {
    // Carol goes offline for the entire run: the deal cannot gather her vote,
    // times out, and refunds everyone.
    let spec = broker_spec();
    let configs = vec![PartyConfig::deviating(
        PartyId(2),
        Deviation::OfflineDuring {
            from: xchain_sim::time::Time(0),
            until: xchain_sim::time::Time(1_000_000),
        },
    )];
    let mut world = world_for_spec(&spec, net(), 4).unwrap();
    let run = run_timelock(&mut world, &spec, &configs, &TimelockOptions::default()).unwrap();
    assert!(run.outcome.aborted_everywhere());
    assert!(check_safety(&spec, &configs, &run.outcome).holds());
    assert_eq!(world.holdings(Owner::Party(PartyId(2))).balance(&"coin".into()), 101);
}

#[test]
fn commit_gas_grows_quadratically_in_parties_for_fixed_assets() {
    // Figure 4: O(m n^2) signature verifications in the worst case. With the
    // brokered-chain workload (m = n-1), per-asset verification counts grow
    // with n.
    let mut per_asset = Vec::new();
    for n in [4u32, 8] {
        let spec = brokered_chain_spec(DealId(n as u64), n, 50);
        let mut world = world_for_spec(&spec, net(), 9).unwrap();
        let run = run_timelock(&mut world, &spec, &[], &TimelockOptions::default()).unwrap();
        assert!(run.outcome.committed_everywhere());
        let sigs = run.outcome.metrics.gas(Phase::Commit).sig_verifications;
        per_asset.push(sigs as f64 / spec.n_assets() as f64);
    }
    assert!(per_asset[1] > per_asset[0] * 1.5, "{per_asset:?}");
}

#[test]
fn larger_delta_only_changes_timeouts_not_gas() {
    let spec = broker_spec();
    let small = TimelockOptions { delta: Duration(50), ..TimelockOptions::default() };
    let large = TimelockOptions { delta: Duration(500), ..TimelockOptions::default() };
    let mut w1 = world_for_spec(&spec, NetworkModel::synchronous(50), 6).unwrap();
    let r1 = run_timelock(&mut w1, &spec, &[], &small).unwrap();
    let mut w2 = world_for_spec(&spec, NetworkModel::synchronous(500), 6).unwrap();
    let r2 = run_timelock(&mut w2, &spec, &[], &large).unwrap();
    assert!(r1.outcome.committed_everywhere() && r2.outcome.committed_everywhere());
    assert_eq!(r1.outcome.metrics.total_gas(), r2.outcome.metrics.total_gas());
}
