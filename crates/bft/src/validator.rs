//! Validator sets for the certified blockchain (CBC).
//!
//! Section 6.2: "Blocks are approved by a known set of 3f+1 validators, of
//! which at most f can deviate from the protocol. … Each block in a BFT
//! blockchain is vouched for by a certificate containing at least 2f+1
//! validator signatures of that block's hash. … the blockchain can be
//! reconfigured periodically by having at least 2f+1 current validators elect
//! a new set of validators."
//!
//! Consensus internals are abstracted (exactly as the paper does); what the
//! deal protocols rely on is the externally-checkable certificate structure,
//! which this module provides.

use xchain_sim::crypto::{KeyDirectory, KeyPair, PublicKey, Signature};
use xchain_sim::ids::{PartyId, ValidatorId};
use xchain_sim::ledger::Blockchain;

/// Offset used to register validator keys in party key directories without
/// colliding with real party ids. Validators are not deal parties, but the
/// simulated signature scheme verifies through a [`KeyDirectory`], so each
/// validator is given a synthetic party id in a reserved range.
pub const VALIDATOR_PARTY_OFFSET: u32 = 0x8000_0000;

/// Returns the synthetic party id under which a validator's key is registered.
pub fn validator_party_id(v: ValidatorId) -> PartyId {
    PartyId(VALIDATOR_PARTY_OFFSET + v.0)
}

/// One epoch's validator set: `3f + 1` validators tolerating `f` Byzantine
/// members, with quorum size `2f + 1`.
#[derive(Debug, Clone)]
pub struct ValidatorSet {
    epoch: u64,
    f: usize,
    members: Vec<(ValidatorId, KeyPair)>,
    /// Indices of members that behave Byzantine in attack scenarios
    /// (equivocate, censor, or refuse to sign). At most `f` of them matter.
    byzantine: Vec<ValidatorId>,
}

/// The public, externally-checkable description of a validator set: what the
/// paper passes to escrow contracts "in place of the ellipses" at escrow time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatorSetInfo {
    /// The epoch (0 for the initial set; incremented by reconfiguration).
    pub epoch: u64,
    /// The fault-tolerance parameter `f`.
    pub f: usize,
    /// The validators and their public keys.
    pub members: Vec<(ValidatorId, PublicKey)>,
}

impl ValidatorSetInfo {
    /// The quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Total size `3f + 1`.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Looks up a validator's public key.
    pub fn public_key_of(&self, v: ValidatorId) -> Option<PublicKey> {
        self.members
            .iter()
            .find(|(id, _)| *id == v)
            .map(|(_, pk)| *pk)
    }

    /// True if `v` is a member of this set.
    pub fn contains(&self, v: ValidatorId) -> bool {
        self.members.iter().any(|(id, _)| *id == v)
    }
}

impl ValidatorSet {
    /// Creates the validator set for `epoch` with fault tolerance `f`
    /// (so `3f + 1` members), deriving keys deterministically from `seed`.
    pub fn new(epoch: u64, f: usize, seed: u64) -> Self {
        let n = 3 * f + 1;
        let members = (0..n as u32)
            .map(|i| {
                let vid = ValidatorId((epoch as u32) * 10_000 + i);
                let kp = KeyPair::derive(validator_party_id(vid), seed ^ 0xcbc0_0000_0000_0000);
                (vid, kp)
            })
            .collect();
        ValidatorSet {
            epoch,
            f,
            members,
            byzantine: Vec::new(),
        }
    }

    /// The epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The fault-tolerance parameter `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Total membership `3f + 1`.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Marks up to `f` validators as Byzantine (used by censorship /
    /// equivocation experiments). Marking more than `f` is allowed by the
    /// simulator but breaks the BFT assumption, which is precisely what some
    /// negative tests exercise.
    pub fn set_byzantine(&mut self, ids: Vec<ValidatorId>) {
        self.byzantine = ids;
    }

    /// The validators currently marked Byzantine.
    pub fn byzantine(&self) -> &[ValidatorId] {
        &self.byzantine
    }

    /// The public description handed to escrow contracts.
    pub fn info(&self) -> ValidatorSetInfo {
        ValidatorSetInfo {
            epoch: self.epoch,
            f: self.f,
            members: self
                .members
                .iter()
                .map(|(id, kp)| (*id, kp.public()))
                .collect(),
        }
    }

    /// Registers every validator's verification material in a key directory.
    pub fn register_in(&self, dir: &mut KeyDirectory) {
        for (vid, kp) in &self.members {
            dir.register(validator_party_id(*vid), kp);
        }
    }

    /// Registers every validator's verification material on a blockchain, so
    /// escrow contracts there can verify CBC certificates through the normal
    /// gas-metered path.
    pub fn register_on_chain(&self, chain: &mut Blockchain) {
        for (vid, kp) in &self.members {
            chain.register_key(validator_party_id(*vid), kp);
        }
    }

    /// Produces quorum signatures (from the first `2f + 1` non-Byzantine
    /// validators) over a message. Returns `None` if fewer than `2f + 1`
    /// validators are willing to sign — i.e. the honest quorum cannot be
    /// formed, which stalls the CBC (a liveness, never a safety, failure).
    pub fn quorum_sign(&self, message: &[u64]) -> Option<Vec<(ValidatorId, Signature)>> {
        self.quorum_sign_digest(xchain_sim::crypto::hash_words(message))
    }

    /// [`ValidatorSet::quorum_sign`] over a pre-computed digest: the streaming
    /// issuance path — each signer signs the digest directly, so certifying a
    /// record costs one streamed hash and no scratch allocations.
    pub fn quorum_sign_digest(
        &self,
        digest: xchain_sim::crypto::Hash,
    ) -> Option<Vec<(ValidatorId, Signature)>> {
        let willing: Vec<_> = self
            .members
            .iter()
            .filter(|(id, _)| !self.byzantine.contains(id))
            .collect();
        if willing.len() < self.quorum() {
            return None;
        }
        Some(
            willing
                .iter()
                .take(self.quorum())
                .map(|(id, kp)| (*id, kp.sign_digest(digest)))
                .collect(),
        )
    }

    /// Produces signatures from *Byzantine* validators only, over an arbitrary
    /// message. Used by attack scenarios to attempt forged certificates; the
    /// certificate checker must reject these because there are at most `f`
    /// such signatures, below quorum.
    pub fn byzantine_sign(&self, message: &[u64]) -> Vec<(ValidatorId, Signature)> {
        self.members
            .iter()
            .filter(|(id, _)| self.byzantine.contains(id))
            .map(|(id, kp)| (*id, kp.sign_words(message)))
            .collect()
    }

    /// The validator ids in this set.
    pub fn member_ids(&self) -> Vec<ValidatorId> {
        self.members.iter().map(|(id, _)| *id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_3f_plus_1() {
        for f in 1..=5 {
            let set = ValidatorSet::new(0, f, 1);
            assert_eq!(set.size(), 3 * f + 1);
            assert_eq!(set.quorum(), 2 * f + 1);
            assert_eq!(set.info().size(), 3 * f + 1);
            assert_eq!(set.info().quorum(), 2 * f + 1);
        }
    }

    #[test]
    fn quorum_sign_produces_exactly_quorum_signatures() {
        let set = ValidatorSet::new(0, 2, 7);
        let sigs = set.quorum_sign(&[1, 2, 3]).unwrap();
        assert_eq!(sigs.len(), 5);
        let mut dir = KeyDirectory::new();
        set.register_in(&mut dir);
        for (vid, sig) in &sigs {
            assert_eq!(dir.party_of(sig.signer), Some(validator_party_id(*vid)));
            assert!(dir.verify_words(sig, &[1, 2, 3]));
            assert!(!dir.verify_words(sig, &[1, 2, 4]));
        }
    }

    #[test]
    fn byzantine_members_cannot_form_quorum_alone() {
        let mut set = ValidatorSet::new(0, 1, 3);
        let ids = set.member_ids();
        set.set_byzantine(vec![ids[0]]);
        let forged = set.byzantine_sign(&[9, 9]);
        assert_eq!(forged.len(), 1);
        assert!(forged.len() < set.quorum());
        // honest quorum still available
        assert!(set.quorum_sign(&[1]).is_some());
    }

    #[test]
    fn too_many_byzantine_stalls_quorum() {
        let mut set = ValidatorSet::new(0, 1, 3);
        let ids = set.member_ids();
        set.set_byzantine(ids[0..2].to_vec()); // 2 > f = 1
        assert!(set.quorum_sign(&[1]).is_none());
    }

    #[test]
    fn info_lookup_and_membership() {
        let set = ValidatorSet::new(2, 1, 11);
        let info = set.info();
        assert_eq!(info.epoch, 2);
        let ids = set.member_ids();
        assert!(info.contains(ids[0]));
        assert!(!info.contains(ValidatorId(999_999)));
        assert!(info.public_key_of(ids[1]).is_some());
        assert_eq!(info.public_key_of(ValidatorId(999_999)), None);
    }

    #[test]
    fn epochs_have_distinct_keys() {
        let a = ValidatorSet::new(0, 1, 5);
        let b = ValidatorSet::new(1, 1, 5);
        assert_ne!(a.info().members[0].1, b.info().members[0].1);
    }
}
