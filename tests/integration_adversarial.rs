//! Integration tests: exhaustive adversarial sweeps across both protocols.

use xchain_deals::cbc::{run_cbc, CbcOptions};
use xchain_deals::properties::{check_conservation, check_safety, check_weak_liveness};
use xchain_deals::setup::world_for_spec;
use xchain_deals::timelock::{run_timelock, TimelockOptions};
use xchain_harness::adversary::{all_but_one_deviate, single_deviator_configs};
use xchain_harness::workload::{broker_spec, ring_spec};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

const DELTA: u64 = 100;

#[test]
fn single_deviator_sweep_holds_all_properties_for_both_protocols() {
    for spec in [broker_spec(), ring_spec(DealId(11), 4)] {
        for (i, configs) in single_deviator_configs(&spec, DELTA).into_iter().enumerate() {
            let mut world = world_for_spec(&spec, NetworkModel::synchronous(DELTA), i as u64).unwrap();
            let tl = run_timelock(&mut world, &spec, &configs, &TimelockOptions::default()).unwrap();
            assert!(check_safety(&spec, &configs, &tl.outcome).holds(), "timelock {configs:?}");
            assert!(check_weak_liveness(&spec, &configs, &tl.outcome), "timelock {configs:?}");
            assert!(check_conservation(&spec, &tl.outcome), "timelock {configs:?}");

            let mut world = world_for_spec(&spec, NetworkModel::synchronous(DELTA), 1000 + i as u64).unwrap();
            let cbc = run_cbc(&mut world, &spec, &configs, &CbcOptions::default()).unwrap();
            assert!(check_safety(&spec, &configs, &cbc.outcome).holds(), "cbc {configs:?}");
            assert!(check_weak_liveness(&spec, &configs, &cbc.outcome), "cbc {configs:?}");
            assert!(check_conservation(&spec, &cbc.outcome), "cbc {configs:?}");
        }
    }
}

#[test]
fn lone_honest_party_survives_everyone_else_deviating() {
    let spec = broker_spec();
    for &honest in &spec.parties {
        for (i, configs) in all_but_one_deviate(&spec, honest, DELTA).into_iter().enumerate() {
            let mut world = world_for_spec(&spec, NetworkModel::synchronous(DELTA), 7 + i as u64).unwrap();
            let tl = run_timelock(&mut world, &spec, &configs, &TimelockOptions::default()).unwrap();
            let report = check_safety(&spec, &configs, &tl.outcome);
            assert!(report.holds(), "timelock honest={honest} {configs:?}: {:?}", report.violations);

            let mut world = world_for_spec(&spec, NetworkModel::synchronous(DELTA), 99 + i as u64).unwrap();
            let cbc = run_cbc(&mut world, &spec, &configs, &CbcOptions::default()).unwrap();
            assert!(check_safety(&spec, &configs, &cbc.outcome).holds(), "cbc honest={honest} {configs:?}");
        }
    }
}
