//! The protocol-agnostic execution API: [`DealEngine`] and friends.
//!
//! The paper presents the timelock protocol (Section 5) and the CBC protocol
//! (Section 6) as two interchangeable realizations of the *same* cross-chain
//! deal abstraction; *Atomic Cross-Chain Swaps* (Herlihy, PODC 2018) adds a
//! third, less expressive mechanism for the two-party case. This module makes
//! that interchangeability a first-class trait: every commit protocol is a
//! [`DealEngine`] that takes a world, a pre-resolved [`crate::plan::DealPlan`]
//! and the parties' behaviour configurations, and produces a
//! protocol-agnostic [`EngineRun`] (outcome + contracts + a protocol-specific
//! [`ProtocolExt`]).
//!
//! Most callers should not use the trait directly but go through the fluent
//! [`crate::deal::Deal`] session builder, which also constructs the world:
//!
//! ```
//! use xchain_deals::builders::broker_spec;
//! use xchain_deals::{Deal, Protocol};
//! use xchain_sim::network::NetworkModel;
//!
//! let deal = Deal::new(broker_spec())
//!     .network(NetworkModel::synchronous(100))
//!     .seed(42);
//! let run = deal.run(Protocol::timelock()).unwrap();
//! assert!(run.outcome.committed_everywhere());
//! ```

use std::collections::BTreeMap;

use xchain_bft::log::CbcLog;
use xchain_bft::proof::DealStatus;
use xchain_sim::ids::{ChainId, ContractId, PartyId};
use xchain_sim::world::World;

use crate::cbc::{self, CbcOptions};
use crate::error::DealError;
use crate::outcome::{DealOutcome, ProtocolKind};
use crate::party::PartyConfig;
use crate::plan::DealPlan;
use crate::spec::DealSpec;
use crate::timelock::{self, TimelockOptions};

/// Protocol-specific data carried alongside the unified [`DealOutcome`]:
/// whatever evidence the protocol produced that is not expressible in the
/// common outcome vocabulary.
#[derive(Debug)]
pub enum ProtocolExt {
    /// Timelock protocol: which parties passed validation (compliant parties
    /// vote to commit only when they did).
    Timelock {
        /// Validation verdict per party.
        validated: BTreeMap<PartyId, bool>,
    },
    /// CBC protocol: the certified log after the run, the final deal status
    /// recorded on it, and the per-party validation verdicts.
    Cbc {
        /// The certified log (for post-mortem inspection).
        log: CbcLog,
        /// The final deal status on the CBC.
        status: DealStatus,
        /// Validation verdict per party.
        validated: BTreeMap<PartyId, bool>,
    },
    /// Two-party HTLC atomic swap: whether both assets changed hands.
    Swap {
        /// True if both HTLCs were claimed.
        swapped: bool,
    },
}

impl ProtocolExt {
    /// The per-party validation verdicts, if the protocol has a validation
    /// phase (timelock and CBC do; the HTLC swap validates via the hashlock).
    pub fn validated(&self) -> Option<&BTreeMap<PartyId, bool>> {
        match self {
            ProtocolExt::Timelock { validated } | ProtocolExt::Cbc { validated, .. } => {
                Some(validated)
            }
            ProtocolExt::Swap { .. } => None,
        }
    }

    /// The certified log, when the CBC protocol ran.
    pub fn cbc_log(&self) -> Option<&CbcLog> {
        match self {
            ProtocolExt::Cbc { log, .. } => Some(log),
            _ => None,
        }
    }

    /// The final CBC deal status, when the CBC protocol ran.
    pub fn cbc_status(&self) -> Option<DealStatus> {
        match self {
            ProtocolExt::Cbc { status, .. } => Some(*status),
            _ => None,
        }
    }

    /// Whether the swap completed, when the HTLC engine ran.
    pub fn swapped(&self) -> Option<bool> {
        match self {
            ProtocolExt::Swap { swapped } => Some(*swapped),
            _ => None,
        }
    }
}

/// What a [`DealEngine`] produces: the measured outcome, the escrow contract
/// installed on each involved chain, and the protocol-specific extension.
/// The [`crate::deal::Deal`] builder wraps this into a [`crate::deal::DealRun`]
/// together with the world it built.
#[derive(Debug)]
pub struct EngineRun {
    /// The measured, protocol-agnostic outcome.
    pub outcome: DealOutcome,
    /// The escrow contract installed on each involved chain.
    pub contracts: BTreeMap<ChainId, ContractId>,
    /// Protocol-specific evidence (validated map, certified log, …).
    pub ext: ProtocolExt,
}

/// A commit protocol that can execute a cross-chain deal.
///
/// Implementations exist for [`Protocol`] (timelock and CBC, in this crate)
/// and for the two-party HTLC swap engine in `xchain-swap`. The trait is
/// object-safe so sweeps can iterate over `Box<dyn DealEngine>`.
pub trait DealEngine {
    /// Which protocol family this engine belongs to.
    fn kind(&self) -> ProtocolKind;

    /// A human-readable label for reports and sweep tables.
    fn label(&self) -> String {
        self.kind().to_string()
    }

    /// True if this engine can execute the given specification. Engines for
    /// fully general deals return `true` unconditionally; the HTLC swap
    /// engine only supports two-party deals expressible as swaps.
    fn supports(&self, _spec: &DealSpec) -> bool {
        true
    }

    /// Executes one deal in the given world, driving it from a pre-resolved
    /// [`DealPlan`]. The world must already contain the chains, parties and
    /// escrowed assets the plan references, and must have been built from the
    /// plan's kind table (or the plan resolved against the world's — see
    /// [`crate::setup::world_for_plan`] and [`DealPlan::for_table`]); the
    /// [`crate::deal::Deal`] builder takes care of both.
    fn execute(
        &self,
        world: &mut World,
        plan: &DealPlan,
        configs: &[PartyConfig],
    ) -> Result<EngineRun, DealError>;
}

impl<E: DealEngine + ?Sized> DealEngine for &E {
    fn kind(&self) -> ProtocolKind {
        (**self).kind()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn supports(&self, spec: &DealSpec) -> bool {
        (**self).supports(spec)
    }
    fn execute(
        &self,
        world: &mut World,
        plan: &DealPlan,
        configs: &[PartyConfig],
    ) -> Result<EngineRun, DealError> {
        (**self).execute(world, plan, configs)
    }
}

impl<E: DealEngine + ?Sized> DealEngine for Box<E> {
    fn kind(&self) -> ProtocolKind {
        (**self).kind()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn supports(&self, spec: &DealSpec) -> bool {
        (**self).supports(spec)
    }
    fn execute(
        &self,
        world: &mut World,
        plan: &DealPlan,
        configs: &[PartyConfig],
    ) -> Result<EngineRun, DealError> {
        (**self).execute(world, plan, configs)
    }
}

/// The two commit protocols of the paper, as one pluggable engine value.
///
/// `Protocol::Timelock(opts)` selects the fully decentralized timelock commit
/// protocol (synchronous networks, Section 5); `Protocol::Cbc(opts)` the
/// certified-blockchain protocol (eventually-synchronous networks,
/// Section 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Protocol {
    /// The timelock commit protocol with its options.
    Timelock(TimelockOptions),
    /// The CBC commit protocol with its options.
    Cbc(CbcOptions),
}

impl Protocol {
    /// The timelock protocol with default options.
    pub fn timelock() -> Self {
        Protocol::Timelock(TimelockOptions::default())
    }

    /// The CBC protocol with default options.
    pub fn cbc() -> Self {
        Protocol::Cbc(CbcOptions::default())
    }
}

impl DealEngine for Protocol {
    fn kind(&self) -> ProtocolKind {
        match self {
            Protocol::Timelock(_) => ProtocolKind::Timelock,
            Protocol::Cbc(_) => ProtocolKind::Cbc,
        }
    }

    fn execute(
        &self,
        world: &mut World,
        plan: &DealPlan,
        configs: &[PartyConfig],
    ) -> Result<EngineRun, DealError> {
        match self {
            Protocol::Timelock(opts) => {
                let run = timelock::drive(world, plan, configs, opts)?;
                Ok(EngineRun {
                    outcome: run.outcome,
                    contracts: run.contracts,
                    ext: ProtocolExt::Timelock {
                        validated: run.validated,
                    },
                })
            }
            Protocol::Cbc(opts) => {
                let run = cbc::drive(world, plan, configs, opts)?;
                Ok(EngineRun {
                    outcome: run.outcome,
                    contracts: run.contracts,
                    ext: ProtocolExt::Cbc {
                        log: run.log,
                        status: run.status,
                        validated: run.validated,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::broker_spec;
    use crate::deal::Deal;

    #[test]
    fn protocol_engine_dispatches_to_both_protocols() {
        let deal = Deal::new(broker_spec()).seed(1);
        let tl = deal.run(Protocol::timelock()).unwrap();
        assert_eq!(tl.outcome.protocol, ProtocolKind::Timelock);
        assert!(matches!(tl.ext, ProtocolExt::Timelock { .. }));
        assert!(tl.ext.validated().is_some());
        assert!(tl.ext.cbc_log().is_none());

        let cbc = deal.run(Protocol::cbc()).unwrap();
        assert_eq!(cbc.outcome.protocol, ProtocolKind::Cbc);
        assert!(cbc.ext.cbc_status().unwrap().is_committed());
        assert!(cbc.ext.swapped().is_none());
    }

    #[test]
    fn engines_work_through_references_and_boxes() {
        let deal = Deal::new(broker_spec()).seed(2);
        let by_ref = deal.run(Protocol::timelock()).unwrap();
        assert!(by_ref.outcome.committed_everywhere());
        let boxed: Box<dyn DealEngine> = Box::new(Protocol::cbc());
        let by_box = deal.run(&boxed).unwrap();
        assert!(by_box.outcome.committed_everywhere());
        assert_eq!(boxed.label(), "CBC");
    }
}
