//! A deal executed over the certified blockchain (CBC) while the network is
//! still asynchronous (before the global stabilization time), including the
//! block-proof resolution path and a censorship scenario.
//!
//! Run with: `cargo run -p xchain-harness --example cbc_deal`

use xchain_deals::builders::ring_spec;
use xchain_deals::cbc::{run_cbc, CbcOptions};
use xchain_deals::properties::{check_safety, check_weak_liveness};
use xchain_deals::setup::world_for_spec;
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::network::NetworkModel;

fn main() {
    let spec = ring_spec(DealId(21), 5);
    // GST far in the future: every observation before it may take up to 3000
    // ticks even though ∆ = 100. The CBC protocol still commits safely.
    let network = NetworkModel::eventually_synchronous(1_000_000, 100, 3_000);

    let mut world = world_for_spec(&spec, network, 5).unwrap();
    let run = run_cbc(&mut world, &spec, &[], &CbcOptions { f: 2, ..CbcOptions::default() }).unwrap();
    println!("pre-GST run:   status={:?} committed={}", run.status, run.outcome.committed_everywhere());
    println!("  CBC log has {} certified blocks (f = 2, validators = 7)", run.log.len());

    // Same deal, resolved with full block-range proofs instead of status
    // certificates: same outcome, more signature verifications.
    let mut world = world_for_spec(&spec, network, 6).unwrap();
    let opts = CbcOptions { f: 2, use_block_proofs: true, ..CbcOptions::default() };
    let run_proofs = run_cbc(&mut world, &spec, &[], &opts).unwrap();
    println!(
        "block proofs:  committed={} commit-phase signature verifications={}",
        run_proofs.outcome.committed_everywhere(),
        run_proofs.outcome.metrics.gas(xchain_deals::phases::Phase::Commit).sig_verifications
    );

    // Censorship: the validators ignore party 3's submissions. The deal can no
    // longer commit, but it aborts everywhere and nobody loses assets.
    let mut world = world_for_spec(&spec, network, 7).unwrap();
    let opts = CbcOptions { f: 2, censored_parties: vec![PartyId(3)], ..CbcOptions::default() };
    let censored = run_cbc(&mut world, &spec, &[], &opts).unwrap();
    println!(
        "censorship:    aborted={} safety={} weak-liveness={}",
        censored.outcome.aborted_everywhere(),
        check_safety(&spec, &[], &censored.outcome).holds(),
        check_weak_liveness(&spec, &[], &censored.outcome),
    );
}
