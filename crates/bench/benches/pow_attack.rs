//! Benchmark for the Section 6.2 proof-of-work private-abort attack
//! simulation, across attacker hash power and confirmation depth.
//!
//! Run with: `cargo bench -p xchain-bench --bench pow_attack`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xchain_bench::Suite;
use xchain_bft::pow::{attack_success_rate, PowAttackParams};

fn main() {
    println!("pow_attack");
    let mut suite = Suite::from_args("pow_attack");
    for (alpha, k) in [(0.25f64, 3u64), (0.25, 6), (0.45, 6)] {
        suite.bench(&format!("pow_attack/alpha{alpha:.2}_k{k}"), 10, || {
            let mut rng = StdRng::seed_from_u64(1);
            attack_success_rate(
                &PowAttackParams {
                    alpha,
                    confirmations: k,
                    max_blocks: 200,
                },
                200,
                &mut rng,
            )
        });
    }
    suite.finish();
}
