//! Adversarial commerce in action: the same broker deal executed against a
//! range of deviating counterparties, showing that compliant parties are never
//! left worse off (Property 1) and never have assets locked up forever
//! (Property 2), under both commit protocols — each scenario is one `Deal`
//! session run through two engines.
//!
//! Run with: `cargo run -p xchain-harness --example adversarial`

use xchain_deals::builders::broker_spec;
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::properties::{check_safety, check_weak_liveness};
use xchain_deals::{Deal, Protocol};
use xchain_sim::ids::PartyId;
use xchain_sim::network::NetworkModel;

fn main() {
    let bob = PartyId(1);
    let carol = PartyId(2);
    let scenarios: Vec<(&str, Vec<PartyConfig>)> = vec![
        ("everyone compliant", vec![]),
        (
            "Bob never escrows his tickets",
            vec![PartyConfig::deviating(bob, Deviation::RefuseEscrow)],
        ),
        (
            "Carol withholds her commit vote",
            vec![PartyConfig::deviating(carol, Deviation::WithholdVote)],
        ),
        (
            "Bob crashes right after the transfer phase",
            vec![PartyConfig::deviating(
                bob,
                Deviation::CrashAfter(Phase::Transfer),
            )],
        ),
        (
            "Bob and Carol both walk away before voting",
            vec![
                PartyConfig::deviating(bob, Deviation::WithholdVote),
                PartyConfig::deviating(carol, Deviation::WithholdVote),
            ],
        ),
    ];

    for (label, configs) in scenarios {
        let deal = Deal::new(broker_spec())
            .network(NetworkModel::synchronous(100))
            .parties(&configs)
            .seed(11);
        println!("scenario: {label}");
        for protocol in [Protocol::timelock(), Protocol::cbc()] {
            let run = deal.run(&protocol).unwrap();
            println!(
                "  {:>8}: committed={} aborted={} safety={} weak-liveness={}",
                run.outcome.protocol,
                run.outcome.committed_everywhere(),
                run.outcome.aborted_everywhere(),
                check_safety(deal.spec(), &configs, &run.outcome).holds(),
                check_weak_liveness(deal.spec(), &configs, &run.outcome),
            );
        }
    }
}
