//! Error types shared by the simulator substrate.

use std::fmt;

use crate::ids::{ChainId, ContractId, Owner, PartyId, TokenId};

/// Errors raised by ledger operations, contract calls and the simulation world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The referenced chain does not exist in the world.
    UnknownChain(ChainId),
    /// The referenced contract does not exist on the chain.
    UnknownContract(ContractId),
    /// A contract call was dispatched to a contract of a different concrete type.
    ContractTypeMismatch(ContractId),
    /// The owner does not hold enough of the fungible asset.
    InsufficientBalance {
        /// Who attempted to spend.
        owner: Owner,
        /// Asset kind name.
        kind: String,
        /// Amount requested.
        requested: u64,
        /// Amount actually held.
        available: u64,
    },
    /// The owner does not hold the referenced non-fungible token.
    NotTokenOwner {
        /// Who attempted to move the token.
        owner: Owner,
        /// Asset kind name.
        kind: String,
        /// The token in question.
        token: TokenId,
    },
    /// A contract rejected a call (the analogue of Solidity's `require`).
    Require(String),
    /// A party attempted to act while offline (e.g. under a denial-of-service
    /// window configured in the network model).
    PartyOffline(PartyId),
    /// A signature failed verification.
    BadSignature,
    /// The call ran out of gas (only triggered when a gas limit is configured).
    OutOfGas {
        /// Gas consumed when the limit was hit.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Anything else.
    Other(String),
}

impl ChainError {
    /// Convenience constructor mirroring Solidity's `require(cond, msg)`.
    pub fn require(msg: impl Into<String>) -> Self {
        ChainError::Require(msg.into())
    }
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownChain(c) => write!(f, "unknown chain {c}"),
            ChainError::UnknownContract(c) => write!(f, "unknown contract {c}"),
            ChainError::ContractTypeMismatch(c) => {
                write!(f, "contract {c} has a different concrete type")
            }
            ChainError::InsufficientBalance {
                owner,
                kind,
                requested,
                available,
            } => write!(
                f,
                "{owner} holds {available} of '{kind}' but tried to spend {requested}"
            ),
            ChainError::NotTokenOwner { owner, kind, token } => {
                write!(f, "{owner} does not own {token} of kind '{kind}'")
            }
            ChainError::Require(msg) => write!(f, "require failed: {msg}"),
            ChainError::PartyOffline(p) => write!(f, "{p} is offline and cannot act"),
            ChainError::BadSignature => write!(f, "signature verification failed"),
            ChainError::OutOfGas { used, limit } => {
                write!(f, "out of gas: used {used}, limit {limit}")
            }
            ChainError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Result alias for ledger and contract operations.
pub type ChainResult<T> = Result<T, ChainError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ChainError::InsufficientBalance {
            owner: Owner::Party(PartyId(1)),
            kind: "coin".to_string(),
            requested: 100,
            available: 7,
        };
        let s = e.to_string();
        assert!(s.contains("party-1"));
        assert!(s.contains("coin"));
        assert!(s.contains("100"));
        assert!(s.contains('7'));
    }

    #[test]
    fn require_constructor() {
        let e = ChainError::require("voter not in plist");
        assert_eq!(e, ChainError::Require("voter not in plist".to_string()));
        assert!(e.to_string().contains("voter not in plist"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ChainError::BadSignature);
        assert!(e.to_string().contains("signature"));
    }
}
