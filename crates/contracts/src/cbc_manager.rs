//! The CBC escrow manager (Section 6, Figure 6).
//!
//! In the CBC protocol parties vote to commit or abort the *entire deal* on
//! the certified blockchain; the escrow contract on each asset chain never
//! sees votes, only *proofs* extracted from the CBC. A party claiming an asset
//! (or a refund) presents either a validator status certificate (the common,
//! optimized case) or a full block-range proof; the contract verifies the
//! validator signatures — the expensive step — and commits or aborts
//! accordingly.

use std::any::Any;

use xchain_bft::proof::{BlockProof, DealStatus, StatusCertificate};
use xchain_bft::validator::{validator_party_id, ValidatorSetInfo};
use xchain_sim::asset::Asset;
use xchain_sim::contract::{CallCtx, Contract};
use xchain_sim::crypto::Hash;
use xchain_sim::error::ChainResult;
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::intern::InternedAsset;

use crate::escrow::{EscrowCore, EscrowResolution};

/// Deal information the CBC protocol passes to each escrow contract at escrow
/// time: the deal id, plist, the hash `h` of the definitive startDeal record,
/// and the CBC's initial validator set (Section 6.2: "passing the 3f+1
/// validators of the initial block as an extra argument to each of the deal's
/// escrow contracts").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbcDealInfo {
    /// The deal identifier `D`.
    pub deal: DealId,
    /// The participating parties.
    pub plist: Vec<PartyId>,
    /// Hash of the definitive startDeal record on the CBC.
    pub start_hash: Hash,
    /// The CBC's initial validator set.
    pub validators: ValidatorSetInfo,
}

/// The CBC escrow manager contract.
#[derive(Debug, Clone)]
pub struct CbcManager {
    core: EscrowCore,
    info: CbcDealInfo,
}

impl CbcManager {
    /// Creates the manager for one deal on one asset chain.
    pub fn new(info: CbcDealInfo) -> Self {
        CbcManager {
            core: EscrowCore::new(info.deal, info.plist.clone()),
            info,
        }
    }

    /// The configured deal information (checked by parties during validation).
    pub fn info(&self) -> &CbcDealInfo {
        &self.info
    }

    /// Read access to the escrow state.
    pub fn core(&self) -> &EscrowCore {
        &self.core
    }

    /// How the escrow resolved, if it has.
    pub fn resolution(&self) -> Option<EscrowResolution> {
        self.core.resolution()
    }

    /// Escrow phase: `escrow(D, plist, h, a, validators)`.
    pub fn escrow(&mut self, ctx: &mut CallCtx<'_>, asset: Asset) -> ChainResult<()> {
        self.core.escrow(ctx, asset)
    }

    /// Escrow phase with a pre-interned asset (plan-based engines).
    pub fn escrow_interned(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: InternedAsset,
    ) -> ChainResult<()> {
        self.core.escrow_interned(ctx, asset)
    }

    /// Transfer phase: `transfer(D, a, a', Q)`.
    pub fn transfer(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: Asset,
        to: PartyId,
    ) -> ChainResult<()> {
        self.core.transfer(ctx, asset, to)
    }

    /// Transfer phase with a pre-interned asset (plan-based engines).
    pub fn transfer_interned(
        &mut self,
        ctx: &mut CallCtx<'_>,
        asset: &InternedAsset,
        to: PartyId,
    ) -> ChainResult<()> {
        self.core.transfer_interned(ctx, asset, to)
    }

    /// Verifies a status certificate following Figure 6: unique signers, all
    /// signers are validators, at least `2f + 1` of them, each signature
    /// valid (3000 gas each). On success, resolves the escrow according to the
    /// certified status.
    pub fn resolve_with_certificate(
        &mut self,
        ctx: &mut CallCtx<'_>,
        cert: &StatusCertificate,
    ) -> ChainResult<()> {
        ctx.require(self.core.is_active(), "deal already resolved")?;
        ctx.require(
            cert.deal == self.info.deal,
            "certificate is for another deal",
        )?;
        ctx.require(
            cert.start_hash == self.info.start_hash,
            "certificate references a different startDeal",
        )?;
        ctx.require(
            cert.certificate.epoch == self.info.validators.epoch,
            "certificate epoch does not match the configured validator set",
        )?;
        // Figure 6 line 6: no duplicate signers.
        let mut seen = Vec::new();
        for (vid, _) in &cert.certificate.signatures {
            ctx.require(!seen.contains(vid), "duplicate validator signature")?;
            seen.push(*vid);
        }
        // line 7: only validators vote.
        ctx.require(
            cert.certificate
                .signatures
                .iter()
                .all(|(vid, _)| self.info.validators.contains(*vid)),
            "signer is not a configured validator",
        )?;
        // line 8: enough validators vote.
        let quorum = self.info.validators.quorum();
        ctx.require(
            cert.certificate.signatures.len() >= quorum,
            "fewer than 2f+1 validator signatures",
        )?;
        // lines 9-11: verify 2f+1 signatures (expensive).
        let payload = cert.payload();
        for (vid, sig) in cert.certificate.signatures.iter().take(quorum) {
            let Some(pk) = self.info.validators.public_key_of(*vid) else {
                return ctx.require(false, "validator key missing").map(|_| ());
            };
            // Validator keys are registered on the chain under synthetic ids.
            let registered = ctx.keys().public_key_of(validator_party_id(*vid));
            ctx.require(
                registered == Some(pk),
                "validator key not registered on chain",
            )?;
            let ok = ctx.verify_signature(sig, pk, &payload)?;
            ctx.require(ok, "invalid validator signature")?;
        }
        // line 12: record and act on the outcome.
        match cert.status {
            DealStatus::Committed { .. } => self.core.distribute_commit(ctx),
            DealStatus::Aborted { .. } => self.core.distribute_abort(ctx),
            DealStatus::Active => ctx.require(false, "certificate does not decide the deal"),
        }
    }

    /// Verifies a full block-range proof: every block certificate is checked
    /// against the validator set in force (advancing at reconfiguration
    /// records whose successor sets the caller supplies), then the deal status
    /// is recomputed from the ordered votes. Far more signature verifications
    /// than the certificate path — the cost the Section 6.2 optimization avoids.
    pub fn resolve_with_block_proof(
        &mut self,
        ctx: &mut CallCtx<'_>,
        proof: &BlockProof,
        epoch_infos: &[ValidatorSetInfo],
    ) -> ChainResult<()> {
        ctx.require(self.core.is_active(), "deal already resolved")?;
        ctx.require(proof.deal == self.info.deal, "proof is for another deal")?;
        ctx.require(
            proof.start_hash == self.info.start_hash,
            "proof references a different startDeal",
        )?;
        // Charge one signature verification per signature the off-chain
        // checker examines; then validate the proof's conclusion.
        let check = proof.verify(&self.info.validators, epoch_infos, ctx.keys());
        for _ in 0..check.sig_verifications {
            ctx.charge_sig_verification()?;
        }
        let Some(status) = check.status else {
            return ctx.require(false, "block proof failed verification");
        };
        match status {
            DealStatus::Committed { .. } => self.core.distribute_commit(ctx),
            DealStatus::Aborted { .. } => self.core.distribute_abort(ctx),
            DealStatus::Active => ctx.require(false, "proof does not decide the deal"),
        }
    }
}

impl Contract for CbcManager {
    fn type_name(&self) -> &'static str {
        "cbc-manager"
    }
    fn on_install(&mut self, kinds: &xchain_sim::intern::KindTable) {
        self.core.install(kinds);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_bft::log::CbcLog;
    use xchain_sim::error::ChainError;
    use xchain_sim::ids::{ChainId, ContractId, Owner};
    use xchain_sim::ledger::Blockchain;
    use xchain_sim::time::{Duration, Time};

    struct Fixture {
        chain: Blockchain,
        contract: ContractId,
        cbc: CbcLog,
        info: CbcDealInfo,
    }

    fn fixture(f: usize) -> Fixture {
        let mut chain = Blockchain::new(ChainId(0), "coins", Duration(1));
        let plist: Vec<PartyId> = (0..3).map(PartyId).collect();
        let mut cbc = CbcLog::new(f, 21);
        cbc.validators().register_on_chain(&mut chain);
        let (_, start_hash) = cbc
            .start_deal(Time(0), plist[0], DealId(9), plist.clone())
            .unwrap();
        chain
            .mint(Owner::Party(plist[2]), &Asset::fungible("coin", 101))
            .unwrap();
        let info = CbcDealInfo {
            deal: DealId(9),
            plist: plist.clone(),
            start_hash,
            validators: cbc.initial_validators(),
        };
        let contract = chain.install(CbcManager::new(info.clone()));
        Fixture {
            chain,
            contract,
            cbc,
            info,
        }
    }

    fn escrow_and_route_coins(fx: &mut Fixture) {
        let alice = fx.info.plist[0];
        let bob = fx.info.plist[1];
        let carol = fx.info.plist[2];
        fx.chain
            .call(
                Time(0),
                Owner::Party(carol),
                fx.contract,
                |m: &mut CbcManager, ctx| m.escrow(ctx, Asset::fungible("coin", 101)),
            )
            .unwrap();
        fx.chain
            .call(
                Time(1),
                Owner::Party(carol),
                fx.contract,
                |m: &mut CbcManager, ctx| m.transfer(ctx, Asset::fungible("coin", 101), alice),
            )
            .unwrap();
        fx.chain
            .call(
                Time(2),
                Owner::Party(alice),
                fx.contract,
                |m: &mut CbcManager, ctx| m.transfer(ctx, Asset::fungible("coin", 100), bob),
            )
            .unwrap();
    }

    #[test]
    fn commit_certificate_releases_assets() {
        let mut fx = fixture(1);
        escrow_and_route_coins(&mut fx);
        for p in 0..3 {
            fx.cbc
                .vote_commit(
                    Time(10 + p as u64),
                    DealId(9),
                    fx.info.start_hash,
                    PartyId(p),
                )
                .unwrap();
        }
        let cert = fx
            .cbc
            .status_certificate(Time(20), DealId(9), fx.info.start_hash)
            .unwrap();
        let before = fx.chain.gas_usage();
        fx.chain
            .call(
                Time(30),
                Owner::Party(fx.info.plist[1]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &cert),
            )
            .unwrap();
        let delta = before.delta_to(&fx.chain.gas_usage());
        assert_eq!(delta.sig_verifications, 3); // 2f+1 with f = 1
        assert_eq!(
            fx.chain
                .assets()
                .balance(Owner::Party(fx.info.plist[1]), &"coin".into()),
            100
        );
        assert_eq!(
            fx.chain
                .assets()
                .balance(Owner::Party(fx.info.plist[0]), &"coin".into()),
            1
        );
    }

    #[test]
    fn abort_certificate_refunds_original_owner() {
        let mut fx = fixture(1);
        escrow_and_route_coins(&mut fx);
        fx.cbc
            .vote_abort(Time(5), DealId(9), fx.info.start_hash, fx.info.plist[1])
            .unwrap();
        let cert = fx
            .cbc
            .status_certificate(Time(6), DealId(9), fx.info.start_hash)
            .unwrap();
        fx.chain
            .call(
                Time(10),
                Owner::Party(fx.info.plist[2]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &cert),
            )
            .unwrap();
        assert_eq!(
            fx.chain
                .assets()
                .balance(Owner::Party(fx.info.plist[2]), &"coin".into()),
            101
        );
        assert_eq!(
            fx.chain
                .view(fx.contract, |m: &CbcManager| m.resolution())
                .unwrap(),
            Some(EscrowResolution::Aborted)
        );
    }

    #[test]
    fn active_or_tampered_certificates_rejected() {
        let mut fx = fixture(1);
        escrow_and_route_coins(&mut fx);
        // Active status does not decide the deal.
        let cert = fx
            .cbc
            .status_certificate(Time(5), DealId(9), fx.info.start_hash)
            .unwrap();
        let err = fx
            .chain
            .call(
                Time(10),
                Owner::Party(fx.info.plist[0]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &cert),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));

        // A certificate whose status was tampered with fails signature checks.
        for p in 0..3 {
            fx.cbc
                .vote_commit(
                    Time(10 + p as u64),
                    DealId(9),
                    fx.info.start_hash,
                    PartyId(p),
                )
                .unwrap();
        }
        let mut forged = fx
            .cbc
            .status_certificate(Time(20), DealId(9), fx.info.start_hash)
            .unwrap();
        forged.status = DealStatus::Aborted { decisive_index: 0 };
        let err = fx
            .chain
            .call(
                Time(30),
                Owner::Party(fx.info.plist[0]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &forged),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
        // Escrow is still active: nothing was paid out.
        assert!(fx
            .chain
            .view(fx.contract, |m: &CbcManager| m.core().is_active())
            .unwrap());
    }

    #[test]
    fn certificate_for_wrong_deal_rejected() {
        let mut fx = fixture(1);
        escrow_and_route_coins(&mut fx);
        let plist = fx.info.plist.clone();
        let (_, other_hash) = fx
            .cbc
            .start_deal(Time(0), plist[0], DealId(10), plist.clone())
            .unwrap();
        for p in &plist {
            fx.cbc
                .vote_commit(Time(3), DealId(10), other_hash, *p)
                .unwrap();
        }
        let cert = fx
            .cbc
            .status_certificate(Time(5), DealId(10), other_hash)
            .unwrap();
        let err = fx
            .chain
            .call(
                Time(10),
                Owner::Party(plist[0]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &cert),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }

    #[test]
    fn block_proof_path_resolves_and_costs_more() {
        let mut fx = fixture(1);
        escrow_and_route_coins(&mut fx);
        for p in 0..3 {
            fx.cbc
                .vote_commit(
                    Time(10 + p as u64),
                    DealId(9),
                    fx.info.start_hash,
                    PartyId(p),
                )
                .unwrap();
        }
        let proof = fx.cbc.block_proof(DealId(9), fx.info.start_hash).unwrap();
        let epoch_infos = fx.cbc.epoch_infos().to_vec();
        let before = fx.chain.gas_usage();
        fx.chain
            .call(
                Time(30),
                Owner::Party(fx.info.plist[1]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_block_proof(ctx, &proof, &epoch_infos),
            )
            .unwrap();
        let delta = before.delta_to(&fx.chain.gas_usage());
        // 4 blocks (startDeal + 3 votes), each certified by 2f+1 = 3 signatures.
        assert_eq!(delta.sig_verifications, 12);
        assert!(
            delta.sig_verifications > 3,
            "block proof costs more than a status certificate"
        );
        assert_eq!(
            fx.chain
                .assets()
                .balance(Owner::Party(fx.info.plist[1]), &"coin".into()),
            100
        );
    }

    #[test]
    fn resolution_is_terminal_even_with_conflicting_proofs() {
        let mut fx = fixture(1);
        escrow_and_route_coins(&mut fx);
        // Abort first …
        fx.cbc
            .vote_abort(Time(5), DealId(9), fx.info.start_hash, fx.info.plist[0])
            .unwrap();
        let abort_cert = fx
            .cbc
            .status_certificate(Time(6), DealId(9), fx.info.start_hash)
            .unwrap();
        fx.chain
            .call(
                Time(10),
                Owner::Party(fx.info.plist[2]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &abort_cert),
            )
            .unwrap();
        // … then the deal "commits" later on the CBC (it cannot, since the
        // abort was decisive, but even a committed-looking certificate for the
        // same deal must not re-open the escrow).
        let err = fx
            .chain
            .call(
                Time(20),
                Owner::Party(fx.info.plist[1]),
                fx.contract,
                |m: &mut CbcManager, ctx| m.resolve_with_certificate(ctx, &abort_cert),
            )
            .unwrap_err();
        assert!(matches!(err, ChainError::Require(_)));
    }
}
