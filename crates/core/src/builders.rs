//! Ready-made deal specifications: the paper's running examples and the
//! parameterised families used by the tests, examples and benchmark harness.

use xchain_sim::asset::Asset;
use xchain_sim::ids::{ChainId, DealId, PartyId};

use crate::spec::{DealSpec, EscrowSpec, TransferSpec};

/// The Figure 1 broker deal: Alice (party 0) brokers Bob's (party 1) two
/// tickets to Carol (party 2) for 101 coins, keeping a 1-coin commission.
/// Tickets live on chain 0, coins on chain 1.
pub fn broker_spec() -> DealSpec {
    broker_spec_with(DealId(1), 100, 101)
}

/// The broker deal with explicit deal id, wholesale and retail prices.
pub fn broker_spec_with(deal: DealId, wholesale: u64, retail: u64) -> DealSpec {
    let alice = PartyId(0);
    let bob = PartyId(1);
    let carol = PartyId(2);
    let tickets = ChainId(0);
    let coins = ChainId(1);
    DealSpec::new(
        deal,
        vec![alice, bob, carol],
        vec![
            EscrowSpec {
                owner: bob,
                chain: tickets,
                asset: Asset::non_fungible("ticket", [1, 2]),
            },
            EscrowSpec {
                owner: carol,
                chain: coins,
                asset: Asset::fungible("coin", retail),
            },
        ],
        vec![
            TransferSpec {
                from: bob,
                to: alice,
                chain: tickets,
                asset: Asset::non_fungible("ticket", [1, 2]),
            },
            TransferSpec {
                from: alice,
                to: carol,
                chain: tickets,
                asset: Asset::non_fungible("ticket", [1, 2]),
            },
            TransferSpec {
                from: carol,
                to: alice,
                chain: coins,
                asset: Asset::fungible("coin", retail),
            },
            TransferSpec {
                from: alice,
                to: bob,
                chain: coins,
                asset: Asset::fungible("coin", wholesale),
            },
        ],
    )
}

/// A ring deal among `n` parties: party i transfers 10 units of its own asset
/// kind (on its own chain) to party (i+1) mod n. Strongly connected for any
/// n ≥ 2; n parties, n assets, n transfers.
pub fn ring_spec(deal: DealId, n: u32) -> DealSpec {
    assert!(n >= 2, "a ring needs at least two parties");
    let parties: Vec<PartyId> = (0..n).map(PartyId).collect();
    let mut escrows = Vec::new();
    let mut transfers = Vec::new();
    for i in 0..n {
        let kind = format!("asset-{i}");
        let asset = Asset::fungible(kind.as_str(), 10);
        escrows.push(EscrowSpec {
            owner: PartyId(i),
            chain: ChainId(i),
            asset: asset.clone(),
        });
        transfers.push(TransferSpec {
            from: PartyId(i),
            to: PartyId((i + 1) % n),
            chain: ChainId(i),
            asset,
        });
    }
    DealSpec::new(deal, parties, escrows, transfers)
}

/// The Section 9 auction deal: the seller (party 0) escrows one ticket; each
/// of the `bids.len()` bidders escrows its bid in coins. The ticket goes to
/// the highest bidder, the winning bid to the seller, and losing bids return
/// to their owners (expressed as transfers only for the winner — the losers'
/// escrows simply refund on commit because they are never tentatively
/// transferred... they are, however, transferred back explicitly so the deal
/// digraph stays strongly connected).
pub fn auction_spec(deal: DealId, bids: &[u64]) -> DealSpec {
    assert!(!bids.is_empty(), "an auction needs at least one bidder");
    let seller = PartyId(0);
    let bidders: Vec<PartyId> = (1..=bids.len() as u32).map(PartyId).collect();
    let ticket_chain = ChainId(0);
    let coin_chain = ChainId(1);
    let mut parties = vec![seller];
    parties.extend(bidders.iter().copied());

    let (winner_idx, &winning_bid) = bids
        .iter()
        .enumerate()
        .max_by_key(|(i, b)| (**b, std::cmp::Reverse(*i)))
        .expect("non-empty");
    let winner = bidders[winner_idx];

    let mut escrows = vec![EscrowSpec {
        owner: seller,
        chain: ticket_chain,
        asset: Asset::non_fungible("ticket", [1]),
    }];
    let mut transfers = vec![TransferSpec {
        from: seller,
        to: winner,
        chain: ticket_chain,
        asset: Asset::non_fungible("ticket", [1]),
    }];
    for (i, (&bidder, &bid)) in bidders.iter().zip(bids.iter()).enumerate() {
        escrows.push(EscrowSpec {
            owner: bidder,
            chain: coin_chain,
            asset: Asset::fungible("coin", bid),
        });
        // Every bidder sends its bid to the seller; the seller returns the
        // losing bids. This keeps the digraph strongly connected and matches
        // the description "Alice's contract compares the bids, and transfers
        // back the losing bidder's coins and the ticket to the winning bidder".
        transfers.push(TransferSpec {
            from: bidder,
            to: seller,
            chain: coin_chain,
            asset: Asset::fungible("coin", bid),
        });
        if i != winner_idx {
            transfers.push(TransferSpec {
                from: seller,
                to: bidder,
                chain: coin_chain,
                asset: Asset::fungible("coin", bid),
            });
        }
    }
    let _ = winning_bid;
    DealSpec::new(deal, parties, escrows, transfers)
}

/// A brokered chain deal with `n` parties: party 0 is a broker with nothing to
/// escrow; parties 1..n each escrow one asset and route it through the broker
/// to the next party, paying the broker a commission of 1 unit. Produces
/// deals with n parties, n-1 assets and 2(n-1) transfers; used by the gas and
/// delay sweeps.
pub fn brokered_chain_spec(deal: DealId, n: u32, amount: u64) -> DealSpec {
    assert!(n >= 3, "a brokered chain needs at least three parties");
    let broker = PartyId(0);
    let parties: Vec<PartyId> = (0..n).map(PartyId).collect();
    let mut escrows = Vec::new();
    let mut transfers = Vec::new();
    for i in 1..n {
        let kind = format!("asset-{i}");
        let asset = Asset::fungible(kind.as_str(), amount);
        let chain = ChainId(i - 1);
        escrows.push(EscrowSpec {
            owner: PartyId(i),
            chain,
            asset: asset.clone(),
        });
        // Owner sends the full amount to the broker, who forwards most of it
        // to the next party around the cycle, keeping 1 unit as commission.
        transfers.push(TransferSpec {
            from: PartyId(i),
            to: broker,
            chain,
            asset: asset.clone(),
        });
        let next = if i + 1 < n {
            PartyId(i + 1)
        } else {
            PartyId(1)
        };
        transfers.push(TransferSpec {
            from: broker,
            to: next,
            chain,
            asset: Asset::fungible(kind.as_str(), amount.saturating_sub(1).max(1)),
        });
    }
    DealSpec::new(deal, parties, escrows, transfers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::is_well_formed;

    #[test]
    fn broker_spec_is_valid_and_well_formed() {
        let s = broker_spec();
        s.validate().unwrap();
        assert!(is_well_formed(&s));
        assert_eq!(s.n_parties(), 3);
        assert_eq!(s.n_assets(), 2);
        assert_eq!(s.n_transfers(), 4);
    }

    #[test]
    fn ring_specs_are_valid_for_various_sizes() {
        for n in 2..10 {
            let s = ring_spec(DealId(n as u64), n);
            s.validate().unwrap();
            assert!(is_well_formed(&s));
            assert_eq!(s.n_parties(), n as usize);
            assert_eq!(s.n_transfers(), n as usize);
        }
    }

    #[test]
    fn auction_spec_routes_ticket_to_highest_bidder() {
        let s = auction_spec(DealId(5), &[30, 55, 42]);
        s.validate().unwrap();
        assert!(is_well_formed(&s));
        // Winner is bidder 2 (party 2, bid 55): it receives the ticket.
        let winner = PartyId(2);
        assert!(s
            .incoming_of(winner)
            .contains(&Asset::non_fungible("ticket", [1])));
        // The seller nets the winning bid.
        let seller_in = s.incoming_of(PartyId(0));
        assert_eq!(seller_in.balance(&"coin".into()), 30 + 55 + 42);
        let seller_out = s.outgoing_of(PartyId(0));
        assert_eq!(seller_out.balance(&"coin".into()), 30 + 42);
    }

    #[test]
    fn brokered_chain_scales() {
        for n in 3..9 {
            let s = brokered_chain_spec(DealId(n as u64), n, 50);
            s.validate().unwrap();
            assert!(is_well_formed(&s));
            assert_eq!(s.n_parties(), n as usize);
            assert_eq!(s.n_assets(), (n - 1) as usize);
            assert_eq!(s.n_transfers(), 2 * (n - 1) as usize);
        }
    }
}
