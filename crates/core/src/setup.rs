//! World setup helpers shared by the protocol engines, tests, examples and the
//! benchmark harness: create the chains and parties a deal specification
//! references and mint the assets that parties are supposed to own at the
//! start.

use xchain_sim::ids::{ChainId, Owner, PartyId};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;
use xchain_sim::world::World;

use crate::error::DealError;
use crate::plan::DealPlan;
use crate::spec::DealSpec;

/// Creates a world containing every chain and party the specification
/// references, with each escrow owner already holding the asset it is supposed
/// to escrow. Chains are created with a 1-tick block interval so chain time
/// tracks world time closely; the network model is supplied by the caller.
pub fn world_for_spec(
    spec: &DealSpec,
    network: NetworkModel,
    seed: u64,
) -> Result<World, DealError> {
    let mut world = World::with_network(seed, network);
    add_chains_and_parties(&mut world, &spec.chains(), &spec.parties);
    mint_escrow_assets(&mut world, spec)?;
    Ok(world)
}

/// The world topology both builders share: one chain per referenced chain id
/// (1-tick block interval, `chain-{i}` names) and one party per referenced
/// party id. Kept in one place so plan-based and spec-based worlds can never
/// drift apart.
fn add_chains_and_parties(world: &mut World, chains: &[ChainId], parties: &[PartyId]) {
    let max_chain = chains.iter().map(|c| c.0).max().unwrap_or(0);
    for i in 0..=max_chain {
        world.add_chain(&format!("chain-{i}"), Duration(1));
    }
    let max_party = parties.iter().map(|p| p.0).max().unwrap_or(0);
    world.add_parties(max_party as usize + 1);
}

/// [`world_for_spec`] for a pre-resolved [`DealPlan`]: the world's kind table
/// starts as a [fork] of the plan's canonical table, so every id the plan
/// assigned is valid on all of this world's chains, and the escrow assets are
/// minted through the interned fast path (no name resolution during setup).
/// This is what [`crate::Deal::run`] and the sweep executor build cells from.
///
/// [fork]: xchain_sim::intern::KindTable::fork
pub fn world_for_plan(
    plan: &DealPlan,
    network: NetworkModel,
    seed: u64,
) -> Result<World, DealError> {
    let mut world = World::with_network_and_kinds(seed, network, plan.kinds().fork());
    add_chains_and_parties(&mut world, plan.chains(), &plan.spec().parties);
    for e in plan.escrows() {
        world
            .mint_interned(e.chain, Owner::Party(e.owner), &e.asset)
            .map_err(DealError::Chain)?;
    }
    Ok(world)
}

/// Advances the world clock by one sampled observation delay (bounded by the
/// worst-case delay of the network model at the current time). The protocol
/// engines use this as their single time-stepping primitive between actions.
pub fn advance_one_observation(world: &mut World) {
    let now = world.now();
    let delay = world.network().sample_delay(now, world.rng());
    world.advance_by(delay);
}

/// Mints each escrow owner's assets on the relevant chains (workload setup).
pub fn mint_escrow_assets(world: &mut World, spec: &DealSpec) -> Result<(), DealError> {
    for e in &spec.escrows {
        world
            .mint(e.chain, Owner::Party(e.owner), &e.asset)
            .map_err(DealError::Chain)?;
    }
    Ok(())
}

/// The parties of the spec that actually exist in the world, in plist order —
/// a sanity check used by the engines.
pub fn check_parties_exist(world: &World, spec: &DealSpec) -> Result<(), DealError> {
    let existing = world.party_ids();
    for p in &spec.parties {
        if !existing.contains(p) {
            return Err(DealError::Config(format!(
                "{p} does not exist in the world"
            )));
        }
    }
    Ok(())
}

/// The chains of the spec that actually exist in the world.
pub fn check_chains_exist(world: &World, spec: &DealSpec) -> Result<(), DealError> {
    for c in spec.chains() {
        if world.chain(c).is_err() {
            return Err(DealError::Config(format!(
                "{c} does not exist in the world"
            )));
        }
    }
    Ok(())
}

/// Applies the offline windows declared in party configurations to the world.
pub fn apply_offline_windows(world: &mut World, configs: &[crate::party::PartyConfig]) {
    for c in configs {
        if let Some((from, until)) = c.offline_window() {
            world.set_offline(c.id, from, until);
        }
    }
}

/// Picks a party that is online at the world's current time, preferring
/// compliant parties, to submit housekeeping transactions (timeout claims,
/// proof presentations). Returns `None` if everyone is offline.
pub fn pick_online_party(
    world: &World,
    spec: &DealSpec,
    configs: &[crate::party::PartyConfig],
) -> Option<PartyId> {
    let now = world.now();
    let available = |p: PartyId| {
        !world.is_offline(p, now) && crate::party::config_of(configs, p).strategy.is_online(now)
    };
    let compliant_first = spec
        .parties
        .iter()
        .copied()
        .filter(|&p| crate::party::config_of(configs, p).is_compliant() && available(p));
    if let Some(p) = compliant_first.into_iter().next() {
        return Some(p);
    }
    spec.parties.iter().copied().find(|&p| available(p))
}

/// Returns the chains a party must interact with under the timelock protocol
/// when it behaves compliantly: the chains of its incoming assets (votes) and
/// outgoing assets (monitoring) only. Used to verify the decentralization
/// claim of Section 5.1.
pub fn chains_touched_by(spec: &DealSpec, party: PartyId) -> Vec<ChainId> {
    let mut chains = spec.incoming_chains_of(party);
    chains.extend(spec.outgoing_chains_of(party));
    chains.sort();
    chains.dedup();
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::{Deviation, PartyConfig};
    use crate::spec::{EscrowSpec, TransferSpec};
    use xchain_sim::asset::Asset;
    use xchain_sim::ids::DealId;
    use xchain_sim::time::Time;

    fn tiny_spec() -> DealSpec {
        DealSpec::new(
            DealId(1),
            vec![PartyId(0), PartyId(1)],
            vec![
                EscrowSpec {
                    owner: PartyId(0),
                    chain: ChainId(0),
                    asset: Asset::fungible("a", 5),
                },
                EscrowSpec {
                    owner: PartyId(1),
                    chain: ChainId(1),
                    asset: Asset::fungible("b", 7),
                },
            ],
            vec![
                TransferSpec {
                    from: PartyId(0),
                    to: PartyId(1),
                    chain: ChainId(0),
                    asset: Asset::fungible("a", 5),
                },
                TransferSpec {
                    from: PartyId(1),
                    to: PartyId(0),
                    chain: ChainId(1),
                    asset: Asset::fungible("b", 7),
                },
            ],
        )
    }

    #[test]
    fn world_setup_creates_chains_parties_and_assets() {
        let spec = tiny_spec();
        let world = world_for_spec(&spec, NetworkModel::synchronous(10), 3).unwrap();
        check_parties_exist(&world, &spec).unwrap();
        check_chains_exist(&world, &spec).unwrap();
        assert!(world
            .chain(ChainId(0))
            .unwrap()
            .assets()
            .holds(Owner::Party(PartyId(0)), &Asset::fungible("a", 5)));
        assert!(world
            .chain(ChainId(1))
            .unwrap()
            .assets()
            .holds(Owner::Party(PartyId(1)), &Asset::fungible("b", 7)));
    }

    #[test]
    fn offline_windows_and_party_picking() {
        let spec = tiny_spec();
        let mut world = world_for_spec(&spec, NetworkModel::synchronous(10), 3).unwrap();
        let configs = vec![PartyConfig::deviating(
            PartyId(0),
            Deviation::OfflineDuring {
                from: Time(0),
                until: Time(100),
            },
        )];
        apply_offline_windows(&mut world, &configs);
        assert!(world.is_offline(PartyId(0), Time(50)));
        // Party 1 is compliant and online, so it is preferred.
        assert_eq!(pick_online_party(&world, &spec, &configs), Some(PartyId(1)));
        // If everyone is offline, no one can be picked.
        world.set_offline(PartyId(1), Time(0), Time(100));
        assert_eq!(pick_online_party(&world, &spec, &configs), None);
    }

    #[test]
    fn decentralization_chain_sets() {
        let spec = tiny_spec();
        assert_eq!(
            chains_touched_by(&spec, PartyId(0)),
            vec![ChainId(0), ChainId(1)]
        );
        let missing = check_parties_exist(&World::new(0), &spec);
        assert!(missing.is_err());
    }
}
