//! # xchain-sim
//!
//! Deterministic multi-blockchain simulation substrate for the reproduction of
//! *Cross-chain Deals and Adversarial Commerce* (Herlihy, Liskov, Shrira,
//! VLDB 2019).
//!
//! The crate provides everything the paper assumes of its environment, built
//! from scratch:
//!
//! * [`ledger::Blockchain`] — independent, publicly-readable ledgers tracking
//!   ownership of fungible and non-fungible assets, hosting deterministic
//!   contracts, and exposing an append-only log that parties can monitor.
//! * [`contract`] — the contract runtime with Ethereum-style gas metering
//!   (5000 gas per storage write, 3000 per signature verification, Section 7.1).
//! * [`crypto`] — simulated signatures, key directories, the streaming
//!   [`crypto::FnvHasher`], and the timelock protocol's path signatures.
//! * [`intern`] — world-owned asset-kind interning ([`intern::KindId`],
//!   [`intern::KindTable`]) so ledger and escrow hot paths work on `Copy`
//!   ids instead of cloning kind-name `String`s.
//! * [`network`] — the synchronous, eventually-synchronous (GST), and
//!   asynchronous timing models, plus offline/denial-of-service windows.
//! * [`world::World`] — the multi-chain world with a global logical clock used
//!   by the deal protocol engines in `xchain-deals`.
//!
//! The simulator is single-threaded and fully deterministic given a seed, so
//! every experiment in the benchmark harness is reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asset;
pub mod contract;
pub mod crypto;
pub mod error;
pub mod gas;
pub mod ids;
pub mod intern;
pub mod ledger;
pub mod network;
pub mod time;
pub mod world;

pub use asset::{Asset, AssetBag, AssetKind};
pub use contract::{CallCtx, Contract};
pub use crypto::{
    hash_bytes, hash_words, FnvHasher, Hash, KeyDirectory, KeyPair, PathSignature, PublicKey,
    Signature,
};
pub use error::{ChainError, ChainResult};
pub use gas::{GasMeter, GasUsage, GAS_SIG_VERIFY, GAS_STORAGE_WRITE};
pub use ids::{ChainId, ContractId, DealId, Owner, PartyId, TokenId, ValidatorId};
pub use intern::{InternedAsset, InternedBag, Interner, KindId, KindTable};
pub use ledger::{AssetLedger, Blockchain, EventTag, LogCursor, LogEntry, LogFilter};
pub use network::{NetworkModel, OfflineSchedule, OfflineWindow};
pub use time::{Duration, Time};
pub use world::World;
