//! Adversary sweeps: enumerate deviation strategies and deviating-party
//! subsets so the safety experiments cover every misbehaviour the paper
//! discusses, for both protocols.

use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::spec::DealSpec;
use xchain_sim::ids::PartyId;
use xchain_sim::time::Time;

/// Every single-party deviation strategy exercised by the safety sweep.
pub fn all_deviations(delta: u64) -> Vec<Deviation> {
    vec![
        Deviation::RefuseEscrow,
        Deviation::SkipTransfers,
        Deviation::WithholdVote,
        Deviation::NeverForward,
        Deviation::VoteAbort,
        Deviation::RejectValidation,
        Deviation::CrashAfter(Phase::Clearing),
        Deviation::CrashAfter(Phase::Escrow),
        Deviation::CrashAfter(Phase::Transfer),
        Deviation::CrashAfter(Phase::Validation),
        Deviation::OfflineDuring {
            from: Time(0),
            until: Time(delta * 50),
        },
    ]
}

/// All configurations in which exactly one party deviates, for each strategy.
pub fn single_deviator_configs(spec: &DealSpec, delta: u64) -> Vec<Vec<PartyConfig>> {
    let mut configs = Vec::new();
    for &p in &spec.parties {
        for d in all_deviations(delta) {
            configs.push(vec![PartyConfig::deviating(p, d)]);
        }
    }
    configs
}

/// Configurations in which every party except `honest` deviates with the same
/// strategy — the paper makes no assumption about how many parties deviate, so
/// the sweep includes "everyone else is malicious" cases.
pub fn all_but_one_deviate(spec: &DealSpec, honest: PartyId, delta: u64) -> Vec<Vec<PartyConfig>> {
    all_deviations(delta)
        .into_iter()
        .map(|d| {
            spec.parties
                .iter()
                .filter(|p| **p != honest)
                .map(|p| PartyConfig::deviating(*p, d))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_deals::builders::broker_spec;

    #[test]
    fn sweeps_cover_every_party_and_strategy() {
        let spec = broker_spec();
        let singles = single_deviator_configs(&spec, 100);
        assert_eq!(singles.len(), 3 * all_deviations(100).len());
        let majority = all_but_one_deviate(&spec, PartyId(0), 100);
        assert_eq!(majority.len(), all_deviations(100).len());
        assert!(majority.iter().all(|c| c.len() == 2));
    }
}
