//! Benchmark of the parallel sweep executor: the same adversarial experiment
//! matrix (specs × engines × networks × deviator scenarios) executed serially
//! (`threads(1)`) and on every available core. The two produce identical
//! `SweepOutcome`s — this bench measures the wall-clock ratio.
//!
//! Run with: `cargo bench -p xchain-bench --bench sweep` (add `--json` for
//! `BENCH_sweep.json`).

use xchain_bench::Suite;
use xchain_deals::builders::{broker_spec, ring_spec};
use xchain_harness::adversary::single_deviator_configs;
use xchain_harness::executor::available_threads;
use xchain_harness::sweep::{standard_engines, Sweep};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

fn matrix(threads: usize) -> Sweep {
    Sweep::new()
        .spec("broker", broker_spec())
        .spec("ring n=4", ring_spec(DealId(4), 4))
        .over_protocols(standard_engines(100))
        .over_networks(vec![
            ("sync".into(), NetworkModel::synchronous(100)),
            (
                "eventually sync".into(),
                NetworkModel::eventually_synchronous(500, 100, 1_000),
            ),
        ])
        .over_adversaries(|spec| {
            let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
            scenarios.extend(
                single_deviator_configs(spec, 100)
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (format!("deviator #{i}"), c)),
            );
            scenarios
        })
        .seed(42)
        .threads(threads)
}

fn main() {
    println!("sweep");
    let mut suite = Suite::from_args("sweep");
    let serial = matrix(1);
    suite.bench("sweep/matrix/serial", 3, || {
        serial.run().unwrap().points.len()
    });
    let n = available_threads();
    let parallel = matrix(n);
    suite.bench(&format!("sweep/matrix/threads{n}"), 3, || {
        parallel.run().unwrap().points.len()
    });
    suite.finish();
}
