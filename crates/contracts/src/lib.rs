//! # xchain-contracts
//!
//! The on-chain programs used by cross-chain deals, implemented against the
//! `xchain-sim` contract runtime:
//!
//! * [`escrow`] — the generic escrow manager implementing the Section 4
//!   escrow / tentative-transfer semantics (the C and A ownership maps).
//! * [`timelock`] — the timelock escrow manager of Section 5 / Figure 5:
//!   path-signature commit votes with `|p| · ∆` timeouts.
//! * [`cbc_manager`] — the CBC escrow manager of Section 6 / Figure 6:
//!   resolution by validator status certificates or block-range proofs.
//! * [`token`] / [`ticket`] — issuance contracts for the fungible coins and
//!   non-fungible tickets used by the paper's running example.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cbc_manager;
pub mod escrow;
pub mod ticket;
pub mod timelock;
pub mod token;

pub use cbc_manager::{CbcDealInfo, CbcManager};
pub use escrow::{EscrowCore, EscrowDeposit, EscrowManager, EscrowResolution};
pub use ticket::{Seat, TicketRegistry};
pub use timelock::{TimelockDealInfo, TimelockManager};
pub use token::TokenContract;
