//! Integration tests: exhaustive adversarial sweeps across both protocols,
//! expressed as one declarative `Sweep` instead of per-protocol loops.

use xchain_deals::properties::{check_conservation, check_safety, check_weak_liveness};
use xchain_harness::adversary::{all_but_one_deviate, single_deviator_configs};
use xchain_harness::sweep::{protocol_engines, Sweep};
use xchain_harness::workload::{broker_spec, ring_spec};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;

const DELTA: u64 = 100;

#[test]
fn single_deviator_sweep_holds_all_properties_for_both_protocols() {
    let outcome = Sweep::new()
        .spec("broker", broker_spec())
        .spec("ring n=4", ring_spec(DealId(11), 4))
        .over_protocols(protocol_engines())
        .over_networks(vec![(
            "synchronous".into(),
            NetworkModel::synchronous(DELTA),
        )])
        .over_adversaries(|spec| {
            single_deviator_configs(spec, DELTA)
                .into_iter()
                .enumerate()
                .map(|(i, c)| (format!("single deviator #{i}"), c))
                .collect()
        })
        .seed(1)
        .run()
        .unwrap();
    assert!(!outcome.points.is_empty());
    assert_eq!(outcome.skipped, 0);
    for p in &outcome.points {
        let label = format!("{} / {} / {}", p.spec, p.engine, p.adversary);
        assert!(
            check_safety(&p.deal, &p.configs, &p.run.outcome).holds(),
            "{label}"
        );
        assert!(
            check_weak_liveness(&p.deal, &p.configs, &p.run.outcome),
            "{label}"
        );
        assert!(check_conservation(&p.deal, &p.run.outcome), "{label}");
    }
}

#[test]
fn lone_honest_party_survives_everyone_else_deviating() {
    let outcome = Sweep::new()
        .spec("broker", broker_spec())
        .over_protocols(protocol_engines())
        .over_adversaries(|spec| {
            let mut scenarios = Vec::new();
            for &honest in &spec.parties {
                scenarios.extend(
                    all_but_one_deviate(spec, honest, DELTA)
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| (format!("honest={honest} #{i}"), c)),
                );
            }
            scenarios
        })
        .seed(7)
        .run()
        .unwrap();
    assert!(!outcome.points.is_empty());
    for p in &outcome.points {
        let report = check_safety(&p.deal, &p.configs, &p.run.outcome);
        assert!(
            report.holds(),
            "{} / {}: {:?}",
            p.engine,
            p.adversary,
            report.violations
        );
    }
}
