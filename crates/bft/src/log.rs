//! The certified blockchain (CBC): an append-only, quorum-certified shared log.
//!
//! Section 6: "there is no coordinator; instead we use a special blockchain,
//! the certified blockchain, or CBC, as a kind of shared log. … Instead of
//! voting to commit transfers of individual assets, as in the timelock
//! protocol, each party votes on the CBC whether to commit or abort the entire
//! deal. The CBC serves to record and order these votes."
//!
//! Every appended record forms a block certified by the current validator set
//! (2f+1 signatures). The log supports validator reconfiguration, censorship
//! attacks (validators ignoring selected parties, Section 9), and extraction
//! of the proofs that escrow contracts check.

use std::collections::BTreeSet;

use xchain_sim::crypto::{FnvHasher, Hash};
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::time::Time;

use crate::certificate::Certificate;
use crate::proof::{BlockProof, DealStatus, StatusCertificate};
use crate::validator::{ValidatorSet, ValidatorSetInfo};

/// One record published on the CBC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbcRecord {
    /// `startDeal(D, plist)`: records the start of a deal and its participants.
    StartDeal {
        /// The deal identifier.
        deal: DealId,
        /// The participating parties.
        plist: Vec<PartyId>,
    },
    /// `commit(D, h, X)`: party `voter` votes to commit the deal started by
    /// the startDeal entry with hash `start_hash`.
    CommitVote {
        /// The deal identifier.
        deal: DealId,
        /// Hash of the definitive startDeal record.
        start_hash: Hash,
        /// The voting party.
        voter: PartyId,
    },
    /// `abort(D, h, X)`: party `voter` votes to abort the deal.
    AbortVote {
        /// The deal identifier.
        deal: DealId,
        /// Hash of the definitive startDeal record.
        start_hash: Hash,
        /// The voting party.
        voter: PartyId,
    },
    /// A validator reconfiguration: the current set elects the set for
    /// `new_epoch` (whose membership is published alongside).
    Reconfigure {
        /// The epoch being installed.
        new_epoch: u64,
    },
}

impl CbcRecord {
    /// Canonical word encoding used for hashing and certification.
    pub fn to_words(&self) -> Vec<u64> {
        match self {
            CbcRecord::StartDeal { deal, plist } => {
                let mut w = vec![1u64, deal.0];
                w.extend(plist.iter().map(|p| p.0 as u64));
                w
            }
            CbcRecord::CommitVote {
                deal,
                start_hash,
                voter,
            } => vec![2u64, deal.0, start_hash.0, voter.0 as u64],
            CbcRecord::AbortVote {
                deal,
                start_hash,
                voter,
            } => vec![3u64, deal.0, start_hash.0, voter.0 as u64],
            CbcRecord::Reconfigure { new_epoch } => vec![4u64, *new_epoch],
        }
    }

    /// Streams the canonical word encoding into a hasher without
    /// materializing it (block hashing runs once per appended record).
    pub fn write_into(&self, h: &mut FnvHasher) {
        match self {
            CbcRecord::StartDeal { deal, plist } => {
                h.write_u64(1);
                h.write_u64(deal.0);
                for p in plist {
                    h.write_u64(p.0 as u64);
                }
            }
            CbcRecord::CommitVote {
                deal,
                start_hash,
                voter,
            } => {
                h.write_u64(2);
                h.write_u64(deal.0);
                h.write_u64(start_hash.0);
                h.write_u64(voter.0 as u64);
            }
            CbcRecord::AbortVote {
                deal,
                start_hash,
                voter,
            } => {
                h.write_u64(3);
                h.write_u64(deal.0);
                h.write_u64(start_hash.0);
                h.write_u64(voter.0 as u64);
            }
            CbcRecord::Reconfigure { new_epoch } => {
                h.write_u64(4);
                h.write_u64(*new_epoch);
            }
        }
    }

    /// Hash of the record (used as `h`, the startDeal hash). Streamed —
    /// equal to hashing [`CbcRecord::to_words`] but allocation-free.
    pub fn hash(&self) -> Hash {
        let mut h = FnvHasher::new();
        self.write_into(&mut h);
        h.finish()
    }
}

/// A record together with its position, timestamp, and quorum certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedBlock {
    /// Position in the log.
    pub index: u64,
    /// CBC time at which the record was ordered.
    pub time: Time,
    /// The record itself.
    pub record: CbcRecord,
    /// The certificate over `(index, record)` produced by the epoch's quorum.
    pub certificate: Certificate,
}

impl CertifiedBlock {
    /// The words the certificate signs: the index followed by the record words.
    /// Verification sites use this to rebuild the signed payload; issuance
    /// streams the same encoding through [`CertifiedBlock::certified_digest`].
    pub fn certified_words(index: u64, record: &CbcRecord) -> Vec<u64> {
        let mut w = vec![index];
        w.extend(record.to_words());
        w
    }

    /// The digest of [`CertifiedBlock::certified_words`], computed by
    /// streaming the index and record through an [`FnvHasher`] — the
    /// allocation-free certification path (no per-certification scratch
    /// `Vec`).
    pub fn certified_digest(index: u64, record: &CbcRecord) -> Hash {
        let mut h = FnvHasher::new();
        h.write_u64(index);
        record.write_into(&mut h);
        h.finish()
    }
}

/// Errors raised by the CBC log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbcError {
    /// The submitting party is being censored by the validators.
    Censored(PartyId),
    /// Fewer than `2f + 1` validators are willing to certify (too many
    /// Byzantine members): the CBC stalls.
    QuorumUnavailable,
    /// A vote referenced a deal or startDeal hash that is not on the log.
    UnknownDeal(DealId),
    /// The voter is not in the deal's plist (checked by validators).
    VoterNotInPlist(PartyId),
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::Censored(p) => write!(f, "CBC validators are censoring {p}"),
            CbcError::QuorumUnavailable => write!(f, "CBC cannot form a certifying quorum"),
            CbcError::UnknownDeal(d) => write!(f, "no startDeal recorded for {d}"),
            CbcError::VoterNotInPlist(p) => write!(f, "{p} is not in the deal's plist"),
        }
    }
}

impl std::error::Error for CbcError {}

/// The certified blockchain.
pub struct CbcLog {
    validators: ValidatorSet,
    /// Validator-set descriptions by epoch, including the current one, so
    /// block proofs spanning reconfigurations can be checked.
    epoch_infos: Vec<ValidatorSetInfo>,
    epoch_sets: Vec<ValidatorSet>,
    blocks: Vec<CertifiedBlock>,
    censored: BTreeSet<PartyId>,
    seed: u64,
}

impl CbcLog {
    /// Creates a CBC with fault tolerance `f` (so `3f + 1` validators).
    pub fn new(f: usize, seed: u64) -> Self {
        let validators = ValidatorSet::new(0, f, seed);
        CbcLog {
            epoch_infos: vec![validators.info()],
            epoch_sets: vec![validators.clone()],
            validators,
            blocks: Vec::new(),
            censored: BTreeSet::new(),
            seed,
        }
    }

    /// The validator set of the initial epoch: what parties pass to escrow
    /// contracts when escrowing ("passing the 3f+1 validators of the initial
    /// block as an extra argument to each of the deal's escrow contracts").
    pub fn initial_validators(&self) -> ValidatorSetInfo {
        self.epoch_infos[0].clone()
    }

    /// The current validator set description.
    pub fn current_validators(&self) -> ValidatorSetInfo {
        self.validators.info()
    }

    /// Mutable access to the current validator set (to mark members Byzantine
    /// in attack scenarios).
    pub fn validators_mut(&mut self) -> &mut ValidatorSet {
        &mut self.validators
    }

    /// The current validator set.
    pub fn validators(&self) -> &ValidatorSet {
        &self.validators
    }

    /// All epoch descriptions in order.
    pub fn epoch_infos(&self) -> &[ValidatorSetInfo] {
        &self.epoch_infos
    }

    /// Configures the validators to censor (ignore) entries submitted by a
    /// party — the censorship threat discussed in Section 9.
    pub fn censor(&mut self, party: PartyId) {
        self.censored.insert(party);
    }

    /// Stops censoring a party.
    pub fn uncensor(&mut self, party: PartyId) {
        self.censored.remove(&party);
    }

    /// The full certified log.
    pub fn blocks(&self) -> &[CertifiedBlock] {
        &self.blocks
    }

    /// Number of blocks on the log.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    fn append(
        &mut self,
        time: Time,
        submitter: Option<PartyId>,
        record: CbcRecord,
    ) -> Result<u64, CbcError> {
        if let Some(p) = submitter {
            if self.censored.contains(&p) {
                return Err(CbcError::Censored(p));
            }
        }
        let index = self.blocks.len() as u64;
        // Streaming issuance: hash the certified payload once, sign the
        // digest, and stamp it on the certificate — no scratch words `Vec`.
        let digest = CertifiedBlock::certified_digest(index, &record);
        let sigs = self
            .validators
            .quorum_sign_digest(digest)
            .ok_or(CbcError::QuorumUnavailable)?;
        let certificate = Certificate::issue(self.validators.epoch(), digest, sigs);
        self.blocks.push(CertifiedBlock {
            index,
            time,
            record,
            certificate,
        });
        Ok(index)
    }

    /// Publishes `startDeal(D, plist)` on behalf of `caller` (who must be in
    /// the plist — Section 6: "The calling party must appear in the plist").
    /// Returns the block index and the startDeal hash `h`.
    pub fn start_deal(
        &mut self,
        time: Time,
        caller: PartyId,
        deal: DealId,
        plist: Vec<PartyId>,
    ) -> Result<(u64, Hash), CbcError> {
        if !plist.contains(&caller) {
            return Err(CbcError::VoterNotInPlist(caller));
        }
        let record = CbcRecord::StartDeal { deal, plist };
        let h = record.hash();
        let index = self.append(time, Some(caller), record)?;
        Ok((index, h))
    }

    /// The definitive (earliest) startDeal record for a deal, if any.
    pub fn definitive_start(&self, deal: DealId) -> Option<&CertifiedBlock> {
        self.blocks
            .iter()
            .find(|b| matches!(&b.record, CbcRecord::StartDeal { deal: d, .. } if *d == deal))
    }

    fn plist_of(&self, deal: DealId, start_hash: Hash) -> Result<Vec<PartyId>, CbcError> {
        self.blocks
            .iter()
            .find_map(|b| match &b.record {
                CbcRecord::StartDeal { deal: d, plist }
                    if *d == deal && b.record.hash() == start_hash =>
                {
                    Some(plist.clone())
                }
                _ => None,
            })
            .ok_or(CbcError::UnknownDeal(deal))
    }

    /// Publishes a commit vote `commit(D, h, X)`.
    pub fn vote_commit(
        &mut self,
        time: Time,
        deal: DealId,
        start_hash: Hash,
        voter: PartyId,
    ) -> Result<u64, CbcError> {
        let plist = self.plist_of(deal, start_hash)?;
        if !plist.contains(&voter) {
            return Err(CbcError::VoterNotInPlist(voter));
        }
        self.append(
            time,
            Some(voter),
            CbcRecord::CommitVote {
                deal,
                start_hash,
                voter,
            },
        )
    }

    /// Publishes an abort vote `abort(D, h, X)`.
    pub fn vote_abort(
        &mut self,
        time: Time,
        deal: DealId,
        start_hash: Hash,
        voter: PartyId,
    ) -> Result<u64, CbcError> {
        let plist = self.plist_of(deal, start_hash)?;
        if !plist.contains(&voter) {
            return Err(CbcError::VoterNotInPlist(voter));
        }
        self.append(
            time,
            Some(voter),
            CbcRecord::AbortVote {
                deal,
                start_hash,
                voter,
            },
        )
    }

    /// Reconfigures the validator set: the current `2f + 1` quorum certifies
    /// the election of a fresh `3f + 1` set for the next epoch.
    pub fn reconfigure(&mut self, time: Time) -> Result<u64, CbcError> {
        let new_epoch = self.validators.epoch() + 1;
        let idx = self.append(time, None, CbcRecord::Reconfigure { new_epoch })?;
        let new_set = ValidatorSet::new(new_epoch, self.validators.f(), self.seed);
        self.epoch_infos.push(new_set.info());
        self.epoch_sets.push(new_set.clone());
        self.validators = new_set;
        Ok(idx)
    }

    /// Computes the deal's status by scanning the ordered log: committed if
    /// every party in the plist voted commit before any abort vote was
    /// recorded; aborted if some abort vote was recorded before every party
    /// had voted commit; active otherwise.
    pub fn deal_status(&self, deal: DealId, start_hash: Hash) -> Result<DealStatus, CbcError> {
        let plist = self.plist_of(deal, start_hash)?;
        let mut committed: BTreeSet<PartyId> = BTreeSet::new();
        for block in &self.blocks {
            match &block.record {
                CbcRecord::CommitVote {
                    deal: d,
                    start_hash: h,
                    voter,
                } if *d == deal && *h == start_hash => {
                    committed.insert(*voter);
                    if plist.iter().all(|p| committed.contains(p)) {
                        return Ok(DealStatus::Committed {
                            decisive_index: block.index,
                        });
                    }
                }
                CbcRecord::AbortVote {
                    deal: d,
                    start_hash: h,
                    ..
                } if *d == deal && *h == start_hash => {
                    return Ok(DealStatus::Aborted {
                        decisive_index: block.index,
                    });
                }
                _ => {}
            }
        }
        Ok(DealStatus::Active)
    }

    /// Requests a status certificate from the validators: the optimization of
    /// Section 6.2 where the quorum vouches for the deal's current state so
    /// contracts need only verify `2f + 1` signatures.
    pub fn status_certificate(
        &self,
        time: Time,
        deal: DealId,
        start_hash: Hash,
    ) -> Result<StatusCertificate, CbcError> {
        let status = self.deal_status(deal, start_hash)?;
        let payload = StatusCertificate::payload_words(deal, start_hash, &status);
        let sigs = self
            .validators
            .quorum_sign(&payload)
            .ok_or(CbcError::QuorumUnavailable)?;
        let certificate = Certificate::new(self.validators.epoch(), &payload, sigs);
        Ok(StatusCertificate {
            deal,
            start_hash,
            status,
            issued_at: time,
            certificate,
        })
    }

    /// Extracts the block-range proof for a deal: every certified block that
    /// mentions the deal (plus reconfiguration records), in log order. This is
    /// the "straightforward approach" of Section 6.2 whose verification cost
    /// the status-certificate optimization avoids.
    pub fn block_proof(&self, deal: DealId, start_hash: Hash) -> Result<BlockProof, CbcError> {
        // Ensure the deal exists.
        let _ = self.plist_of(deal, start_hash)?;
        let blocks =
            self.blocks
                .iter()
                .filter(|b| match &b.record {
                    CbcRecord::StartDeal { deal: d, .. } => *d == deal,
                    CbcRecord::CommitVote { deal: d, .. }
                    | CbcRecord::AbortVote { deal: d, .. } => *d == deal,
                    CbcRecord::Reconfigure { .. } => true,
                })
                .cloned()
                .collect();
        Ok(BlockProof {
            deal,
            start_hash,
            blocks,
        })
    }
}

impl std::fmt::Debug for CbcLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CbcLog")
            .field("epoch", &self.validators.epoch())
            .field("f", &self.validators.f())
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parties(n: u32) -> Vec<PartyId> {
        (0..n).map(PartyId).collect()
    }

    #[test]
    fn start_deal_and_votes_commit() {
        let mut cbc = CbcLog::new(1, 5);
        let plist = parties(3);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), plist.clone())
            .unwrap();
        assert_eq!(cbc.deal_status(DealId(1), h).unwrap(), DealStatus::Active);
        cbc.vote_commit(Time(1), DealId(1), h, PartyId(0)).unwrap();
        cbc.vote_commit(Time(2), DealId(1), h, PartyId(1)).unwrap();
        assert_eq!(cbc.deal_status(DealId(1), h).unwrap(), DealStatus::Active);
        let idx = cbc.vote_commit(Time(3), DealId(1), h, PartyId(2)).unwrap();
        assert_eq!(
            cbc.deal_status(DealId(1), h).unwrap(),
            DealStatus::Committed {
                decisive_index: idx
            }
        );
    }

    #[test]
    fn abort_before_full_commit_wins() {
        let mut cbc = CbcLog::new(1, 5);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(3))
            .unwrap();
        cbc.vote_commit(Time(1), DealId(1), h, PartyId(0)).unwrap();
        let idx = cbc.vote_abort(Time(2), DealId(1), h, PartyId(1)).unwrap();
        cbc.vote_commit(Time(3), DealId(1), h, PartyId(1)).unwrap();
        cbc.vote_commit(Time(4), DealId(1), h, PartyId(2)).unwrap();
        assert_eq!(
            cbc.deal_status(DealId(1), h).unwrap(),
            DealStatus::Aborted {
                decisive_index: idx
            }
        );
    }

    #[test]
    fn abort_after_commit_is_ignored() {
        let mut cbc = CbcLog::new(1, 5);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        cbc.vote_commit(Time(1), DealId(1), h, PartyId(0)).unwrap();
        let idx = cbc.vote_commit(Time(2), DealId(1), h, PartyId(1)).unwrap();
        // Rescinding after the decisive commit has no effect.
        cbc.vote_abort(Time(3), DealId(1), h, PartyId(0)).unwrap();
        assert_eq!(
            cbc.deal_status(DealId(1), h).unwrap(),
            DealStatus::Committed {
                decisive_index: idx
            }
        );
    }

    #[test]
    fn votes_require_membership_and_known_deal() {
        let mut cbc = CbcLog::new(1, 5);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        assert_eq!(
            cbc.vote_commit(Time(1), DealId(1), h, PartyId(9)),
            Err(CbcError::VoterNotInPlist(PartyId(9)))
        );
        assert_eq!(
            cbc.vote_commit(Time(1), DealId(2), h, PartyId(0)),
            Err(CbcError::UnknownDeal(DealId(2)))
        );
        assert_eq!(
            cbc.start_deal(Time(0), PartyId(5), DealId(3), parties(2)),
            Err(CbcError::VoterNotInPlist(PartyId(5)))
        );
    }

    #[test]
    fn earliest_start_deal_is_definitive() {
        let mut cbc = CbcLog::new(1, 5);
        let (i1, _) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        let (_i2, _) = cbc
            .start_deal(Time(1), PartyId(1), DealId(1), parties(3))
            .unwrap();
        assert_eq!(cbc.definitive_start(DealId(1)).unwrap().index, i1);
    }

    #[test]
    fn censorship_blocks_submissions() {
        let mut cbc = CbcLog::new(1, 5);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        cbc.censor(PartyId(1));
        assert_eq!(
            cbc.vote_commit(Time(1), DealId(1), h, PartyId(1)),
            Err(CbcError::Censored(PartyId(1)))
        );
        cbc.uncensor(PartyId(1));
        assert!(cbc.vote_commit(Time(2), DealId(1), h, PartyId(1)).is_ok());
    }

    #[test]
    fn every_block_is_certified_by_current_epoch() {
        let mut cbc = CbcLog::new(1, 5);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        cbc.vote_commit(Time(1), DealId(1), h, PartyId(0)).unwrap();
        cbc.reconfigure(Time(2)).unwrap();
        cbc.vote_commit(Time(3), DealId(1), h, PartyId(1)).unwrap();
        assert_eq!(cbc.blocks()[0].certificate.epoch, 0);
        assert_eq!(cbc.blocks()[3].certificate.epoch, 1);
        assert_eq!(cbc.epoch_infos().len(), 2);
        // certificates verify against their epoch
        let mut dir = xchain_sim::crypto::KeyDirectory::new();
        for set in &cbc.epoch_sets {
            set.register_in(&mut dir);
        }
        for block in cbc.blocks() {
            let info = &cbc.epoch_infos()[block.certificate.epoch as usize];
            let words = CertifiedBlock::certified_words(block.index, &block.record);
            assert!(block.certificate.verify(info, &words, &dir).valid);
        }
    }

    #[test]
    fn streamed_certified_digest_matches_buffered_words() {
        use xchain_sim::crypto::hash_words;
        let records = [
            CbcRecord::StartDeal {
                deal: DealId(7),
                plist: parties(3),
            },
            CbcRecord::CommitVote {
                deal: DealId(7),
                start_hash: Hash(99),
                voter: PartyId(1),
            },
            CbcRecord::AbortVote {
                deal: DealId(7),
                start_hash: Hash(99),
                voter: PartyId(2),
            },
            CbcRecord::Reconfigure { new_epoch: 4 },
        ];
        for (i, r) in records.iter().enumerate() {
            assert_eq!(
                CertifiedBlock::certified_digest(i as u64, r),
                hash_words(&CertifiedBlock::certified_words(i as u64, r)),
                "{r:?}"
            );
        }
    }

    #[test]
    fn quorum_unavailable_stalls_log() {
        let mut cbc = CbcLog::new(1, 5);
        let ids = cbc.validators().member_ids();
        cbc.validators_mut().set_byzantine(ids[0..2].to_vec());
        assert_eq!(
            cbc.start_deal(Time(0), PartyId(0), DealId(1), parties(2)),
            Err(CbcError::QuorumUnavailable)
        );
    }
}
