//! Criterion benchmark regenerating Figure 7 (delays): ring deals of varying
//! size under the delay-relevant protocol options.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xchain_deals::builders::ring_spec;
use xchain_deals::cbc::{run_cbc, CbcOptions};
use xchain_deals::setup::world_for_spec;
use xchain_deals::timelock::{run_timelock, TimelockOptions};
use xchain_sim::ids::DealId;
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_delays");
    group.sample_size(10);
    for n in [3u32, 6, 9] {
        let spec = ring_spec(DealId(n as u64), n);
        group.bench_with_input(BenchmarkId::new("timelock_forwarded", n), &spec, |b, spec| {
            b.iter(|| {
                let mut world = world_for_spec(spec, NetworkModel::synchronous(100), 2).unwrap();
                run_timelock(&mut world, spec, &[], &TimelockOptions::default()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("timelock_broadcast", n), &spec, |b, spec| {
            b.iter(|| {
                let mut world = world_for_spec(spec, NetworkModel::synchronous(100), 2).unwrap();
                let opts = TimelockOptions {
                    altruistic_broadcast: true,
                    concurrent_transfers: true,
                    delta: Duration(100),
                };
                run_timelock(&mut world, spec, &[], &opts).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cbc", n), &spec, |b, spec| {
            b.iter(|| {
                let mut world = world_for_spec(spec, NetworkModel::synchronous(100), 2).unwrap();
                run_cbc(&mut world, spec, &[], &CbcOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
