//! Ethereum-style gas metering.
//!
//! Section 7.1 of the paper: "gas costs are dominated by two kinds of
//! operations: writing to long-lived storage is (usually) 5000 gas, and each
//! signature verification is 3000 gas." The meter charges exactly those costs
//! and additionally tracks *counts* of each operation class so the Figure 4
//! experiments can report both raw gas and the asymptotic drivers
//! (storage writes, signature verifications).

use std::ops::{Add, AddAssign};

/// Gas charged per write to long-lived contract storage.
pub const GAS_STORAGE_WRITE: u64 = 5_000;
/// Gas charged per signature verification performed by a contract.
pub const GAS_SIG_VERIFY: u64 = 3_000;
/// Gas charged per read from long-lived contract storage.
pub const GAS_STORAGE_READ: u64 = 200;
/// Gas charged per event/log entry appended to the chain.
pub const GAS_LOG_ENTRY: u64 = 375;
/// Gas charged per unit of miscellaneous computation (arithmetic, control flow).
pub const GAS_COMPUTE_STEP: u64 = 5;
/// Base gas charged for every externally-submitted call (intrinsic cost).
pub const GAS_BASE_CALL: u64 = 21_000;

/// A breakdown of gas consumption by operation class.
///
/// `GasUsage` is additive, so per-call receipts can be summed into per-phase
/// and per-deal totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GasUsage {
    /// Number of writes to long-lived storage.
    pub storage_writes: u64,
    /// Number of reads from long-lived storage.
    pub storage_reads: u64,
    /// Number of signature verifications.
    pub sig_verifications: u64,
    /// Number of log entries emitted.
    pub log_entries: u64,
    /// Number of miscellaneous compute steps.
    pub compute_steps: u64,
    /// Number of externally-submitted calls (each paying the intrinsic cost).
    pub calls: u64,
}

impl GasUsage {
    /// The zero usage.
    pub const ZERO: GasUsage = GasUsage {
        storage_writes: 0,
        storage_reads: 0,
        sig_verifications: 0,
        log_entries: 0,
        compute_steps: 0,
        calls: 0,
    };

    /// Total gas implied by the breakdown, using the Section 7.1 cost model.
    pub fn total(&self) -> u64 {
        self.storage_writes * GAS_STORAGE_WRITE
            + self.storage_reads * GAS_STORAGE_READ
            + self.sig_verifications * GAS_SIG_VERIFY
            + self.log_entries * GAS_LOG_ENTRY
            + self.compute_steps * GAS_COMPUTE_STEP
            + self.calls * GAS_BASE_CALL
    }

    /// Gas attributable to storage writes only (the paper reports "O(m) writes").
    pub fn write_gas(&self) -> u64 {
        self.storage_writes * GAS_STORAGE_WRITE
    }

    /// Gas attributable to signature verification only (the paper reports
    /// "O(mn^2) sig. ver." for the timelock commit and "O(m(2f+1))" for CBC).
    pub fn sig_gas(&self) -> u64 {
        self.sig_verifications * GAS_SIG_VERIFY
    }

    /// Difference between two cumulative snapshots (`later - self`), used to
    /// attribute gas to a protocol phase.
    pub fn delta_to(&self, later: &GasUsage) -> GasUsage {
        GasUsage {
            storage_writes: later.storage_writes - self.storage_writes,
            storage_reads: later.storage_reads - self.storage_reads,
            sig_verifications: later.sig_verifications - self.sig_verifications,
            log_entries: later.log_entries - self.log_entries,
            compute_steps: later.compute_steps - self.compute_steps,
            calls: later.calls - self.calls,
        }
    }
}

impl Add for GasUsage {
    type Output = GasUsage;
    fn add(self, rhs: GasUsage) -> GasUsage {
        GasUsage {
            storage_writes: self.storage_writes + rhs.storage_writes,
            storage_reads: self.storage_reads + rhs.storage_reads,
            sig_verifications: self.sig_verifications + rhs.sig_verifications,
            log_entries: self.log_entries + rhs.log_entries,
            compute_steps: self.compute_steps + rhs.compute_steps,
            calls: self.calls + rhs.calls,
        }
    }
}

impl AddAssign for GasUsage {
    fn add_assign(&mut self, rhs: GasUsage) {
        *self = *self + rhs;
    }
}

/// A mutable gas meter attached to each blockchain. Contract execution charges
/// the meter through [`crate::contract::CallCtx`]; callers read cumulative
/// usage snapshots to attribute cost per phase.
#[derive(Debug, Clone, Default)]
pub struct GasMeter {
    usage: GasUsage,
    limit: Option<u64>,
}

impl GasMeter {
    /// Creates an unmetered (no limit) gas meter.
    pub fn unlimited() -> Self {
        GasMeter {
            usage: GasUsage::ZERO,
            limit: None,
        }
    }

    /// Creates a meter that fails calls once `limit` total gas is exceeded.
    pub fn with_limit(limit: u64) -> Self {
        GasMeter {
            usage: GasUsage::ZERO,
            limit: Some(limit),
        }
    }

    /// Cumulative usage so far.
    pub fn usage(&self) -> GasUsage {
        self.usage
    }

    /// Cumulative total gas so far.
    pub fn total(&self) -> u64 {
        self.usage.total()
    }

    fn check_limit(&self) -> Result<(), (u64, u64)> {
        if let Some(limit) = self.limit {
            let used = self.usage.total();
            if used > limit {
                return Err((used, limit));
            }
        }
        Ok(())
    }

    /// Charges one storage write.
    pub fn charge_storage_write(&mut self) -> Result<(), (u64, u64)> {
        self.usage.storage_writes += 1;
        self.check_limit()
    }

    /// Charges `n` storage writes.
    pub fn charge_storage_writes(&mut self, n: u64) -> Result<(), (u64, u64)> {
        self.usage.storage_writes += n;
        self.check_limit()
    }

    /// Charges one storage read.
    pub fn charge_storage_read(&mut self) -> Result<(), (u64, u64)> {
        self.usage.storage_reads += 1;
        self.check_limit()
    }

    /// Charges one signature verification.
    pub fn charge_sig_verify(&mut self) -> Result<(), (u64, u64)> {
        self.usage.sig_verifications += 1;
        self.check_limit()
    }

    /// Charges one emitted log entry.
    pub fn charge_log_entry(&mut self) -> Result<(), (u64, u64)> {
        self.usage.log_entries += 1;
        self.check_limit()
    }

    /// Charges `n` miscellaneous compute steps.
    pub fn charge_compute(&mut self, n: u64) -> Result<(), (u64, u64)> {
        self.usage.compute_steps += n;
        self.check_limit()
    }

    /// Charges the intrinsic cost of one externally-submitted call.
    pub fn charge_call(&mut self) -> Result<(), (u64, u64)> {
        self.usage.calls += 1;
        self.check_limit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_follow_paper_cost_model() {
        let u = GasUsage {
            storage_writes: 4,
            storage_reads: 0,
            sig_verifications: 2,
            log_entries: 0,
            compute_steps: 0,
            calls: 0,
        };
        assert_eq!(u.total(), 4 * 5_000 + 2 * 3_000);
        assert_eq!(u.write_gas(), 20_000);
        assert_eq!(u.sig_gas(), 6_000);
    }

    #[test]
    fn usage_is_additive_and_diffable() {
        let a = GasUsage {
            storage_writes: 1,
            sig_verifications: 2,
            ..GasUsage::ZERO
        };
        let b = GasUsage {
            storage_writes: 3,
            storage_reads: 1,
            ..GasUsage::ZERO
        };
        let sum = a + b;
        assert_eq!(sum.storage_writes, 4);
        assert_eq!(sum.sig_verifications, 2);
        assert_eq!(a.delta_to(&sum), b);
    }

    #[test]
    fn meter_charges_accumulate() {
        let mut m = GasMeter::unlimited();
        m.charge_storage_write().unwrap();
        m.charge_storage_write().unwrap();
        m.charge_sig_verify().unwrap();
        m.charge_call().unwrap();
        assert_eq!(m.usage().storage_writes, 2);
        assert_eq!(m.usage().sig_verifications, 1);
        assert_eq!(m.usage().calls, 1);
        assert_eq!(m.total(), 2 * 5_000 + 3_000 + 21_000);
    }

    #[test]
    fn meter_limit_trips() {
        let mut m = GasMeter::with_limit(9_999);
        m.charge_storage_write().unwrap(); // 5 000
        let err = m.charge_storage_write().unwrap_err(); // 10 000 > 9 999
        assert_eq!(err, (10_000, 9_999));
    }
}
