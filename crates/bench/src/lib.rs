//! Benchmark support for the workspace: a tiny, dependency-free timing
//! harness used by the `benches/` binaries (the build environment has no
//! crates.io access, so criterion is unavailable; the benches are plain
//! `harness = false` executables instead).
//!
//! Each bench binary builds a [`Suite`], runs its measurements through
//! [`Suite::bench`], and calls [`Suite::finish`]. Besides the criterion-style
//! stdout lines (now reporting both the best and the **median** repetition),
//! passing `--json` to the binary writes the results as
//! `BENCH_<suite>.json` at the repository root — an array of
//! `{"name", "ns_per_iter", "median_ns", "iters"}` records — so the perf
//! trajectory can be tracked across PRs (see `BENCH_baseline.json`), and
//! passing `--diff BENCH_baseline.json` prints a regression table comparing
//! the fresh run against the committed baseline (report-only: the
//! `bench-baseline` CI job never fails on timing). Adding
//! `--fail-above <pct>` opts into gating: the process exits non-zero if any
//! baseline benchmark regressed by more than `pct` percent — for local perf
//! work and dedicated hardware, not the shared CI runners.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// How many timed repetitions each measurement runs (the best and the median
/// of these are reported).
const REPS: usize = 3;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, e.g. `"fig4_gas/timelock/3"`.
    pub name: String,
    /// Best-of-reps nanoseconds per iteration (damps scheduler noise).
    pub ns_per_iter: f64,
    /// Median-of-reps nanoseconds per iteration (robust central tendency).
    pub median_ns: f64,
    /// Iterations per repetition.
    pub iters: u32,
}

/// Times `f` over `iters` iterations × [`REPS`] repetitions (after warmup)
/// and returns the per-iteration statistics, printing a criterion-style line.
pub fn measure<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    for _ in 0..iters.div_ceil(10).max(1) {
        black_box(f());
    }
    let mut reps = [0f64; REPS];
    for rep in reps.iter_mut() {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        *rep = start.elapsed().as_nanos() as f64 / iters as f64;
    }
    reps.sort_by(|a, b| a.total_cmp(b));
    let best = reps[0];
    let median = reps[REPS / 2];
    println!("{name:<55} {best:>14.0} ns/iter (median {median:>10.0}) ({iters} iters)");
    BenchResult {
        name: name.to_string(),
        ns_per_iter: best,
        median_ns: median,
        iters,
    }
}

/// Times `f` and prints a criterion-style `name ... ns/iter` line.
/// Standalone convenience wrapper around [`measure`] for callers that do not
/// need a [`Suite`].
pub fn bench<T>(name: &str, iters: u32, f: impl FnMut() -> T) {
    measure(name, iters, f);
}

/// A named collection of benchmark results with optional JSON output and
/// baseline diffing.
#[derive(Debug)]
pub struct Suite {
    name: String,
    json: bool,
    diff_against: Option<PathBuf>,
    fail_above: Option<f64>,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Creates the suite for one bench binary, reading the process arguments:
    /// `--json` enables writing `BENCH_<name>.json` on [`Suite::finish`];
    /// `--diff <baseline.json>` (or `--diff=<baseline.json>`) compares the
    /// fresh run against a committed baseline and prints a regression table
    /// (report-only by default — timing never fails the run). Relative
    /// baseline paths are resolved against the repository root.
    ///
    /// `--fail-above <pct>` (or `--fail-above=<pct>`) opts into gating: if
    /// any benchmark present in the `--diff` baseline regressed by more than
    /// `pct` percent, [`Suite::finish`] exits with a non-zero status after
    /// printing the table. The `bench-baseline` CI job deliberately does
    /// *not* pass it (timing on shared runners is noisy); it exists for
    /// local perf work and dedicated hardware.
    pub fn from_args(name: &str) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let json = args.iter().any(|a| a == "--json");
        let mut diff_against = None;
        let mut fail_above = None;
        for (i, a) in args.iter().enumerate() {
            if let Some(path) = a.strip_prefix("--diff=") {
                diff_against = Some(resolve_baseline(path));
            } else if a == "--diff" {
                if let Some(path) = args.get(i + 1) {
                    diff_against = Some(resolve_baseline(path));
                }
            } else if let Some(pct) = a.strip_prefix("--fail-above=") {
                fail_above = Some(parse_threshold(pct));
            } else if a == "--fail-above" {
                if let Some(pct) = args.get(i + 1) {
                    fail_above = Some(parse_threshold(pct));
                }
            }
        }
        Suite {
            name: name.to_string(),
            json,
            diff_against,
            fail_above,
            results: Vec::new(),
        }
    }

    /// Runs and records one measurement (see [`measure`]).
    pub fn bench<T>(&mut self, name: &str, iters: u32, f: impl FnMut() -> T) -> &BenchResult {
        let r = measure(name, iters, f);
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// The results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes `BENCH_<suite>.json` at the repository root when the binary was
    /// invoked with `--json`, and prints the baseline regression table when
    /// it was invoked with `--diff <baseline.json>`.
    pub fn finish(&self) {
        if self.json {
            let path = json_path(&self.name);
            std::fs::write(&path, render_json(&self.results))
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("wrote {}", path.display());
        }
        let Some(baseline_path) = &self.diff_against else {
            if self.fail_above.is_some() {
                // Gating without a baseline to gate against is an operator
                // error, not a pass.
                eprintln!("--fail-above requires --diff <baseline.json>");
                std::process::exit(2);
            }
            return;
        };
        match std::fs::read_to_string(baseline_path) {
            Ok(json) => {
                let baseline = parse_results(&json);
                print!("{}", render_diff(&self.results, &baseline));
                if let Some(threshold) = self.fail_above {
                    if let Some((name, delta)) = worst_regression(&self.results, &baseline) {
                        if delta > threshold {
                            println!(
                                "FAIL: {name} regressed {delta:+.1}% \
                                 (--fail-above {threshold}%)"
                            );
                            std::process::exit(1);
                        }
                    }
                    println!("ok: no regression above {threshold}% vs the baseline");
                }
            }
            // Without gating, a missing or unreadable baseline is a note,
            // never a failure; with --fail-above in force it must abort —
            // exiting 0 here would skip the gate the operator asked for.
            Err(e) => {
                println!("no baseline at {}: {e}", baseline_path.display());
                if self.fail_above.is_some() {
                    eprintln!("--fail-above: cannot gate without a readable baseline");
                    std::process::exit(2);
                }
            }
        }
    }
}

/// The largest relative slowdown among benchmarks present in both runs, as
/// `(name, +pct)`. `None` if nothing overlaps. Used by `--fail-above`.
pub fn worst_regression(
    current: &[BenchResult],
    baseline: &[BenchResult],
) -> Option<(String, f64)> {
    current
        .iter()
        .filter_map(|r| {
            let base = baseline.iter().find(|b| b.name == r.name)?;
            if base.ns_per_iter <= 0.0 {
                return None;
            }
            let delta = (r.ns_per_iter - base.ns_per_iter) / base.ns_per_iter * 100.0;
            Some((r.name.clone(), delta))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Parses a `--fail-above` operand. A malformed threshold aborts the run
/// loudly: silently ignoring it would disable gating the operator explicitly
/// asked for.
fn parse_threshold(pct: &str) -> f64 {
    pct.parse().unwrap_or_else(|_| {
        eprintln!("--fail-above expects a percentage (e.g. 10), got '{pct}'");
        std::process::exit(2);
    })
}

/// Resolves a `--diff` operand: absolute paths are used as given, relative
/// ones (the committed `BENCH_baseline.json`) against the repository root.
fn resolve_baseline(path: &str) -> PathBuf {
    let p = PathBuf::from(path);
    if p.is_absolute() {
        p
    } else {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(p)
    }
}

/// Parses a `BENCH_*.json` report produced by [`render_json`] back into
/// results (hand-rolled: no serde in this sandbox). Tolerant of unknown
/// fields; records missing a name or `ns_per_iter` are skipped.
pub fn parse_results(json: &str) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let Some(ns_per_iter) = extract_num(line, "ns_per_iter") else {
            continue;
        };
        out.push(BenchResult {
            name,
            ns_per_iter,
            median_ns: extract_num(line, "median_ns").unwrap_or(ns_per_iter),
            iters: extract_num(line, "iters").unwrap_or(0.0) as u32,
        });
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // Names are escaped by render_json (backslash + quote only).
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                if let Some(escaped) = chars.next() {
                    value.push(escaped);
                }
            }
            '"' => return Some(value),
            _ => value.push(c),
        }
    }
    None
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    rest.parse().ok()
}

/// Renders the regression table comparing a fresh run against a baseline:
/// one row per benchmark present in both, with the relative change and a
/// marker on regressions beyond ±5%. Purely informational — callers (the
/// `bench-baseline` CI job) never fail on timing.
pub fn render_diff(current: &[BenchResult], baseline: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n{:<55} {:>14} {:>14} {:>9}\n",
        "vs baseline", "baseline ns", "current ns", "delta"
    ));
    let mut missing = 0usize;
    for r in current {
        let Some(base) = baseline.iter().find(|b| b.name == r.name) else {
            missing += 1;
            continue;
        };
        let delta = if base.ns_per_iter > 0.0 {
            (r.ns_per_iter - base.ns_per_iter) / base.ns_per_iter * 100.0
        } else {
            0.0
        };
        let marker = if delta > 5.0 {
            "  << regression"
        } else if delta < -5.0 {
            "  << improvement"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<55} {:>14.0} {:>14.0} {:>+8.1}%{}\n",
            r.name, base.ns_per_iter, r.ns_per_iter, delta, marker
        ));
    }
    if missing > 0 {
        out.push_str(&format!("({missing} benchmark(s) not in baseline)\n"));
    }
    out
}

/// The repo-root path of a suite's JSON report.
fn json_path(suite: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(format!("BENCH_{suite}.json"))
}

/// Renders results as a JSON array (hand-rolled: no serde in this sandbox).
/// Bench names are plain ASCII identifiers/paths, so escaping quotes and
/// backslashes suffices.
pub fn render_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"median_ns\": {:.1}, \"iters\": {}}}{}\n",
            name,
            r.ns_per_iter,
            r.median_ns,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut count = 0u64;
        bench("smoke", 10, || {
            count += 1;
            count
        });
        // 1 warmup + 3 × 10 measured iterations.
        assert_eq!(count, 31);
    }

    #[test]
    fn measure_yields_ordered_statistics() {
        let r = measure("stats", 5, || std::hint::black_box(40 + 2));
        assert_eq!(r.iters, 5);
        assert!(r.ns_per_iter >= 0.0);
        assert!(r.median_ns >= r.ns_per_iter, "median is at least the best");
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let results = vec![
            BenchResult {
                name: "a/b\"c".into(),
                ns_per_iter: 1.25,
                median_ns: 2.0,
                iters: 7,
            },
            BenchResult {
                name: "d".into(),
                ns_per_iter: 3.0,
                median_ns: 3.0,
                iters: 9,
            },
        ];
        let json = render_json(&results);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"name\": \"a/b\\\"c\""));
        assert!(json.contains("\"ns_per_iter\": 1.2"));
        assert!(json.contains("\"iters\": 9"));
        // exactly one separator comma between the two records
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn worst_regression_finds_the_biggest_slowdown() {
        let mk = |name: &str, ns: f64| BenchResult {
            name: name.into(),
            ns_per_iter: ns,
            median_ns: ns,
            iters: 1,
        };
        let baseline = vec![mk("a", 100.0), mk("b", 100.0), mk("c", 100.0)];
        let current = vec![
            mk("a", 107.0),
            mk("b", 130.0),
            mk("c", 60.0),
            mk("new", 5.0),
        ];
        let (name, delta) = worst_regression(&current, &baseline).unwrap();
        assert_eq!(name, "b");
        assert!((delta - 30.0).abs() < 1e-9);
        // Nothing in common → no verdict.
        assert!(worst_regression(&[mk("x", 1.0)], &baseline).is_none());
        // All faster → the "worst" is still the max delta (negative).
        let (_, delta) = worst_regression(&[mk("c", 60.0)], &baseline).unwrap();
        assert!(delta < 0.0);
    }

    #[test]
    fn suite_collects_results() {
        let mut suite = Suite {
            name: "test".into(),
            json: false,
            diff_against: None,
            fail_above: None,
            results: Vec::new(),
        };
        suite.bench("one", 3, || 1);
        suite.bench("two", 3, || 2);
        assert_eq!(suite.results().len(), 2);
        assert_eq!(suite.results()[0].name, "one");
        suite.finish(); // json disabled: writes nothing, must not panic
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let results = vec![
            BenchResult {
                name: "suite/a\"b".into(),
                ns_per_iter: 120.5,
                median_ns: 130.0,
                iters: 50,
            },
            BenchResult {
                name: "suite/plain".into(),
                ns_per_iter: 9.0,
                median_ns: 9.5,
                iters: 100,
            },
        ];
        let parsed = parse_results(&render_json(&results));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "suite/a\"b");
        assert_eq!(parsed[0].ns_per_iter, 120.5);
        assert_eq!(parsed[0].median_ns, 130.0);
        assert_eq!(parsed[1].iters, 100);
    }

    #[test]
    fn committed_baseline_parses() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_baseline.json"
        ))
        .expect("committed baseline");
        let baseline = parse_results(&json);
        assert!(baseline.len() > 10, "got {} records", baseline.len());
        assert!(baseline
            .iter()
            .any(|r| r.name == "protocol_micro/fig3_broker_deal_timelock"));
    }

    #[test]
    fn diff_table_flags_regressions_and_improvements() {
        let base = |name: &str, ns: f64| BenchResult {
            name: name.into(),
            ns_per_iter: ns,
            median_ns: ns,
            iters: 1,
        };
        let baseline = vec![
            base("same", 100.0),
            base("slower", 100.0),
            base("faster", 100.0),
        ];
        let current = vec![
            base("same", 102.0),
            base("slower", 150.0),
            base("faster", 50.0),
            base("new-bench", 10.0),
        ];
        let table = render_diff(&current, &baseline);
        assert!(table.contains("slower"));
        assert!(table.contains("<< regression"));
        assert!(table.contains("<< improvement"));
        assert!(table.contains("+50.0%"));
        assert!(table.contains("-50.0%"));
        assert!(table.contains("1 benchmark(s) not in baseline"));
        // The unchanged row carries no marker.
        let same_line = table.lines().find(|l| l.starts_with("same")).unwrap();
        assert!(!same_line.contains("<<"));
    }
}
