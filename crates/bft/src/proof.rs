//! Cross-chain proofs of commit and abort (Section 6.2).
//!
//! Escrow contracts on asset blockchains cannot read the CBC; a party claiming
//! an asset (or a refund) must present evidence that the deal committed (or
//! aborted) on the CBC. Two forms are implemented:
//!
//! * [`StatusCertificate`] — the optimized form: the CBC's validator quorum
//!   signs the deal's current status, so the contract verifies `2f + 1`
//!   signatures.
//! * [`BlockProof`] — the straightforward form: the certified blocks
//!   mentioning the deal (plus reconfigurations), which the contract replays
//!   to determine the decisive vote. Much more expensive to verify, which is
//!   exactly the trade-off the paper describes.

use xchain_sim::crypto::{Hash, KeyDirectory};
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::time::Time;

use crate::certificate::Certificate;
use crate::log::{CbcRecord, CertifiedBlock};
use crate::validator::ValidatorSetInfo;

/// The state of a deal as recorded on the CBC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DealStatus {
    /// Not yet decided: neither a full set of commit votes nor an abort vote.
    Active,
    /// Every party voted commit before any abort vote; the vote at
    /// `decisive_index` completed the set.
    Committed {
        /// Log index of the decisive (final missing) commit vote.
        decisive_index: u64,
    },
    /// Some party voted abort before every party had voted commit.
    Aborted {
        /// Log index of the decisive abort vote.
        decisive_index: u64,
    },
}

impl DealStatus {
    /// True if the deal committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, DealStatus::Committed { .. })
    }

    /// True if the deal aborted.
    pub fn is_aborted(&self) -> bool {
        matches!(self, DealStatus::Aborted { .. })
    }

    /// Numeric tag used in certified payloads.
    pub fn tag(&self) -> u64 {
        match self {
            DealStatus::Active => 0,
            DealStatus::Committed { .. } => 1,
            DealStatus::Aborted { .. } => 2,
        }
    }
}

/// A validator-quorum certificate over the deal's status — the proof form the
/// CBC manager contract checks in the common case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusCertificate {
    /// The deal.
    pub deal: DealId,
    /// The definitive startDeal hash.
    pub start_hash: Hash,
    /// The certified status.
    pub status: DealStatus,
    /// When the certificate was issued (CBC time).
    pub issued_at: Time,
    /// The quorum certificate over [`Self::payload_words`].
    pub certificate: Certificate,
}

impl StatusCertificate {
    /// The canonical payload the validators sign.
    pub fn payload_words(deal: DealId, start_hash: Hash, status: &DealStatus) -> Vec<u64> {
        let decisive = match status {
            DealStatus::Active => 0,
            DealStatus::Committed { decisive_index } | DealStatus::Aborted { decisive_index } => {
                *decisive_index
            }
        };
        vec![0xCE27u64, deal.0, start_hash.0, status.tag(), decisive]
    }

    /// The payload of *this* certificate.
    pub fn payload(&self) -> Vec<u64> {
        Self::payload_words(self.deal, self.start_hash, &self.status)
    }

    /// Verifies the certificate against a validator set (gas-free helper used
    /// off-chain; the on-chain path goes through the CBC manager contract so
    /// each signature verification is charged).
    pub fn verify(&self, validators: &ValidatorSetInfo, keys: &KeyDirectory) -> bool {
        self.certificate
            .verify(validators, &self.payload(), keys)
            .valid
    }
}

/// The straightforward proof: all certified blocks mentioning the deal, plus
/// reconfiguration blocks, in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProof {
    /// The deal.
    pub deal: DealId,
    /// The definitive startDeal hash.
    pub start_hash: Hash,
    /// The certified blocks, in log order.
    pub blocks: Vec<CertifiedBlock>,
}

/// Result of verifying a [`BlockProof`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockProofCheck {
    /// The status implied by the proof, if the proof verified.
    pub status: Option<DealStatus>,
    /// Total signature verifications performed (the contract pays 3000 gas each).
    pub sig_verifications: u64,
}

impl BlockProof {
    /// Replays the proof: verifies every block's certificate against the
    /// epoch in force (starting from `initial_validators` and advancing at
    /// each Reconfigure record whose new set is provided in `epoch_infos`),
    /// then computes the deal status from the ordered votes.
    ///
    /// Returns the implied status and the number of signature verifications
    /// performed; `status == None` means the proof is invalid.
    pub fn verify(
        &self,
        initial_validators: &ValidatorSetInfo,
        epoch_infos: &[ValidatorSetInfo],
        keys: &KeyDirectory,
    ) -> BlockProofCheck {
        let mut current = initial_validators.clone();
        let mut sig_verifications = 0u64;
        let mut plist: Option<Vec<PartyId>> = None;
        let mut committed: Vec<PartyId> = Vec::new();
        let mut status = DealStatus::Active;
        let mut last_index: Option<u64> = None;

        for block in &self.blocks {
            // indices must be strictly increasing (log order).
            if let Some(prev) = last_index {
                if block.index <= prev {
                    return BlockProofCheck {
                        status: None,
                        sig_verifications,
                    };
                }
            }
            last_index = Some(block.index);

            let words = CertifiedBlock::certified_words(block.index, &block.record);
            let check = block.certificate.verify(&current, &words, keys);
            sig_verifications += check.sig_verifications;
            if !check.valid {
                return BlockProofCheck {
                    status: None,
                    sig_verifications,
                };
            }

            match &block.record {
                CbcRecord::StartDeal { deal, plist: p }
                    if *deal == self.deal
                        && plist.is_none()
                        && block.record.hash() == self.start_hash =>
                {
                    plist = Some(p.clone());
                }
                CbcRecord::CommitVote {
                    deal,
                    start_hash,
                    voter,
                } if *deal == self.deal && *start_hash == self.start_hash => {
                    if let Some(pl) = &plist {
                        if status == DealStatus::Active && pl.contains(voter) {
                            if !committed.contains(voter) {
                                committed.push(*voter);
                            }
                            if pl.iter().all(|p| committed.contains(p)) {
                                status = DealStatus::Committed {
                                    decisive_index: block.index,
                                };
                            }
                        }
                    }
                }
                CbcRecord::AbortVote {
                    deal, start_hash, ..
                } if *deal == self.deal
                    && *start_hash == self.start_hash
                    && plist.is_some()
                    && status == DealStatus::Active =>
                {
                    status = DealStatus::Aborted {
                        decisive_index: block.index,
                    };
                }
                CbcRecord::Reconfigure { new_epoch } => {
                    match epoch_infos.iter().find(|i| i.epoch == *new_epoch) {
                        Some(next) => current = next.clone(),
                        None => {
                            return BlockProofCheck {
                                status: None,
                                sig_verifications,
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        if plist.is_none() {
            return BlockProofCheck {
                status: None,
                sig_verifications,
            };
        }
        BlockProofCheck {
            status: Some(status),
            sig_verifications,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::CbcLog;
    use xchain_sim::ids::PartyId;

    fn parties(n: u32) -> Vec<PartyId> {
        (0..n).map(PartyId).collect()
    }

    fn directory(cbc: &CbcLog) -> KeyDirectory {
        let mut dir = KeyDirectory::new();
        // register all epochs' validators
        for _info in cbc.epoch_infos() {
            // epoch sets are not public; re-register via current + initial sets
        }
        cbc.validators().register_in(&mut dir);
        dir
    }

    #[test]
    fn status_certificate_roundtrip() {
        let mut cbc = CbcLog::new(2, 9);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(4), parties(3))
            .unwrap();
        for p in 0..3 {
            cbc.vote_commit(Time(p as u64 + 1), DealId(4), h, PartyId(p))
                .unwrap();
        }
        let cert = cbc.status_certificate(Time(5), DealId(4), h).unwrap();
        assert!(cert.status.is_committed());
        let dir = directory(&cbc);
        assert!(cert.verify(&cbc.current_validators(), &dir));
        assert!(cert.verify(&cbc.initial_validators(), &dir));

        // Tampering with the status breaks verification.
        let mut forged = cert.clone();
        forged.status = DealStatus::Aborted { decisive_index: 0 };
        assert!(!forged.verify(&cbc.current_validators(), &dir));
    }

    #[test]
    fn block_proof_commit_and_abort() {
        let mut cbc = CbcLog::new(1, 9);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        cbc.vote_commit(Time(1), DealId(1), h, PartyId(0)).unwrap();
        cbc.vote_commit(Time(2), DealId(1), h, PartyId(1)).unwrap();
        let proof = cbc.block_proof(DealId(1), h).unwrap();
        let dir = directory(&cbc);
        let check = proof.verify(&cbc.initial_validators(), cbc.epoch_infos(), &dir);
        assert!(matches!(check.status, Some(DealStatus::Committed { .. })));
        // one certificate of 2f+1 = 3 signatures per block, 3 blocks
        assert_eq!(check.sig_verifications, 9);

        let mut cbc2 = CbcLog::new(1, 9);
        let (_, h2) = cbc2
            .start_deal(Time(0), PartyId(0), DealId(2), parties(2))
            .unwrap();
        cbc2.vote_abort(Time(1), DealId(2), h2, PartyId(1)).unwrap();
        let proof2 = cbc2.block_proof(DealId(2), h2).unwrap();
        let dir2 = directory(&cbc2);
        let check2 = proof2.verify(&cbc2.initial_validators(), cbc2.epoch_infos(), &dir2);
        assert!(matches!(check2.status, Some(DealStatus::Aborted { .. })));
    }

    #[test]
    fn block_proof_rejects_reordered_blocks() {
        let mut cbc = CbcLog::new(1, 9);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        cbc.vote_commit(Time(1), DealId(1), h, PartyId(0)).unwrap();
        cbc.vote_commit(Time(2), DealId(1), h, PartyId(1)).unwrap();
        let mut proof = cbc.block_proof(DealId(1), h).unwrap();
        proof.blocks.swap(1, 2);
        let dir = directory(&cbc);
        let check = proof.verify(&cbc.initial_validators(), cbc.epoch_infos(), &dir);
        assert_eq!(check.status, None);
    }

    #[test]
    fn block_proof_cannot_hide_an_earlier_abort() {
        // A malicious party cannot simply omit the abort block: the omission
        // changes nothing about what the contract computes *from the blocks it
        // is shown*, but the honest counterparty can always present the
        // genuine (longer) proof; the contract accepts the first valid proof
        // presented. This test documents the weaker property actually enforced
        // per-proof: a proof with the abort present yields Aborted.
        let mut cbc = CbcLog::new(1, 9);
        let (_, h) = cbc
            .start_deal(Time(0), PartyId(0), DealId(1), parties(2))
            .unwrap();
        cbc.vote_abort(Time(1), DealId(1), h, PartyId(1)).unwrap();
        cbc.vote_commit(Time(2), DealId(1), h, PartyId(0)).unwrap();
        cbc.vote_commit(Time(3), DealId(1), h, PartyId(1)).unwrap();
        let proof = cbc.block_proof(DealId(1), h).unwrap();
        let dir = directory(&cbc);
        let check = proof.verify(&cbc.initial_validators(), cbc.epoch_infos(), &dir);
        assert!(matches!(check.status, Some(DealStatus::Aborted { .. })));
    }

    #[test]
    fn status_tags() {
        assert_eq!(DealStatus::Active.tag(), 0);
        assert_eq!(DealStatus::Committed { decisive_index: 5 }.tag(), 1);
        assert_eq!(DealStatus::Aborted { decisive_index: 5 }.tag(), 2);
        assert!(DealStatus::Committed { decisive_index: 5 }.is_committed());
        assert!(DealStatus::Aborted { decisive_index: 5 }.is_aborted());
        assert!(!DealStatus::Active.is_committed());
    }
}
