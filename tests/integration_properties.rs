//! Property-style integration tests: randomly generated well-formed deals,
//! random deviation assignments and random network seeds must never violate
//! safety, weak liveness, or asset conservation.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these tests draw their cases from the workspace's deterministic `StdRng`:
//! same coverage style (random shapes and behaviours), fully reproducible
//! failures (the case seed is in every assertion message).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xchain_deals::cbc::CbcOptions;
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::properties::{
    check_conservation, check_safety, check_strong_liveness, check_weak_liveness,
};
use xchain_deals::{Deal, Protocol};
use xchain_harness::workload::{random_well_formed_deal, RandomDealParams};
use xchain_sim::ids::{DealId, PartyId};
use xchain_sim::network::NetworkModel;

const CASES: u64 = 24;

fn deviation_pool() -> Vec<Deviation> {
    vec![
        Deviation::None,
        Deviation::RefuseEscrow,
        Deviation::SkipTransfers,
        Deviation::WithholdVote,
        Deviation::NeverForward,
        Deviation::VoteAbort,
        Deviation::RejectValidation,
        Deviation::CrashAfter(Phase::Escrow),
        Deviation::CrashAfter(Phase::Transfer),
        Deviation::CrashAfter(Phase::Validation),
    ]
}

/// One randomly drawn case: a well-formed deal plus deviation assignments.
struct Case {
    spec: xchain_deals::spec::DealSpec,
    configs: Vec<PartyConfig>,
    seed: u64,
}

fn draw_case(case: u64, max_parties: u32, with_deviations: bool) -> Case {
    let mut rng = StdRng::seed_from_u64(0xCA5E ^ case);
    let parties = rng.gen_range(2..max_parties);
    let extra = rng.gen_range(0..3u32);
    let seed = rng.gen_range(0..10_000u64);
    let spec = random_well_formed_deal(
        DealId(seed),
        &RandomDealParams {
            parties,
            extra_transfers: extra,
            amount: 60,
        },
        seed,
    );
    let pool = deviation_pool();
    let mut configs = Vec::new();
    if with_deviations {
        let n_configs = rng.gen_range(0..6usize);
        for i in 0..n_configs.min(parties as usize) {
            let d = pool[rng.gen_range(0..pool.len())];
            configs.push(PartyConfig::deviating(PartyId(i as u32), d));
        }
    }
    Case {
        spec,
        configs,
        seed,
    }
}

#[test]
fn timelock_safety_holds_for_random_deals_and_deviations() {
    for case in 0..CASES {
        let c = draw_case(case, 6, true);
        let run = Deal::new(c.spec.clone())
            .network(NetworkModel::synchronous(100))
            .parties(&c.configs)
            .seed(c.seed)
            .run(Protocol::timelock())
            .unwrap();
        let report = check_safety(&c.spec, &c.configs, &run.outcome);
        assert!(
            report.holds(),
            "case {case} (seed {}): violations: {:?}",
            c.seed,
            report.violations
        );
        assert!(
            check_weak_liveness(&c.spec, &c.configs, &run.outcome),
            "case {case} (seed {})",
            c.seed
        );
        assert!(
            check_conservation(&c.spec, &run.outcome),
            "case {case} (seed {})",
            c.seed
        );
    }
}

#[test]
fn cbc_safety_and_atomicity_hold_for_random_deals_and_deviations() {
    for case in 0..CASES {
        let c = draw_case(case, 6, true);
        let mut rng = StdRng::seed_from_u64(0xF ^ case);
        let f = rng.gen_range(1..4usize);
        let run = Deal::new(c.spec.clone())
            .network(NetworkModel::synchronous(100))
            .parties(&c.configs)
            .seed(c.seed)
            .run(Protocol::Cbc(CbcOptions {
                f,
                ..CbcOptions::default()
            }))
            .unwrap();
        assert!(
            check_safety(&c.spec, &c.configs, &run.outcome).holds(),
            "case {case} (seed {})",
            c.seed
        );
        assert!(check_weak_liveness(&c.spec, &c.configs, &run.outcome));
        assert!(check_conservation(&c.spec, &run.outcome));
        // CBC atomicity: there is never a mixed outcome where one chain
        // commits and another aborts. (If every party deviates by walking
        // away, the deal may simply remain undecided — nobody is harmed.)
        let any_committed = run
            .outcome
            .resolutions
            .values()
            .any(|r| *r == xchain_deals::outcome::ChainResolution::Committed);
        let any_aborted = run
            .outcome
            .resolutions
            .values()
            .any(|r| *r == xchain_deals::outcome::ChainResolution::Aborted);
        assert!(
            !(any_committed && any_aborted),
            "case {case} (seed {}): mixed outcome",
            c.seed
        );
    }
}

#[test]
fn all_compliant_random_deals_always_commit() {
    for case in 0..CASES {
        let c = draw_case(case, 7, false);
        let run = Deal::new(c.spec.clone())
            .network(NetworkModel::synchronous(100))
            .seed(c.seed)
            .run(Protocol::timelock())
            .unwrap();
        assert!(
            run.outcome.committed_everywhere(),
            "case {case} (seed {})",
            c.seed
        );
        assert!(
            check_strong_liveness(&c.spec, &[], &run.outcome),
            "case {case} (seed {})",
            c.seed
        );
    }
}
