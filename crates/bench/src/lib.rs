//! Benchmark support for the workspace: a tiny, dependency-free timing
//! harness used by the `benches/` binaries (the build environment has no
//! crates.io access, so criterion is unavailable; the benches are plain
//! `harness = false` executables instead).
//!
//! Each bench binary builds a [`Suite`], runs its measurements through
//! [`Suite::bench`], and calls [`Suite::finish`]. Besides the criterion-style
//! stdout lines (now reporting both the best and the **median** repetition),
//! passing `--json` to the binary writes the results as
//! `BENCH_<suite>.json` at the repository root — an array of
//! `{"name", "ns_per_iter", "median_ns", "iters"}` records — so the perf
//! trajectory can be tracked across PRs (see `BENCH_baseline.json`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// How many timed repetitions each measurement runs (the best and the median
/// of these are reported).
const REPS: usize = 3;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, e.g. `"fig4_gas/timelock/3"`.
    pub name: String,
    /// Best-of-reps nanoseconds per iteration (damps scheduler noise).
    pub ns_per_iter: f64,
    /// Median-of-reps nanoseconds per iteration (robust central tendency).
    pub median_ns: f64,
    /// Iterations per repetition.
    pub iters: u32,
}

/// Times `f` over `iters` iterations × [`REPS`] repetitions (after warmup)
/// and returns the per-iteration statistics, printing a criterion-style line.
pub fn measure<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    for _ in 0..iters.div_ceil(10).max(1) {
        black_box(f());
    }
    let mut reps = [0f64; REPS];
    for rep in reps.iter_mut() {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        *rep = start.elapsed().as_nanos() as f64 / iters as f64;
    }
    reps.sort_by(|a, b| a.total_cmp(b));
    let best = reps[0];
    let median = reps[REPS / 2];
    println!("{name:<55} {best:>14.0} ns/iter (median {median:>10.0}) ({iters} iters)");
    BenchResult {
        name: name.to_string(),
        ns_per_iter: best,
        median_ns: median,
        iters,
    }
}

/// Times `f` and prints a criterion-style `name ... ns/iter` line.
/// Standalone convenience wrapper around [`measure`] for callers that do not
/// need a [`Suite`].
pub fn bench<T>(name: &str, iters: u32, f: impl FnMut() -> T) {
    measure(name, iters, f);
}

/// A named collection of benchmark results with optional JSON output.
#[derive(Debug)]
pub struct Suite {
    name: String,
    json: bool,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Creates the suite for one bench binary, reading the process arguments:
    /// `--json` enables writing `BENCH_<name>.json` on [`Suite::finish`].
    pub fn from_args(name: &str) -> Self {
        let json = std::env::args().any(|a| a == "--json");
        Suite {
            name: name.to_string(),
            json,
            results: Vec::new(),
        }
    }

    /// Runs and records one measurement (see [`measure`]).
    pub fn bench<T>(&mut self, name: &str, iters: u32, f: impl FnMut() -> T) -> &BenchResult {
        let r = measure(name, iters, f);
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// The results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes `BENCH_<suite>.json` at the repository root when the binary was
    /// invoked with `--json`; otherwise does nothing.
    pub fn finish(&self) {
        if !self.json {
            return;
        }
        let path = json_path(&self.name);
        std::fs::write(&path, render_json(&self.results))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}

/// The repo-root path of a suite's JSON report.
fn json_path(suite: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(format!("BENCH_{suite}.json"))
}

/// Renders results as a JSON array (hand-rolled: no serde in this sandbox).
/// Bench names are plain ASCII identifiers/paths, so escaping quotes and
/// backslashes suffices.
pub fn render_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"median_ns\": {:.1}, \"iters\": {}}}{}\n",
            name,
            r.ns_per_iter,
            r.median_ns,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut count = 0u64;
        bench("smoke", 10, || {
            count += 1;
            count
        });
        // 1 warmup + 3 × 10 measured iterations.
        assert_eq!(count, 31);
    }

    #[test]
    fn measure_yields_ordered_statistics() {
        let r = measure("stats", 5, || std::hint::black_box(40 + 2));
        assert_eq!(r.iters, 5);
        assert!(r.ns_per_iter >= 0.0);
        assert!(r.median_ns >= r.ns_per_iter, "median is at least the best");
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let results = vec![
            BenchResult {
                name: "a/b\"c".into(),
                ns_per_iter: 1.25,
                median_ns: 2.0,
                iters: 7,
            },
            BenchResult {
                name: "d".into(),
                ns_per_iter: 3.0,
                median_ns: 3.0,
                iters: 9,
            },
        ];
        let json = render_json(&results);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"name\": \"a/b\\\"c\""));
        assert!(json.contains("\"ns_per_iter\": 1.2"));
        assert!(json.contains("\"iters\": 9"));
        // exactly one separator comma between the two records
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn suite_collects_results() {
        let mut suite = Suite {
            name: "test".into(),
            json: false,
            results: Vec::new(),
        };
        suite.bench("one", 3, || 1);
        suite.bench("two", 3, || 2);
        assert_eq!(suite.results().len(), 2);
        assert_eq!(suite.results()[0].name, "one");
        suite.finish(); // json disabled: writes nothing, must not panic
    }
}
