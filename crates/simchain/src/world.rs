//! The simulation world: a collection of independent blockchains, the parties
//! that act on them, a global logical clock, and the network timing model.
//!
//! The world is deliberately *not* an actor framework: the deal protocol
//! engines (in `xchain-deals`) decide who acts when, because the timing of
//! party actions *is* the protocol. The world provides the shared pieces:
//! chains, keys, time, observation delays, offline windows and gas totals.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::asset::{Asset, AssetBag};
use crate::contract::{CallCtx, Contract};
use crate::crypto::KeyPair;
use crate::error::{ChainError, ChainResult};
use crate::gas::GasUsage;
use crate::ids::{ChainId, ContractId, Owner, PartyId};
use crate::intern::KindTable;
use crate::ledger::Blockchain;
use crate::network::{NetworkModel, OfflineSchedule};
use crate::time::{Duration, Time};

/// The multi-chain simulation world.
pub struct World {
    clock: Time,
    chains: BTreeMap<ChainId, Blockchain>,
    next_chain: u32,
    parties: BTreeMap<PartyId, KeyPair>,
    next_party: u32,
    network: NetworkModel,
    offline: OfflineSchedule,
    rng: StdRng,
    seed: u64,
    kinds: KindTable,
}

impl World {
    /// Creates a world with a deterministic seed and the default synchronous
    /// network model.
    pub fn new(seed: u64) -> Self {
        World {
            clock: Time::ZERO,
            chains: BTreeMap::new(),
            next_chain: 0,
            parties: BTreeMap::new(),
            next_party: 0,
            network: NetworkModel::default(),
            offline: OfflineSchedule::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
            kinds: KindTable::new(),
        }
    }

    /// Creates a world with an explicit network model.
    pub fn with_network(seed: u64, network: NetworkModel) -> Self {
        let mut w = World::new(seed);
        w.network = network;
        w
    }

    /// Creates a world whose asset-kind table starts from `kinds` (typically
    /// a [`KindTable::fork`] of a pre-resolved deal plan's canonical table,
    /// so every id the plan assigned is valid on this world's chains). The
    /// table is adopted as-is: pass a fork, not a shared handle, unless you
    /// want later interning to flow back to the source.
    pub fn with_network_and_kinds(seed: u64, network: NetworkModel, kinds: KindTable) -> Self {
        let mut w = World::with_network(seed, network);
        w.kinds = kinds;
        w
    }

    /// The seed this world was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The network model in force.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Replaces the network model (e.g. to flip from asynchronous to
    /// synchronous at GST in a scripted scenario).
    pub fn set_network(&mut self, network: NetworkModel) {
        self.network = network;
    }

    /// The current global clock.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Advances the clock to `t` (no-op if `t` is in the past).
    pub fn advance_to(&mut self, t: Time) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Advances the clock by `d`.
    pub fn advance_by(&mut self, d: Duration) {
        self.clock += d;
    }

    // ------------------------------------------------------------------
    // Chains
    // ------------------------------------------------------------------

    /// The world-owned asset-kind interner. Every chain created by
    /// [`World::add_chain`] shares it, so a kind name resolves to the same
    /// [`crate::intern::KindId`] on all of this world's chains.
    pub fn kinds(&self) -> &KindTable {
        &self.kinds
    }

    /// Creates a new blockchain with the given name and block interval and
    /// returns its id. Existing parties' keys are registered on it, and it
    /// shares the world's kind table.
    pub fn add_chain(&mut self, name: &str, block_interval: Duration) -> ChainId {
        let id = ChainId(self.next_chain);
        self.next_chain += 1;
        let mut chain = Blockchain::with_kinds(id, name, block_interval, self.kinds.clone());
        for (party, kp) in &self.parties {
            chain.register_key(*party, kp);
        }
        self.chains.insert(id, chain);
        id
    }

    /// Immutable access to a chain.
    pub fn chain(&self, id: ChainId) -> ChainResult<&Blockchain> {
        self.chains.get(&id).ok_or(ChainError::UnknownChain(id))
    }

    /// Mutable access to a chain.
    pub fn chain_mut(&mut self, id: ChainId) -> ChainResult<&mut Blockchain> {
        self.chains.get_mut(&id).ok_or(ChainError::UnknownChain(id))
    }

    /// Ids of all chains in creation order.
    pub fn chain_ids(&self) -> Vec<ChainId> {
        self.chains.keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Parties
    // ------------------------------------------------------------------

    /// Creates a new party, derives its key pair, and registers the public key
    /// on every chain.
    pub fn add_party(&mut self) -> PartyId {
        let id = PartyId(self.next_party);
        self.next_party += 1;
        let kp = KeyPair::derive(id, self.seed);
        for chain in self.chains.values_mut() {
            chain.register_key(id, &kp);
        }
        self.parties.insert(id, kp);
        id
    }

    /// Creates `n` parties and returns their ids.
    pub fn add_parties(&mut self, n: usize) -> Vec<PartyId> {
        (0..n).map(|_| self.add_party()).collect()
    }

    /// The key pair of a party. Protocol engines call this only on behalf of
    /// the party whose action they are simulating; that discipline is the
    /// simulation counterpart of "only the key holder can sign".
    pub fn key_pair(&self, party: PartyId) -> ChainResult<&KeyPair> {
        self.parties
            .get(&party)
            .ok_or_else(|| ChainError::Other(format!("unknown party {party}")))
    }

    /// All party ids in creation order.
    pub fn party_ids(&self) -> Vec<PartyId> {
        self.parties.keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Availability / network
    // ------------------------------------------------------------------

    /// Marks a party offline during `[from, until)`.
    pub fn set_offline(&mut self, party: PartyId, from: Time, until: Time) {
        self.offline.add(party, from, until);
    }

    /// True if the party is offline at time `t`.
    pub fn is_offline(&self, party: PartyId, t: Time) -> bool {
        self.offline.is_offline(party, t)
    }

    /// The earliest time at or after `t` when the party can act again.
    pub fn next_online(&self, party: PartyId, t: Time) -> Time {
        self.offline.next_online(party, t)
    }

    /// Samples the time at which an event occurring at `event_time` becomes
    /// observable to a party, per the network model (and the party's offline
    /// windows: an offline party observes only once it is back).
    pub fn observation_time(&mut self, party: PartyId, event_time: Time) -> Time {
        let delay = self.network.sample_delay(event_time, &mut self.rng);
        let visible = event_time + delay;
        self.offline.next_online(party, visible)
    }

    /// The worst-case observation latency at time `t` (used to compute
    /// protocol timeouts in the engines).
    pub fn worst_case_delay(&self, t: Time) -> Duration {
        self.network.max_delay_at(t)
    }

    /// Mutable access to the world RNG (adversary strategies and workload
    /// generators use this so runs stay reproducible from the world seed).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Convenience wrappers
    // ------------------------------------------------------------------

    /// Mints assets to a party on a chain (workload setup).
    pub fn mint(&mut self, chain: ChainId, owner: Owner, asset: &Asset) -> ChainResult<()> {
        self.chain_mut(chain)?.mint(owner, asset)
    }

    /// [`World::mint`] for a pre-interned asset (plan-based world setup).
    pub fn mint_interned(
        &mut self,
        chain: ChainId,
        owner: Owner,
        asset: &crate::intern::InternedAsset,
    ) -> ChainResult<()> {
        self.chain_mut(chain)?.mint_interned(owner, asset)
    }

    /// Submits a contract call from `caller` at the current clock, rejecting
    /// it if the caller is a party that is currently offline.
    pub fn call<C, R>(
        &mut self,
        chain: ChainId,
        caller: Owner,
        contract: ContractId,
        f: impl FnOnce(&mut C, &mut CallCtx<'_>) -> ChainResult<R>,
    ) -> ChainResult<R>
    where
        C: Contract,
    {
        if let Owner::Party(p) = caller {
            if self.offline.is_offline(p, self.clock) {
                return Err(ChainError::PartyOffline(p));
            }
        }
        let now = self.clock;
        self.chain_mut(chain)?.call(now, caller, contract, f)
    }

    /// Submits a contract call at an explicit time (advancing the clock to it
    /// first). Convenience for scripted schedules.
    pub fn call_at<C, R>(
        &mut self,
        at: Time,
        chain: ChainId,
        caller: Owner,
        contract: ContractId,
        f: impl FnOnce(&mut C, &mut CallCtx<'_>) -> ChainResult<R>,
    ) -> ChainResult<R>
    where
        C: Contract,
    {
        self.advance_to(at);
        self.call(chain, caller, contract, f)
    }

    /// Everything `owner` holds across all chains.
    pub fn holdings(&self, owner: Owner) -> AssetBag {
        let mut bag = AssetBag::new();
        for chain in self.chains.values() {
            let chain_bag = chain.holdings(owner);
            for (kind, amount) in chain_bag.fungible_holdings() {
                bag.add(&Asset::Fungible {
                    kind: kind.clone(),
                    amount,
                });
            }
            for (kind, tokens) in chain_bag.non_fungible_holdings() {
                bag.add(&Asset::NonFungible {
                    kind: kind.clone(),
                    tokens: tokens.clone(),
                });
            }
        }
        bag
    }

    /// Total gas used across all chains.
    pub fn total_gas(&self) -> GasUsage {
        self.chains
            .values()
            .fold(GasUsage::ZERO, |acc, c| acc + c.gas_usage())
    }

    /// Per-chain gas usage snapshots (used by the experiments to attribute gas
    /// to phases).
    pub fn gas_by_chain(&self) -> BTreeMap<ChainId, GasUsage> {
        self.chains
            .iter()
            .map(|(id, c)| (*id, c.gas_usage()))
            .collect()
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("clock", &self.clock)
            .field("chains", &self.chains.len())
            .field("parties", &self.parties.len())
            .field("network", &self.network)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_setup_and_clock() {
        let mut w = World::new(7);
        let c1 = w.add_chain("coins", Duration(10));
        let p1 = w.add_party();
        let c2 = w.add_chain("tickets", Duration(10));
        assert_eq!(w.chain_ids(), vec![c1, c2]);
        assert_eq!(w.party_ids(), vec![p1]);
        // party key is registered on both chains, including the one created later
        assert!(w.chain(c1).unwrap().keys().public_key_of(p1).is_some());
        assert!(w.chain(c2).unwrap().keys().public_key_of(p1).is_some());

        assert_eq!(w.now(), Time(0));
        w.advance_by(Duration(50));
        w.advance_to(Time(30)); // no going back
        assert_eq!(w.now(), Time(50));
    }

    #[test]
    fn holdings_span_chains() {
        let mut w = World::new(1);
        let c1 = w.add_chain("coins", Duration(1));
        let c2 = w.add_chain("tickets", Duration(1));
        let p = w.add_party();
        w.mint(c1, Owner::Party(p), &Asset::fungible("coin", 10))
            .unwrap();
        w.mint(c2, Owner::Party(p), &Asset::non_fungible("ticket", [1]))
            .unwrap();
        let bag = w.holdings(Owner::Party(p));
        assert_eq!(bag.balance(&"coin".into()), 10);
        assert!(bag.contains(&Asset::non_fungible("ticket", [1])));
    }

    #[test]
    fn observation_time_respects_offline_windows() {
        let mut w = World::with_network(3, NetworkModel::synchronous(10));
        let _c = w.add_chain("x", Duration(1));
        let p = w.add_party();
        w.set_offline(p, Time(0), Time(100));
        let obs = w.observation_time(p, Time(5));
        assert!(obs >= Time(100));
        let q = w.add_party();
        let obs_q = w.observation_time(q, Time(5));
        assert!(obs_q > Time(5) && obs_q <= Time(15));
    }

    #[test]
    fn offline_party_cannot_call() {
        use crate::contract::Contract;
        use std::any::Any;

        struct Noop;
        impl Contract for Noop {
            fn type_name(&self) -> &'static str {
                "noop"
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut w = World::new(9);
        let c = w.add_chain("x", Duration(1));
        let p = w.add_party();
        let cid = w.chain_mut(c).unwrap().install(Noop);
        w.set_offline(p, Time(0), Time(10));
        let err = w
            .call(c, Owner::Party(p), cid, |_: &mut Noop, _| Ok(()))
            .unwrap_err();
        assert_eq!(err, ChainError::PartyOffline(p));
        w.advance_to(Time(10));
        assert!(w
            .call(c, Owner::Party(p), cid, |_: &mut Noop, _| Ok(()))
            .is_ok());
        assert_eq!(w.total_gas().calls, 1);
    }

    #[test]
    fn same_seed_same_observation_sequence() {
        let sample = |seed: u64| {
            let mut w = World::with_network(seed, NetworkModel::synchronous(100));
            let p = w.add_party();
            (0..10)
                .map(|i| w.observation_time(p, Time(i * 10)).ticks())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(5), sample(5));
        assert_ne!(sample(5), sample(6));
    }
}
