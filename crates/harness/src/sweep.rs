//! The engine-driven sweep API: one declarative cross-product over
//! specifications × protocols × networks × adversary configurations,
//! replacing the copy-pasted per-protocol experiment loops.
//!
//! Cells are independent (each builds its own world), so the sweep executes
//! them on the work-queue pool in [`crate::executor`]; `threads(1)` forces the
//! classic serial loop. Cell seeds and output order are derived from the
//! declaration order alone, so a sweep's [`SweepOutcome`] is identical for
//! every thread count.
//!
//! Before execution, the sweep resolves one [`DealPlan`] per specification
//! and builds each engine once: every cell that runs a given spec reuses its
//! plan (worlds are built from forks of the plan's kind table), and workers
//! share the hoisted engine values instead of re-invoking the factories per
//! cell.
//!
//! ```
//! use xchain_harness::sweep::{standard_engines, Sweep};
//! use xchain_deals::builders::{broker_spec, ring_spec};
//! use xchain_sim::ids::DealId;
//! use xchain_sim::network::NetworkModel;
//!
//! let outcome = Sweep::new()
//!     .spec("broker", broker_spec())
//!     .spec("ring n=2", ring_spec(DealId(2), 2))
//!     .over_protocols(standard_engines(100))
//!     .over_networks(vec![
//!         ("synchronous".into(), NetworkModel::synchronous(100)),
//!         ("eventually synchronous".into(), NetworkModel::eventually_synchronous(500, 100, 1_000)),
//!     ])
//!     .seed(42)
//!     .threads(4)
//!     .run()
//!     .unwrap();
//! // Engines skip specifications they cannot express (the swap engine only
//! // handles two-party exchanges), so every produced point actually ran.
//! assert!(outcome.points.iter().all(|p| p.run.outcome.fully_resolved()));
//! ```

use std::sync::{Arc, Mutex};

use xchain_deals::engine::{DealEngine, Protocol};
use xchain_deals::error::DealError;
use xchain_deals::party::PartyConfig;
use xchain_deals::plan::DealPlan;
use xchain_deals::spec::DealSpec;
use xchain_deals::{Deal, DealRun};
use xchain_sim::network::NetworkModel;
use xchain_sim::time::Duration;
use xchain_swap::SwapEngine;

use crate::executor;

/// A labelled set of party behaviour configurations for one sweep cell.
pub type AdversaryScenario = (String, Vec<PartyConfig>);

/// Generates the adversary scenarios to run against one specification.
/// (`Send + Sync` so a configured sweep can be shared with worker threads;
/// generation itself always happens serially before execution starts.)
pub type AdversaryGen = Box<dyn Fn(&DealSpec) -> Vec<AdversaryScenario> + Send + Sync>;

/// A thread-shareable engine factory. The sweep invokes each factory **once
/// per run** (not once per cell): the produced engines are `Send + Sync` and
/// shared by reference across worker threads, so factories exist to defer
/// construction, not to isolate cells.
pub type EngineFactory = Arc<dyn Fn() -> Box<dyn DealEngine + Send + Sync> + Send + Sync>;

/// Wraps a cloneable engine value into an [`EngineFactory`].
pub fn engine_factory<E>(engine: E) -> EngineFactory
where
    E: DealEngine + Clone + Send + Sync + 'static,
{
    Arc::new(move || Box::new(engine.clone()))
}

/// The three standard engines — timelock, CBC, and the HTLC swap — with
/// default options and the given synchrony bound ∆ (in ticks) for the swap's
/// HTLC timeouts.
pub fn standard_engines(delta: u64) -> Vec<(String, EngineFactory)> {
    vec![
        ("timelock".into(), engine_factory(Protocol::timelock())),
        ("CBC".into(), engine_factory(Protocol::cbc())),
        (
            "HTLC swap".into(),
            engine_factory(SwapEngine::new(Duration(delta))),
        ),
    ]
}

/// The two commit-protocol engines (timelock and CBC) with default options.
pub fn protocol_engines() -> Vec<(String, EngineFactory)> {
    vec![
        ("timelock".into(), engine_factory(Protocol::timelock())),
        ("CBC".into(), engine_factory(Protocol::cbc())),
    ]
}

/// One executed cell of a sweep.
#[derive(Debug)]
pub struct SweepPoint {
    /// Label of the deal specification.
    pub spec: String,
    /// Label of the engine that ran.
    pub engine: String,
    /// Label of the network model.
    pub network: String,
    /// Label of the adversary scenario.
    pub adversary: String,
    /// The specification that ran (for property checks over the point).
    pub deal: DealSpec,
    /// The party configurations that were in force.
    pub configs: Vec<PartyConfig>,
    /// The seed the cell ran with.
    pub seed: u64,
    /// The unified result.
    pub run: DealRun,
}

/// The result of a sweep: every executed point, plus how many cells were
/// skipped because an engine could not express a specification.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The executed cells, in deterministic iteration order (independent of
    /// the thread count the sweep ran with).
    pub points: Vec<SweepPoint>,
    /// Cells skipped via [`DealEngine::supports`].
    pub skipped: usize,
}

impl SweepOutcome {
    /// The points produced by the given engine label.
    pub fn by_engine(&self, engine: &str) -> Vec<&SweepPoint> {
        self.points.iter().filter(|p| p.engine == engine).collect()
    }
}

/// A declarative sweep over specifications × engines × networks × adversary
/// scenarios. Every cell is executed through the [`Deal`] builder with a
/// deterministic per-cell seed, so sweeps are reproducible end to end — and
/// cells run in parallel on [`Sweep::threads`] workers without changing the
/// outcome.
pub struct Sweep {
    specs: Vec<(String, DealSpec)>,
    engines: Vec<(String, EngineFactory)>,
    networks: Vec<(String, NetworkModel)>,
    adversaries: AdversaryGen,
    base_seed: u64,
    threads: Option<usize>,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::new()
    }
}

/// One enumerated cell: indices into the sweep's axes plus the derived seed.
/// Enumeration happens serially in declaration order (including the skip
/// bookkeeping), so seeds never depend on the thread count.
struct Cell {
    spec_ix: usize,
    engine_ix: usize,
    net_ix: usize,
    adv_ix: usize,
    seed: u64,
}

impl Sweep {
    /// An empty sweep: no specifications yet, the two commit-protocol
    /// engines, a synchronous ∆ = 100 network, the all-compliant scenario,
    /// and as many worker threads as the machine offers.
    pub fn new() -> Self {
        Sweep {
            specs: Vec::new(),
            engines: protocol_engines(),
            networks: vec![("synchronous ∆=100".into(), NetworkModel::synchronous(100))],
            adversaries: Box::new(|_| vec![("all compliant".into(), Vec::new())]),
            base_seed: 0,
            threads: None,
        }
    }

    /// Adds one labelled specification.
    pub fn spec(mut self, label: impl Into<String>, spec: DealSpec) -> Self {
        self.specs.push((label.into(), spec));
        self
    }

    /// Replaces the specifications with the given labelled set.
    pub fn over_specs(mut self, specs: Vec<(String, DealSpec)>) -> Self {
        self.specs = specs;
        self
    }

    /// Replaces the engines with the given labelled factory set (see
    /// [`standard_engines`], [`protocol_engines`] and [`engine_factory`]).
    pub fn over_protocols(mut self, engines: Vec<(String, EngineFactory)>) -> Self {
        self.engines = engines;
        self
    }

    /// Replaces the network models with the given labelled set.
    pub fn over_networks(mut self, networks: Vec<(String, NetworkModel)>) -> Self {
        self.networks = networks;
        self
    }

    /// Replaces the adversary generator: for each specification it yields the
    /// labelled behaviour configurations to run (see
    /// [`crate::adversary::single_deviator_configs`] and friends).
    pub fn over_adversaries<F>(mut self, gen: F) -> Self
    where
        F: Fn(&DealSpec) -> Vec<AdversaryScenario> + Send + Sync + 'static,
    {
        self.adversaries = Box::new(gen);
        self
    }

    /// Sets the base seed; each executed cell derives its own seed from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the number of worker threads (clamped to at least 1). The default
    /// is the machine's available parallelism; `threads(1)` runs the classic
    /// serial loop. The outcome is identical either way.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Executes the full cross-product and collects every point.
    pub fn run(&self) -> Result<SweepOutcome, DealError> {
        // Phase 1 (serial): generate scenarios, build each engine once
        // (hoisted out of the cell loop — cells share them by reference),
        // resolve one plan per specification (shared by every cell running
        // that spec), and enumerate the executable cells in declaration
        // order. This fixes each cell's seed and output slot before any
        // execution happens.
        let scenarios: Vec<Vec<AdversaryScenario>> = self
            .specs
            .iter()
            .map(|(_, spec)| (self.adversaries)(spec))
            .collect();
        let engines: Vec<Box<dyn DealEngine + Send + Sync>> =
            self.engines.iter().map(|(_, make)| make()).collect();
        let plans: Vec<DealPlan> = self
            .specs
            .iter()
            .map(|(_, spec)| DealPlan::new(spec))
            .collect::<Result<_, _>>()?;

        let mut cells = Vec::new();
        let mut skipped = 0;
        let mut cell = 0u64;
        for (spec_ix, (_, spec)) in self.specs.iter().enumerate() {
            for (engine_ix, probe) in engines.iter().enumerate() {
                if !probe.supports(spec) {
                    skipped += self.networks.len() * scenarios[spec_ix].len();
                    continue;
                }
                for net_ix in 0..self.networks.len() {
                    for adv_ix in 0..scenarios[spec_ix].len() {
                        let seed = self.base_seed.wrapping_add(cell);
                        cell += 1;
                        cells.push(Cell {
                            spec_ix,
                            engine_ix,
                            net_ix,
                            adv_ix,
                            seed,
                        });
                    }
                }
            }
        }

        // Phase 2 (parallel): run the cells on the pool. Every worker builds
        // its own engine per cell; results come back in cell order. A cell
        // error fails the sweep fast: workers stop executing new cells once
        // one has failed (serial runs therefore report the first error in
        // cell order; parallel runs report the earliest-indexed error among
        // the cells that ran before the flag was seen).
        let threads = self.threads.unwrap_or_else(executor::available_threads);
        let first_err: Mutex<Option<(usize, DealError)>> = Mutex::new(None);
        let points: Vec<Option<SweepPoint>> = executor::run_indexed(cells.len(), threads, |i| {
            if first_err.lock().expect("sweep error slot").is_some() {
                return None;
            }
            match self.run_cell(&cells[i], &scenarios, &engines, &plans) {
                Ok(point) => Some(point),
                Err(e) => {
                    let mut slot = first_err.lock().expect("sweep error slot");
                    if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                        *slot = Some((i, e));
                    }
                    None
                }
            }
        });
        if let Some((_, e)) = first_err.into_inner().expect("sweep error slot") {
            return Err(e);
        }
        let points = points.into_iter().flatten().collect();
        Ok(SweepOutcome { points, skipped })
    }

    /// Executes one enumerated cell (on whichever worker claimed it), reusing
    /// the hoisted engine and the specification's shared plan.
    fn run_cell(
        &self,
        cell: &Cell,
        scenarios: &[Vec<AdversaryScenario>],
        engines: &[Box<dyn DealEngine + Send + Sync>],
        plans: &[DealPlan],
    ) -> Result<SweepPoint, DealError> {
        let (spec_label, spec) = &self.specs[cell.spec_ix];
        let (engine_label, _) = &self.engines[cell.engine_ix];
        let (net_label, network) = &self.networks[cell.net_ix];
        let (adv_label, configs) = &scenarios[cell.spec_ix][cell.adv_ix];
        let run = Deal::new(spec.clone())
            .network(*network)
            .parties(configs)
            .seed(cell.seed)
            .run_planned(&plans[cell.spec_ix], &engines[cell.engine_ix])?;
        Ok(SweepPoint {
            spec: spec_label.clone(),
            engine: engine_label.clone(),
            network: net_label.clone(),
            adversary: adv_label.clone(),
            deal: spec.clone(),
            configs: configs.clone(),
            seed: cell.seed,
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::single_deviator_configs;
    use xchain_deals::builders::{broker_spec, ring_spec};
    use xchain_deals::properties::check_safety;
    use xchain_sim::ids::DealId;

    #[test]
    fn sweep_covers_the_cross_product_and_skips_unsupported_cells() {
        let outcome = Sweep::new()
            .spec("broker", broker_spec())
            .spec("two-party ring", ring_spec(DealId(9), 2))
            .over_protocols(standard_engines(100))
            .over_networks(vec![
                ("sync".into(), NetworkModel::synchronous(100)),
                (
                    "eventually sync".into(),
                    NetworkModel::eventually_synchronous(0, 100, 100),
                ),
            ])
            .seed(11)
            .run()
            .unwrap();
        // 2 specs × 3 engines × 2 networks × 1 scenario, minus the swap
        // engine's skipped broker cells (2 networks × 1 scenario).
        assert_eq!(outcome.points.len(), 10);
        assert_eq!(outcome.skipped, 2);
        assert_eq!(outcome.by_engine("HTLC swap").len(), 2);
        for p in &outcome.points {
            assert!(
                p.run.outcome.committed_everywhere(),
                "{} / {} / {} should commit",
                p.spec,
                p.engine,
                p.network
            );
        }
    }

    #[test]
    fn adversary_generator_runs_per_spec() {
        let outcome = Sweep::new()
            .spec("broker", broker_spec())
            .over_adversaries(|spec| {
                let mut scenarios = vec![("all compliant".to_string(), Vec::new())];
                scenarios.extend(
                    single_deviator_configs(spec, 100)
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| (format!("deviator #{i}"), c)),
                );
                scenarios
            })
            .seed(23)
            .run()
            .unwrap();
        // 1 spec × 2 engines × 1 network × (1 + 3 parties × 11 deviations).
        assert_eq!(outcome.points.len(), 2 * (1 + 33));
        for p in &outcome.points {
            assert!(
                check_safety(&p.deal, &p.configs, &p.run.outcome).holds(),
                "{} / {} violated safety",
                p.engine,
                p.adversary
            );
        }
    }

    /// A failing cell fails the sweep (fail-fast), at any thread count.
    #[test]
    fn cell_errors_fail_the_sweep() {
        use xchain_deals::engine::EngineRun;
        use xchain_deals::outcome::ProtocolKind;
        use xchain_sim::world::World;

        #[derive(Clone)]
        struct FailingEngine;
        impl DealEngine for FailingEngine {
            fn kind(&self) -> ProtocolKind {
                ProtocolKind::Timelock
            }
            fn execute(
                &self,
                _world: &mut World,
                _plan: &DealPlan,
                _configs: &[PartyConfig],
            ) -> Result<EngineRun, DealError> {
                Err(DealError::Config("engine always fails".into()))
            }
        }

        for threads in [1, 4] {
            let err = Sweep::new()
                .spec("broker", broker_spec())
                .over_protocols(vec![("failing".into(), engine_factory(FailingEngine))])
                .threads(threads)
                .run()
                .unwrap_err();
            assert!(matches!(err, DealError::Config(_)), "threads={threads}");
        }
    }

    /// The executor must not change what a sweep produces: point labels,
    /// seeds, outcomes and gas totals are identical across thread counts.
    #[test]
    fn parallel_sweep_output_matches_serial() {
        let run_with = |threads: usize| {
            Sweep::new()
                .spec("broker", broker_spec())
                .spec("ring n=3", ring_spec(DealId(5), 3))
                .over_protocols(standard_engines(100))
                .seed(7)
                .threads(threads)
                .run()
                .unwrap()
        };
        let serial = run_with(1);
        let parallel = run_with(4);
        assert_eq!(serial.skipped, parallel.skipped);
        assert_eq!(serial.points.len(), parallel.points.len());
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.engine, b.engine);
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.run.outcome.metrics.total_gas(),
                b.run.outcome.metrics.total_gas()
            );
        }
    }
}
