//! # xchain-harness
//!
//! Workload generators, adversary sweeps, the declarative [`sweep::Sweep`]
//! API over the unified `DealEngine` abstraction, and the experiments that
//! regenerate every table and figure of *Cross-chain Deals and Adversarial
//! Commerce* (see DESIGN.md §3 for the per-experiment index and
//! EXPERIMENTS.md for the measured results).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod executor;
pub mod experiments;
pub mod report;
pub mod sweep;
pub mod workload;

pub use sweep::{Sweep, SweepOutcome, SweepPoint};
