//! Adversarial commerce in action: the same broker deal executed against a
//! range of deviating counterparties, showing that compliant parties are never
//! left worse off (Property 1) and never have assets locked up forever
//! (Property 2), under both commit protocols.
//!
//! Run with: `cargo run -p xchain-harness --example adversarial`

use xchain_deals::builders::broker_spec;
use xchain_deals::cbc::{run_cbc, CbcOptions};
use xchain_deals::party::{Deviation, PartyConfig};
use xchain_deals::phases::Phase;
use xchain_deals::properties::{check_safety, check_weak_liveness};
use xchain_deals::setup::world_for_spec;
use xchain_deals::timelock::{run_timelock, TimelockOptions};
use xchain_sim::ids::PartyId;
use xchain_sim::network::NetworkModel;

fn main() {
    let spec = broker_spec();
    let bob = PartyId(1);
    let carol = PartyId(2);
    let scenarios: Vec<(&str, Vec<PartyConfig>)> = vec![
        ("everyone compliant", vec![]),
        ("Bob never escrows his tickets", vec![PartyConfig::deviating(bob, Deviation::RefuseEscrow)]),
        ("Carol withholds her commit vote", vec![PartyConfig::deviating(carol, Deviation::WithholdVote)]),
        ("Bob crashes right after the transfer phase", vec![PartyConfig::deviating(bob, Deviation::CrashAfter(Phase::Transfer))]),
        (
            "Bob and Carol both walk away before voting",
            vec![
                PartyConfig::deviating(bob, Deviation::WithholdVote),
                PartyConfig::deviating(carol, Deviation::WithholdVote),
            ],
        ),
    ];

    for (label, configs) in scenarios {
        let mut world = world_for_spec(&spec, NetworkModel::synchronous(100), 11).unwrap();
        let tl = run_timelock(&mut world, &spec, &configs, &TimelockOptions::default()).unwrap();
        let mut world = world_for_spec(&spec, NetworkModel::synchronous(100), 12).unwrap();
        let cbc = run_cbc(&mut world, &spec, &configs, &CbcOptions::default()).unwrap();
        println!("scenario: {label}");
        for (proto, outcome) in [("timelock", &tl.outcome), ("CBC", &cbc.outcome)] {
            println!(
                "  {proto:>8}: committed={} aborted={} safety={} weak-liveness={}",
                outcome.committed_everywhere(),
                outcome.aborted_everywhere(),
                check_safety(&spec, &configs, outcome).holds(),
                check_weak_liveness(&spec, &configs, outcome),
            );
        }
    }
}
