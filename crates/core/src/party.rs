//! Party behaviours: compliant and deviating strategies.
//!
//! The paper classifies parties only as *compliant* (they follow the protocol)
//! or *deviating* (they do not, whether rationally or not), and deliberately
//! makes no assumption about how many parties deviate. Deviation strategies
//! here cover the failure and attack modes the paper discusses: crashing or
//! walking away at any phase, refusing to escrow or transfer, withholding or
//! never forwarding votes, voting abort, claiming dissatisfaction at
//! validation, and being driven offline during the commit window.

use xchain_sim::ids::PartyId;
use xchain_sim::time::Time;

use crate::phases::Phase;

/// How a party deviates from the protocol, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deviation {
    /// Follows the protocol exactly.
    None,
    /// Stops participating entirely after completing the given phase
    /// (crash / walk-away).
    CrashAfter(Phase),
    /// Never escrows its outgoing assets (joins the deal, then reneges).
    RefuseEscrow,
    /// Escrows but never performs its tentative transfers.
    SkipTransfers,
    /// Performs every phase but never sends a commit vote.
    WithholdVote,
    /// Timelock only: sends its own commit votes but never forwards other
    /// parties' votes (free-rides on the forwarding work of others).
    NeverForward,
    /// CBC only: votes to abort during the commit phase even though
    /// validation succeeded.
    VoteAbort,
    /// Declares its incoming assets unsatisfactory during validation and
    /// therefore never votes to commit.
    RejectValidation,
    /// Is offline (crashed or under denial of service) during `[from, until)`;
    /// otherwise behaves like a compliant party. Going offline at the wrong
    /// moment is a deviation: the paper notes such parties can miss the
    /// window in which they must claim assets or forward votes.
    OfflineDuring {
        /// Start of the outage.
        from: Time,
        /// End of the outage (exclusive).
        until: Time,
    },
}

/// The behaviour configuration of one party in a deal execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartyConfig {
    /// The party.
    pub id: PartyId,
    /// Its deviation, if any.
    pub deviation: Deviation,
}

impl PartyConfig {
    /// A compliant party.
    pub fn compliant(id: PartyId) -> Self {
        PartyConfig {
            id,
            deviation: Deviation::None,
        }
    }

    /// A deviating party with the given strategy.
    pub fn deviating(id: PartyId, deviation: Deviation) -> Self {
        PartyConfig { id, deviation }
    }

    /// True if the party follows the protocol exactly. Parties that go
    /// offline during the run are classified as deviating, matching the
    /// paper's treatment of parties that fail to act in time.
    pub fn is_compliant(&self) -> bool {
        matches!(self.deviation, Deviation::None)
    }

    /// True if this party still acts during `phase` (it has not crashed or
    /// walked away before it).
    pub fn participates_in(&self, phase: Phase) -> bool {
        match self.deviation {
            Deviation::CrashAfter(last) => phase <= last,
            _ => true,
        }
    }

    /// True if the party escrows its outgoing assets.
    pub fn will_escrow(&self) -> bool {
        !matches!(self.deviation, Deviation::RefuseEscrow) && self.participates_in(Phase::Escrow)
    }

    /// True if the party performs its tentative transfers.
    pub fn will_transfer(&self) -> bool {
        !matches!(
            self.deviation,
            Deviation::RefuseEscrow | Deviation::SkipTransfers
        ) && self.participates_in(Phase::Transfer)
    }

    /// True if the party votes to commit (assuming validation succeeded).
    pub fn will_vote_commit(&self) -> bool {
        !matches!(
            self.deviation,
            Deviation::RefuseEscrow
                | Deviation::SkipTransfers
                | Deviation::WithholdVote
                | Deviation::VoteAbort
                | Deviation::RejectValidation
        ) && self.participates_in(Phase::Commit)
    }

    /// True if the party forwards other parties' votes (timelock protocol).
    pub fn will_forward_votes(&self) -> bool {
        self.will_vote_commit() && !matches!(self.deviation, Deviation::NeverForward)
    }

    /// True if the party votes abort on the CBC during the commit phase.
    pub fn votes_abort(&self) -> bool {
        matches!(
            self.deviation,
            Deviation::VoteAbort | Deviation::RejectValidation
        ) && self.participates_in(Phase::Commit)
    }

    /// The offline window, if this party has one.
    pub fn offline_window(&self) -> Option<(Time, Time)> {
        match self.deviation {
            Deviation::OfflineDuring { from, until } => Some((from, until)),
            _ => None,
        }
    }
}

/// Looks up a party's configuration, defaulting to compliant when absent.
pub fn config_of(configs: &[PartyConfig], id: PartyId) -> PartyConfig {
    configs
        .iter()
        .find(|c| c.id == id)
        .copied()
        .unwrap_or_else(|| PartyConfig::compliant(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliant_party_does_everything() {
        let c = PartyConfig::compliant(PartyId(0));
        assert!(c.is_compliant());
        assert!(c.will_escrow());
        assert!(c.will_transfer());
        assert!(c.will_vote_commit());
        assert!(c.will_forward_votes());
        assert!(!c.votes_abort());
        assert_eq!(c.offline_window(), None);
    }

    #[test]
    fn crash_after_phase_stops_later_phases() {
        let c = PartyConfig::deviating(PartyId(1), Deviation::CrashAfter(Phase::Escrow));
        assert!(!c.is_compliant());
        assert!(c.will_escrow());
        assert!(!c.will_transfer());
        assert!(!c.will_vote_commit());
        let c = PartyConfig::deviating(PartyId(1), Deviation::CrashAfter(Phase::Validation));
        assert!(c.will_escrow());
        assert!(c.will_transfer());
        assert!(!c.will_vote_commit());
    }

    #[test]
    fn vote_strategies() {
        assert!(!PartyConfig::deviating(PartyId(0), Deviation::WithholdVote).will_vote_commit());
        let abort = PartyConfig::deviating(PartyId(0), Deviation::VoteAbort);
        assert!(!abort.will_vote_commit());
        assert!(abort.votes_abort());
        let nf = PartyConfig::deviating(PartyId(0), Deviation::NeverForward);
        assert!(nf.will_vote_commit());
        assert!(!nf.will_forward_votes());
        assert!(!PartyConfig::deviating(PartyId(0), Deviation::RefuseEscrow).will_escrow());
        assert!(!PartyConfig::deviating(PartyId(0), Deviation::SkipTransfers).will_transfer());
    }

    #[test]
    fn offline_window_reported() {
        let c = PartyConfig::deviating(
            PartyId(0),
            Deviation::OfflineDuring {
                from: Time(5),
                until: Time(10),
            },
        );
        assert!(!c.is_compliant());
        assert_eq!(c.offline_window(), Some((Time(5), Time(10))));
        // It still intends to act in every phase (when online).
        assert!(c.will_vote_commit());
    }

    #[test]
    fn config_lookup_defaults_to_compliant() {
        let configs = vec![PartyConfig::deviating(PartyId(1), Deviation::WithholdVote)];
        assert!(config_of(&configs, PartyId(0)).is_compliant());
        assert!(!config_of(&configs, PartyId(1)).is_compliant());
    }
}
