//! The blockchain ledger: asset ownership, contract hosting, and the public log.
//!
//! Each [`Blockchain`] is "a publicly-readable, tamper-proof distributed
//! ledger that tracks ownership of assets among various parties" (Section 3).
//! The simulator collapses the replication machinery: what the protocols need
//! from a chain is (a) authoritative asset ownership, (b) deterministic
//! contract execution with gas costs, (c) an append-only log that parties can
//! monitor, and (d) a notion of chain time with bounded observation latency.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::asset::{Asset, AssetBag, AssetKind};
use crate::contract::{CallCtx, Contract};
use crate::crypto::{KeyDirectory, KeyPair};
use crate::error::{ChainError, ChainResult};
use crate::gas::{GasMeter, GasUsage};
use crate::ids::{ChainId, ContractId, Owner, PartyId, TokenId};
use crate::intern::{InternedAsset, KindId, KindTable};
use crate::time::{Duration, Time};

/// Authoritative record of who owns what on one chain.
///
/// Ownership maps are keyed on interned [`KindId`]s, not kind names: every
/// per-transaction ledger operation works on `Copy` keys, and name → id
/// resolution happens by `&str` lookup in the shared [`KindTable`] — the
/// transfer path never clones a `String`. Interned entry points
/// ([`AssetLedger::transfer_interned`] and friends) skip even the name lookup
/// for callers (escrow contracts) that pre-resolved their assets.
#[derive(Debug, Clone, Default)]
pub struct AssetLedger {
    kinds: KindTable,
    fungible: BTreeMap<(Owner, KindId), u64>,
    non_fungible: BTreeMap<(KindId, TokenId), Owner>,
}

impl AssetLedger {
    /// Creates an empty ledger with its own private kind table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty ledger sharing the given kind table (used by
    /// [`crate::world::World`] so every chain resolves the same names to the
    /// same ids).
    pub fn with_kinds(kinds: KindTable) -> Self {
        AssetLedger {
            kinds,
            ..Self::default()
        }
    }

    /// The kind table this ledger resolves names through.
    pub fn kinds(&self) -> &KindTable {
        &self.kinds
    }

    /// Interns an asset's kind, returning its id-keyed counterpart.
    pub fn intern_asset(&self, asset: &Asset) -> InternedAsset {
        self.kinds.intern_asset(asset)
    }

    /// Creates new units of an asset owned by `owner` (test/workload setup;
    /// real chains would do this in their native issuance rules).
    pub fn mint(&mut self, owner: Owner, asset: &Asset) -> ChainResult<()> {
        let interned = self.kinds.intern_asset(asset);
        self.mint_interned(owner, &interned)
    }

    /// [`AssetLedger::mint`] for a pre-interned asset.
    pub fn mint_interned(&mut self, owner: Owner, asset: &InternedAsset) -> ChainResult<()> {
        match asset {
            InternedAsset::Fungible { kind, amount } => {
                *self.fungible.entry((owner, *kind)).or_insert(0) += amount;
                Ok(())
            }
            InternedAsset::NonFungible { kind, tokens } => {
                // Single pass through the entry API; on a duplicate, roll back
                // the tokens inserted earlier in this call so the mint stays
                // all-or-nothing.
                for (i, t) in tokens.iter().enumerate() {
                    match self.non_fungible.entry((*kind, *t)) {
                        Entry::Vacant(slot) => {
                            slot.insert(owner);
                        }
                        Entry::Occupied(_) => {
                            for minted in tokens.iter().take(i) {
                                self.non_fungible.remove(&(*kind, *minted));
                            }
                            return Err(ChainError::require(format!(
                                "token {t} of kind '{}' already minted",
                                self.kinds.name_of(*kind)
                            )));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// The fungible balance of `owner` in `kind`.
    pub fn balance(&self, owner: Owner, kind: &AssetKind) -> u64 {
        match self.kinds.get(kind.name()) {
            Some(id) => self.balance_id(owner, id),
            None => 0,
        }
    }

    /// The fungible balance of `owner` in an interned kind.
    pub fn balance_id(&self, owner: Owner, kind: KindId) -> u64 {
        self.fungible.get(&(owner, kind)).copied().unwrap_or(0)
    }

    /// The current owner of a non-fungible token, if it exists.
    pub fn token_owner(&self, kind: &AssetKind, token: TokenId) -> Option<Owner> {
        self.token_owner_id(self.kinds.get(kind.name())?, token)
    }

    /// The current owner of a non-fungible token of an interned kind.
    pub fn token_owner_id(&self, kind: KindId, token: TokenId) -> Option<Owner> {
        self.non_fungible.get(&(kind, token)).copied()
    }

    /// True if `owner` holds at least `asset`.
    pub fn holds(&self, owner: Owner, asset: &Asset) -> bool {
        match asset {
            Asset::Fungible { kind, amount } => self.balance(owner, kind) >= *amount,
            Asset::NonFungible { kind, tokens } => match self.kinds.get(kind.name()) {
                Some(id) => tokens
                    .iter()
                    .all(|t| self.token_owner_id(id, *t) == Some(owner)),
                None => tokens.is_empty(),
            },
        }
    }

    /// True if `owner` holds at least the pre-interned `asset`.
    pub fn holds_interned(&self, owner: Owner, asset: &InternedAsset) -> bool {
        match asset {
            InternedAsset::Fungible { kind, amount } => self.balance_id(owner, *kind) >= *amount,
            InternedAsset::NonFungible { kind, tokens } => tokens
                .iter()
                .all(|t| self.token_owner_id(*kind, *t) == Some(owner)),
        }
    }

    /// Transfers `asset` from `from` to `to`, failing if `from` does not hold
    /// it. Resolves the kind by `&str` lookup — no clone on this path.
    pub fn transfer(&mut self, from: Owner, to: Owner, asset: &Asset) -> ChainResult<()> {
        match asset {
            Asset::Fungible { kind, amount } => match self.kinds.get(kind.name()) {
                Some(id) => self.transfer_fungible(from, to, id, *amount),
                None if *amount == 0 => Ok(()),
                None => Err(ChainError::InsufficientBalance {
                    owner: from,
                    kind: kind.name().to_string(),
                    requested: *amount,
                    available: 0,
                }),
            },
            Asset::NonFungible { kind, tokens } => match self.kinds.get(kind.name()) {
                Some(id) => self.transfer_tokens(from, to, id, tokens),
                None => match tokens.iter().next() {
                    None => Ok(()),
                    Some(t) => Err(ChainError::NotTokenOwner {
                        owner: from,
                        kind: kind.name().to_string(),
                        token: *t,
                    }),
                },
            },
        }
    }

    /// [`AssetLedger::transfer`] for a pre-interned asset: the zero-string
    /// fast path used by escrow release and HTLC payouts.
    pub fn transfer_interned(
        &mut self,
        from: Owner,
        to: Owner,
        asset: &InternedAsset,
    ) -> ChainResult<()> {
        match asset {
            InternedAsset::Fungible { kind, amount } => {
                self.transfer_fungible(from, to, *kind, *amount)
            }
            InternedAsset::NonFungible { kind, tokens } => {
                self.transfer_tokens(from, to, *kind, tokens)
            }
        }
    }

    /// Transfers `amount` units of an interned fungible kind.
    pub fn transfer_fungible(
        &mut self,
        from: Owner,
        to: Owner,
        kind: KindId,
        amount: u64,
    ) -> ChainResult<()> {
        let have = self.balance_id(from, kind);
        if have < amount {
            return Err(ChainError::InsufficientBalance {
                owner: from,
                kind: self.kinds.name_of(kind),
                requested: amount,
                available: have,
            });
        }
        if amount == 0 {
            return Ok(());
        }
        *self.fungible.entry((from, kind)).or_insert(0) -= amount;
        *self.fungible.entry((to, kind)).or_insert(0) += amount;
        Ok(())
    }

    /// Transfers specific tokens of an interned non-fungible kind.
    pub fn transfer_tokens(
        &mut self,
        from: Owner,
        to: Owner,
        kind: KindId,
        tokens: &BTreeSet<TokenId>,
    ) -> ChainResult<()> {
        for t in tokens {
            if self.token_owner_id(kind, *t) != Some(from) {
                return Err(ChainError::NotTokenOwner {
                    owner: from,
                    kind: self.kinds.name_of(kind),
                    token: *t,
                });
            }
        }
        for t in tokens {
            self.non_fungible.insert((kind, *t), to);
        }
        Ok(())
    }

    /// Everything `owner` holds on this chain (reporting path: resolves ids
    /// back to names).
    pub fn holdings(&self, owner: Owner) -> AssetBag {
        let mut bag = AssetBag::new();
        for ((o, kind), amount) in &self.fungible {
            if *o == owner && *amount > 0 {
                if let Some(name) = self.kinds.resolve(*kind) {
                    bag.add(&Asset::Fungible {
                        kind: name,
                        amount: *amount,
                    });
                }
            }
        }
        for ((kind, token), o) in &self.non_fungible {
            if *o == owner {
                if let Some(name) = self.kinds.resolve(*kind) {
                    bag.add(&Asset::NonFungible {
                        kind: name,
                        tokens: [*token].into_iter().collect(),
                    });
                }
            }
        }
        bag
    }

    /// Total supply of a fungible kind across all owners (conservation checks).
    pub fn total_supply(&self, kind: &AssetKind) -> u64 {
        let Some(id) = self.kinds.get(kind.name()) else {
            return 0;
        };
        self.fungible
            .iter()
            .filter(|((_, k), _)| *k == id)
            .map(|(_, v)| *v)
            .sum()
    }

    /// All owners currently holding anything (parties and contracts).
    pub fn owners(&self) -> Vec<Owner> {
        let mut owners: Vec<Owner> = self
            .fungible
            .iter()
            .filter(|(_, v)| **v > 0)
            .map(|((o, _), _)| *o)
            .chain(self.non_fungible.values().copied())
            .collect();
        owners.sort();
        owners.dedup();
        owners
    }
}

/// The pre-parsed classification of a log entry: the protocol-relevant label
/// vocabulary as a `Copy` enum, computed **once** when the entry is appended
/// ([`CallCtx::emit`]) instead of string-matched by every observer that later
/// reads it. Labels outside the deal vocabulary map to [`EventTag::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventTag {
    /// `"escrow"` — an escrow deposit locked in.
    Escrow = 0,
    /// `"tentative-transfer"` — a C-map transfer was performed.
    TentativeTransfer = 1,
    /// `"commit-vote"` — a timelock commit vote was accepted.
    CommitVote = 2,
    /// `"escrow-committed"` — the escrow paid out its C map.
    EscrowCommitted = 3,
    /// `"escrow-aborted"` — the escrow refunded its A map.
    EscrowAborted = 4,
    /// `"htlc-funded"` — an HTLC was funded (plays the escrow role).
    HtlcFunded = 5,
    /// `"htlc-claimed"` — an HTLC was claimed (plays the commit-vote role).
    HtlcClaimed = 6,
    /// `"htlc-refunded"` — an HTLC timed out and refunded.
    HtlcRefunded = 7,
    /// Any other label (`"startDeal"`, token registry events, …).
    Other = 8,
}

impl EventTag {
    /// Classifies a label string (the single place the label vocabulary is
    /// string-matched).
    pub fn parse(label: &str) -> EventTag {
        match label {
            "escrow" => EventTag::Escrow,
            "tentative-transfer" => EventTag::TentativeTransfer,
            "commit-vote" => EventTag::CommitVote,
            "escrow-committed" => EventTag::EscrowCommitted,
            "escrow-aborted" => EventTag::EscrowAborted,
            "htlc-funded" => EventTag::HtlcFunded,
            "htlc-claimed" => EventTag::HtlcClaimed,
            "htlc-refunded" => EventTag::HtlcRefunded,
            _ => EventTag::Other,
        }
    }
}

/// A subscription over [`EventTag`]s: a tiny bitset observers use to skip log
/// entries they will never ingest (see [`Blockchain::log_from_filtered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogFilter(u16);

impl LogFilter {
    /// The empty filter (accepts nothing).
    pub fn none() -> Self {
        LogFilter(0)
    }

    /// A filter accepting every tag, including [`EventTag::Other`].
    pub fn all() -> Self {
        LogFilter(u16::MAX)
    }

    /// A filter accepting exactly the given tags.
    pub fn of(tags: impl IntoIterator<Item = EventTag>) -> Self {
        let mut f = LogFilter(0);
        for t in tags {
            f = f.with(t);
        }
        f
    }

    /// This filter extended with one more tag.
    pub fn with(self, tag: EventTag) -> Self {
        LogFilter(self.0 | (1 << tag as u16))
    }

    /// True if the filter accepts entries with this tag.
    pub fn accepts(&self, tag: EventTag) -> bool {
        self.0 & (1 << tag as u16) != 0
    }
}

/// One entry in a chain's public log. Contracts append entries via
/// [`CallCtx::emit`]; parties monitor chains by reading the log (subject to
/// the network model's observation delay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Monotonically increasing sequence number on this chain.
    pub seq: u64,
    /// Chain time at which the entry was appended.
    pub time: Time,
    /// The contract that emitted the entry, if any.
    pub contract: Option<ContractId>,
    /// The caller whose transaction produced the entry.
    pub caller: Owner,
    /// A short label, e.g. `"escrow"`, `"commit-vote"`, `"startDeal"`.
    pub label: String,
    /// The label pre-parsed into the deal vocabulary (set at append time, so
    /// observers never re-match the string).
    pub tag: EventTag,
    /// Numeric payload (ids, amounts, hashes).
    pub data: Vec<u64>,
}

/// A per-observer position in a chain's log: the index of the first entry the
/// observer has *not* seen yet. Parties that monitor a chain keep one cursor
/// per chain and call [`Blockchain::log_from`], which returns only the new
/// entries and advances the cursor — O(new entries) instead of re-scanning
/// the whole log with [`Blockchain::log_since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogCursor {
    next: usize,
}

impl LogCursor {
    /// A cursor positioned at the start of the log (sees everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// The index of the next unseen entry.
    pub fn position(&self) -> usize {
        self.next
    }
}

/// A single simulated blockchain.
pub struct Blockchain {
    id: ChainId,
    name: String,
    /// Chain time is quantized to this block interval ("most blockchains
    /// measure time imprecisely, usually by multiplying the current block
    /// height by the average block rate", Section 5).
    block_interval: Duration,
    assets: AssetLedger,
    /// Contracts live in `Option` slots so a call can *take* the box with one
    /// map lookup (and put it back the same way) instead of removing and
    /// re-inserting a tree node on every transaction. A slot is only ever
    /// `None` for the duration of the call executing its contract.
    contracts: BTreeMap<ContractId, Option<Box<dyn Contract>>>,
    next_contract: u64,
    gas: GasMeter,
    keys: KeyDirectory,
    log: Vec<LogEntry>,
    log_seq: u64,
}

impl Blockchain {
    /// Creates a chain with the given display name and block interval, with
    /// its own private kind table.
    pub fn new(id: ChainId, name: impl Into<String>, block_interval: Duration) -> Self {
        Self::with_kinds(id, name, block_interval, KindTable::new())
    }

    /// Creates a chain sharing the given kind table (the world-owned interner;
    /// see [`crate::world::World::add_chain`]).
    pub fn with_kinds(
        id: ChainId,
        name: impl Into<String>,
        block_interval: Duration,
        kinds: KindTable,
    ) -> Self {
        Blockchain {
            id,
            name: name.into(),
            block_interval: if block_interval.ticks() == 0 {
                Duration(1)
            } else {
                block_interval
            },
            assets: AssetLedger::with_kinds(kinds),
            contracts: BTreeMap::new(),
            next_contract: 1,
            gas: GasMeter::unlimited(),
            keys: KeyDirectory::new(),
            log: Vec::new(),
            log_seq: 0,
        }
    }

    /// The kind table this chain's ledger resolves names through.
    pub fn kinds(&self) -> &KindTable {
        self.assets.kinds()
    }

    /// The chain id.
    pub fn id(&self) -> ChainId {
        self.id
    }

    /// The chain's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Chain time derived from wall (world) time by block quantization.
    pub fn chain_time(&self, now: Time) -> Time {
        let q = self.block_interval.ticks();
        Time((now.ticks() / q) * q)
    }

    /// Registers a party's key so contracts on this chain can verify its
    /// signatures.
    pub fn register_key(&mut self, party: PartyId, kp: &KeyPair) {
        self.keys.register(party, kp);
    }

    /// The chain's public-key directory.
    pub fn keys(&self) -> &KeyDirectory {
        &self.keys
    }

    /// Installs a contract and returns its id. The contract receives the
    /// chain's kind table through [`Contract::on_install`] so it can intern
    /// and resolve asset kinds for its own state.
    pub fn install<C: Contract>(&mut self, mut contract: C) -> ContractId {
        let id = ContractId(((self.id.0 as u64) << 32) | self.next_contract);
        self.next_contract += 1;
        contract.on_install(self.assets.kinds());
        self.contracts.insert(id, Some(Box::new(contract)));
        id
    }

    /// Mints assets directly to an owner (workload setup).
    pub fn mint(&mut self, owner: Owner, asset: &Asset) -> ChainResult<()> {
        self.assets.mint(owner, asset)
    }

    /// [`Blockchain::mint`] for a pre-interned asset (plan-based world
    /// setup: no name resolution).
    pub fn mint_interned(&mut self, owner: Owner, asset: &InternedAsset) -> ChainResult<()> {
        self.assets.mint_interned(owner, asset)
    }

    /// Read-only access to the asset ledger.
    pub fn assets(&self) -> &AssetLedger {
        &self.assets
    }

    /// Everything `owner` holds on this chain.
    pub fn holdings(&self, owner: Owner) -> AssetBag {
        self.assets.holdings(owner)
    }

    /// Cumulative gas usage on this chain.
    pub fn gas_usage(&self) -> GasUsage {
        self.gas.usage()
    }

    /// The full public log.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Log entries appended at or after `since` (chain time).
    pub fn log_since(&self, since: Time) -> impl Iterator<Item = &LogEntry> {
        self.log.iter().filter(move |e| e.time >= since)
    }

    /// Log entries the cursor has not seen yet, advancing the cursor past
    /// them. Repeated monitoring of a chain is O(new entries) instead of the
    /// O(whole log) re-scan of [`Blockchain::log_since`].
    pub fn log_from(&self, cursor: &mut LogCursor) -> &[LogEntry] {
        let start = cursor.next.min(self.log.len());
        cursor.next = self.log.len();
        &self.log[start..]
    }

    /// Like [`Blockchain::log_from`], but yields only the entries whose
    /// [`EventTag`] the filter accepts. The cursor still advances past *all*
    /// new entries — filtered-out ones are skipped, not deferred — so a
    /// subscribed observer pays nothing for log traffic outside its
    /// vocabulary.
    pub fn log_from_filtered<'a>(
        &'a self,
        cursor: &mut LogCursor,
        filter: LogFilter,
    ) -> impl Iterator<Item = &'a LogEntry> {
        self.log_from(cursor)
            .iter()
            .filter(move |e| filter.accepts(e.tag))
    }

    /// Submits a transaction that calls contract `id`, dispatching on the
    /// concrete contract type `C`. The closure receives the downcast contract
    /// and a [`CallCtx`]; its result is the call's result. Charges the
    /// intrinsic call cost plus whatever the contract charges.
    ///
    /// A failed call (`Err`) still consumes the gas charged up to the failure
    /// point, like a reverted Ethereum transaction consumes gas.
    pub fn call<C, R>(
        &mut self,
        now: Time,
        caller: Owner,
        id: ContractId,
        f: impl FnOnce(&mut C, &mut CallCtx<'_>) -> ChainResult<R>,
    ) -> ChainResult<R>
    where
        C: Contract,
    {
        let slot = self
            .contracts
            .get_mut(&id)
            .ok_or(ChainError::UnknownContract(id))?;
        let mut boxed = slot.take().ok_or(ChainError::UnknownContract(id))?;
        if let Err((used, limit)) = self.gas.charge_call() {
            *self.contracts.get_mut(&id).expect("slot exists") = Some(boxed);
            return Err(ChainError::OutOfGas { used, limit });
        }
        let chain_now = self.chain_time(now);
        let result = {
            let concrete = match boxed.as_any_mut().downcast_mut::<C>() {
                Some(c) => c,
                None => {
                    *self.contracts.get_mut(&id).expect("slot exists") = Some(boxed);
                    return Err(ChainError::ContractTypeMismatch(id));
                }
            };
            let mut ctx = CallCtx {
                chain: self.id,
                contract: id,
                caller,
                now: chain_now,
                gas: &mut self.gas,
                assets: &mut self.assets,
                keys: &self.keys,
                log: &mut self.log,
                log_seq: &mut self.log_seq,
            };
            f(concrete, &mut ctx)
        };
        *self.contracts.get_mut(&id).expect("slot exists") = Some(boxed);
        result
    }

    /// Reads contract state without submitting a transaction (an off-chain
    /// `eth_call`): free of gas, immutable access only.
    pub fn view<C, R>(&self, id: ContractId, f: impl FnOnce(&C) -> R) -> ChainResult<R>
    where
        C: Contract,
    {
        let boxed = self
            .contracts
            .get(&id)
            .and_then(|slot| slot.as_ref())
            .ok_or(ChainError::UnknownContract(id))?;
        let concrete = boxed
            .as_any()
            .downcast_ref::<C>()
            .ok_or(ChainError::ContractTypeMismatch(id))?;
        Ok(f(concrete))
    }

    /// Number of contracts installed on this chain.
    pub fn contract_count(&self) -> usize {
        self.contracts.len()
    }
}

impl std::fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blockchain")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("contracts", &self.contracts.len())
            .field("log_entries", &self.log.len())
            .field("gas", &self.gas.usage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Default)]
    struct Counter {
        value: u64,
    }

    impl Contract for Counter {
        fn type_name(&self) -> &'static str {
            "counter"
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    impl Counter {
        fn bump(&mut self, ctx: &mut CallCtx<'_>, by: u64) -> ChainResult<u64> {
            ctx.charge_storage_write()?;
            self.value += by;
            ctx.emit("bump", vec![self.value])?;
            Ok(self.value)
        }
    }

    fn chain() -> Blockchain {
        Blockchain::new(ChainId(0), "test-chain", Duration(10))
    }

    #[test]
    fn mint_transfer_and_holdings() {
        let mut l = AssetLedger::new();
        let alice = Owner::Party(PartyId(0));
        let bob = Owner::Party(PartyId(1));
        l.mint(alice, &Asset::fungible("coin", 100)).unwrap();
        l.mint(bob, &Asset::non_fungible("ticket", [1, 2])).unwrap();
        assert_eq!(l.balance(alice, &"coin".into()), 100);
        assert_eq!(l.token_owner(&"ticket".into(), TokenId(1)), Some(bob));

        l.transfer(alice, bob, &Asset::fungible("coin", 40))
            .unwrap();
        assert_eq!(l.balance(alice, &"coin".into()), 60);
        assert_eq!(l.balance(bob, &"coin".into()), 40);

        l.transfer(bob, alice, &Asset::non_fungible("ticket", [1]))
            .unwrap();
        assert_eq!(l.token_owner(&"ticket".into(), TokenId(1)), Some(alice));

        let holdings = l.holdings(alice);
        assert_eq!(holdings.balance(&"coin".into()), 60);
        assert!(holdings.contains(&Asset::non_fungible("ticket", [1])));
        assert_eq!(l.total_supply(&"coin".into()), 100);
        assert_eq!(l.owners().len(), 2);
    }

    #[test]
    fn transfer_rejects_overdraft_and_wrong_token_owner() {
        let mut l = AssetLedger::new();
        let alice = Owner::Party(PartyId(0));
        let bob = Owner::Party(PartyId(1));
        l.mint(alice, &Asset::fungible("coin", 10)).unwrap();
        l.mint(alice, &Asset::non_fungible("ticket", [7])).unwrap();
        assert!(matches!(
            l.transfer(alice, bob, &Asset::fungible("coin", 11)),
            Err(ChainError::InsufficientBalance { .. })
        ));
        assert!(matches!(
            l.transfer(bob, alice, &Asset::non_fungible("ticket", [7])),
            Err(ChainError::NotTokenOwner { .. })
        ));
        // failed transfers change nothing
        assert_eq!(l.balance(alice, &"coin".into()), 10);
    }

    #[test]
    fn double_mint_of_token_rejected() {
        let mut l = AssetLedger::new();
        let alice = Owner::Party(PartyId(0));
        l.mint(alice, &Asset::non_fungible("ticket", [1])).unwrap();
        assert!(l.mint(alice, &Asset::non_fungible("ticket", [1])).is_err());
    }

    #[test]
    fn contract_calls_charge_gas_and_mutate_state() {
        let mut c = chain();
        let id = c.install(Counter::default());
        let caller = Owner::Party(PartyId(3));
        let v = c
            .call(Time(25), caller, id, |ctr: &mut Counter, ctx| {
                ctr.bump(ctx, 5)
            })
            .unwrap();
        assert_eq!(v, 5);
        let v = c
            .call(Time(31), caller, id, |ctr: &mut Counter, ctx| {
                ctr.bump(ctx, 2)
            })
            .unwrap();
        assert_eq!(v, 7);
        assert_eq!(c.view(id, |ctr: &Counter| ctr.value).unwrap(), 7);
        let usage = c.gas_usage();
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.storage_writes, 2);
        assert_eq!(usage.log_entries, 2);
        // chain time is quantized to the 10-tick block interval
        assert_eq!(c.log()[0].time, Time(20));
        assert_eq!(c.log()[1].time, Time(30));
    }

    #[test]
    fn call_unknown_or_mismatched_contract_fails() {
        let mut c = chain();
        let id = c.install(Counter::default());
        assert!(matches!(
            c.call(
                Time(0),
                Owner::Party(PartyId(0)),
                ContractId(999),
                |_: &mut Counter, _| Ok(())
            ),
            Err(ChainError::UnknownContract(_))
        ));

        struct Other;
        impl Contract for Other {
            fn type_name(&self) -> &'static str {
                "other"
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        assert!(matches!(
            c.call(
                Time(0),
                Owner::Party(PartyId(0)),
                id,
                |_: &mut Other, _| Ok(())
            ),
            Err(ChainError::ContractTypeMismatch(_))
        ));
        // contract survives the failed dispatch
        assert_eq!(c.contract_count(), 1);
        assert_eq!(c.view(id, |ctr: &Counter| ctr.value).unwrap(), 0);
    }

    #[test]
    fn log_from_returns_only_new_entries_and_advances_the_cursor() {
        let mut c = chain();
        let id = c.install(Counter::default());
        let caller = Owner::Party(PartyId(0));
        let mut cursor = LogCursor::new();
        assert!(c.log_from(&mut cursor).is_empty());
        for t in [5u64, 15] {
            c.call(Time(t), caller, id, |ctr: &mut Counter, ctx| {
                ctr.bump(ctx, 1)
            })
            .unwrap();
        }
        let fresh = c.log_from(&mut cursor);
        assert_eq!(fresh.len(), 2);
        assert_eq!(cursor.position(), 2);
        // Nothing new: the cursor does not re-deliver.
        assert!(c.log_from(&mut cursor).is_empty());
        c.call(Time(25), caller, id, |ctr: &mut Counter, ctx| {
            ctr.bump(ctx, 1)
        })
        .unwrap();
        let fresh = c.log_from(&mut cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].seq, 3); // seq numbers are 1-based
                                     // A second, independent cursor still sees everything.
        let mut other = LogCursor::new();
        assert_eq!(c.log_from(&mut other).len(), 3);
    }

    #[test]
    fn filtered_log_reads_skip_foreign_tags_but_advance_the_cursor() {
        let mut c = chain();
        let id = c.install(Counter::default());
        let caller = Owner::Party(PartyId(0));
        // The Counter emits "bump" (EventTag::Other); emit one entry.
        c.call(Time(5), caller, id, |ctr: &mut Counter, ctx| {
            ctr.bump(ctx, 1)
        })
        .unwrap();
        assert_eq!(c.log()[0].tag, EventTag::Other);
        let mut cursor = LogCursor::new();
        let escrow_only = LogFilter::of([EventTag::Escrow]);
        assert_eq!(c.log_from_filtered(&mut cursor, escrow_only).count(), 0);
        // The cursor advanced past the skipped entry: nothing is re-delivered.
        assert_eq!(cursor.position(), 1);
        assert_eq!(
            c.log_from_filtered(&mut cursor, LogFilter::all()).count(),
            0
        );
        // Tag parsing covers the deal vocabulary.
        assert_eq!(EventTag::parse("escrow"), EventTag::Escrow);
        assert_eq!(EventTag::parse("commit-vote"), EventTag::CommitVote);
        assert_eq!(EventTag::parse("htlc-refunded"), EventTag::HtlcRefunded);
        assert_eq!(EventTag::parse("startDeal"), EventTag::Other);
        // Filter membership behaves like a set.
        let f = LogFilter::of([EventTag::Escrow, EventTag::CommitVote]);
        assert!(f.accepts(EventTag::Escrow));
        assert!(!f.accepts(EventTag::EscrowAborted));
        assert!(!LogFilter::none().accepts(EventTag::Escrow));
    }

    #[test]
    fn log_since_filters_by_time() {
        let mut c = chain();
        let id = c.install(Counter::default());
        let caller = Owner::Party(PartyId(0));
        for t in [5u64, 15, 25, 35] {
            c.call(Time(t), caller, id, |ctr: &mut Counter, ctx| {
                ctr.bump(ctx, 1)
            })
            .unwrap();
        }
        assert_eq!(c.log().len(), 4);
        assert_eq!(c.log_since(Time(20)).count(), 2);
        assert_eq!(c.log_since(Time(0)).count(), 4);
    }
}
