//! Expressiveness limits of swaps vs deals (Section 8).
//!
//! "In a cross-chain swap, each party transfers an asset directly to another,
//! and halts." A deal is expressible as a swap only if every party
//! relinquishes only assets it owned at the start — no party may forward
//! assets it acquires during the deal, and nobody may enter with nothing to
//! swap (like Alice the broker, or the auctioneer returning losing bids).

use xchain_deals::spec::DealSpec;

/// True if the deal could be expressed as an atomic cross-chain swap: every
/// transfer's sender escrows (initially owns) everything it sends, so no
/// transfer depends on an asset acquired within the deal.
pub fn expressible_as_swap(spec: &DealSpec) -> bool {
    spec.parties.iter().all(|&p| {
        let escrowed =
            spec.escrows_of(p)
                .iter()
                .fold(xchain_sim::asset::AssetBag::new(), |mut bag, e| {
                    bag.add(&e.asset);
                    bag
                });
        escrowed.covers(&spec.outgoing_of(p))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xchain_deals::builders::{auction_spec, broker_spec, ring_spec};
    use xchain_sim::ids::DealId;

    #[test]
    fn broker_and_auction_deals_are_not_swaps() {
        // Alice relinquishes tickets and coins she never owned at the start.
        assert!(!expressible_as_swap(&broker_spec()));
        // The auctioneer returns losing bids it did not own at the start.
        assert!(!expressible_as_swap(&auction_spec(DealId(2), &[10, 20])));
    }

    #[test]
    fn ring_deals_are_swaps() {
        // Every ring party escrows exactly what it sends.
        assert!(expressible_as_swap(&ring_spec(DealId(3), 4)));
    }
}
